"""Benchmark E16: the mechanism behind Figure 15's utilization trend.

RG approaches DS exactly as often as its rule 2 gets to fire -- once
per busy-interval completion (idle point).  This benchmark measures the
idle-point rate and the RG/DS gap across utilizations on the same
systems, showing they move together: busier processors drain less
often, so held releases wait out their guards and RG's average EER
times drift up toward PM's discipline.
"""

from __future__ import annotations

import math
import statistics

from repro.api import compare_protocols
from repro.sim.processor_stats import processor_statistics
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import SYSTEMS, save_and_print


def _measure():
    rows = []
    for utilization in (0.5, 0.7, 0.9):
        config = WorkloadConfig(
            subtasks_per_task=5,
            utilization=utilization,
            random_phases=True,
        )
        idle_rates = []
        gaps = []
        for seed in range(max(2, SYSTEMS // 2)):
            system = generate_system(config, seed)
            results = compare_protocols(
                system,
                ("DS", "RG"),
                horizon_periods=8.0,
                record_segments=True,
            )
            idle_rates.append(
                statistics.mean(
                    processor_statistics(
                        results["RG"].trace, p
                    ).idle_points_per_time
                    for p in system.processors
                )
            )
            ratios = [
                rg / ds
                for rg, ds in zip(
                    results["RG"].metrics.average_eer_vector(),
                    results["DS"].metrics.average_eer_vector(),
                )
                if math.isfinite(rg) and math.isfinite(ds) and ds > 0
            ]
            gaps.append(statistics.mean(ratios))
        rows.append(
            (
                utilization,
                statistics.mean(idle_rates),
                statistics.mean(gaps),
            )
        )
    return rows


def test_idle_point_rate_explains_rg_ds_gap(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    idle_rates = [rate for _u, rate, _gap in rows]
    gaps = [gap for _u, _rate, gap in rows]
    # Idle points get rarer with utilization; the RG/DS gap widens.
    assert idle_rates == sorted(idle_rates, reverse=True)
    assert gaps == sorted(gaps)
    lines = [
        "E16 -- idle-point rate vs RG/DS gap at (5, U):",
        f"{'U':>6}{'idle points / time':>22}{'RG/DS avg-EER ratio':>22}",
    ]
    for utilization, rate, gap in rows:
        lines.append(f"{utilization:>6.0%}{rate:>22.4f}{gap:>22.4f}")
    lines.append(
        "Rule 2 fires once per processor drain; fewer drains => RG's "
        "held releases wait out their guards (the paper's explanation "
        "of Figure 15's 90% column)."
    )
    save_and_print("e16_idle_points", "\n".join(lines))
