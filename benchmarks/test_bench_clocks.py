"""Clock-subsystem micro-benchmarks: the price of imperfect clocks.

The clock layer sits on the simulator's hot path (every timer arm and
every event timestamp passes through a clock conversion), so its cost
must stay negligible.  Two contracts are pinned here:

* a :class:`PerfectClock` run stays within 1.5x of a bare run -- the
  identity path is a pair of attribute lookups, not arithmetic;
* a :class:`ResyncClock` run (the most expensive model: piecewise
  segments plus a first-crossing inverse) stays within 5x of bare.
"""

from __future__ import annotations

import time

from repro.api import run_protocol
from repro.clocks import ClockConfig, ClockMap
from repro.core.analysis.skew import analyze_sa_pm_skewed
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import save_and_print

_CONFIG = WorkloadConfig(
    subtasks_per_task=3,
    utilization=0.6,
    tasks=4,
    processors=3,
    period_min=100.0,
    period_max=1000.0,
    period_scale=300.0,
)

_RESYNC = ClockConfig(
    kind="resync", precision=2.0, interval=100.0, rate=1e-5, seed=0
)


def _system():
    return generate_system(_CONFIG, seed=1)


def test_simulate_with_resync_clocks(benchmark):
    """MPM under the most expensive clock model."""
    system = _system()
    result = benchmark(
        lambda: run_protocol(
            system, "MPM", horizon_periods=3.0, clocks=_RESYNC
        )
    )
    assert result.metrics.task(0).completed_instances > 0


def test_skewed_analysis_throughput(benchmark):
    """The skew-aware SA/PM pass, paper-sized system."""
    system = _system()
    result = benchmark(
        lambda: analyze_sa_pm_skewed(system, clocks=_RESYNC)
    )
    assert result.algorithm == "SA/PM-skew"


def _best_of(repetitions, thunk):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def test_clock_overhead_bounded():
    """Acceptance: perfect clocks <= 1.5x bare, resync <= 5x, best-of-5."""
    system = _system()

    def run(clocks):
        return run_protocol(system, "MPM", horizon_periods=3.0, clocks=clocks)

    bare = _best_of(5, lambda: run(None))
    perfect = _best_of(5, lambda: run(ClockMap.perfect()))
    resync = _best_of(5, lambda: run(_RESYNC))
    lines = [
        "clocks          time      vs bare",
        f"{'bare':<12} {bare * 1e3:7.2f}ms    1.00x",
        f"{'perfect':<12} {perfect * 1e3:7.2f}ms {perfect / bare:7.2f}x",
        f"{'resync':<12} {resync * 1e3:7.2f}ms {resync / bare:7.2f}x",
    ]
    assert perfect / bare < 1.5, f"perfect clocks cost {perfect / bare:.2f}x"
    assert resync / bare < 5.0, f"resync clocks cost {resync / bare:.2f}x"
    save_and_print("clock_overhead", "\n".join(lines))
