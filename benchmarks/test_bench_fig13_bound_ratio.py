"""Benchmark E6: Figure 13 -- the SA-DS/SA-PM bound-ratio surface.

Per configuration, the mean over tasks (in systems with finite DS
bounds) of the SA/DS EER bound divided by the SA/PM EER bound.
Expected shape (paper Section 5.2): >= 1 everywhere, flat in N at low
utilization, climbing steeply with N at high utilization; greater than
2 for roughly a third of the grid.
"""

from __future__ import annotations

import math

from repro.experiments.figures import bound_ratio_surface

from conftest import SUBTASK_COUNTS, save_and_print


def test_fig13_bound_ratio_surface(benchmark, analysis_sweep):
    surface = benchmark.pedantic(
        lambda: bound_ratio_surface(analysis_sweep), rounds=1, iterations=1
    )
    values = {
        cell.key: cell.value
        for cell in surface
        if not math.isnan(cell.value)
    }
    assert all(v >= 1.0 - 1e-9 for v in values.values())
    n_lo, n_hi = min(SUBTASK_COUNTS), max(SUBTASK_COUNTS)
    # Ratio grows with chain length at fixed utilization.
    for u in (50, 70):
        assert values[(n_lo, u)] < values[(n_hi, u)]
    # Ratio grows with utilization at a fixed long chain.
    mid_n = sorted(SUBTASK_COUNTS)[len(SUBTASK_COUNTS) // 2]
    assert values[(mid_n, 50)] < values[(mid_n, 70)]
    # "Roughly one-third of configurations have ratios greater than 2."
    above_two = sum(1 for v in values.values() if v > 2.0)
    assert above_two >= max(1, len(values) // 5)
    save_and_print("fig13_bound_ratio", surface.render(precision=2))
