"""Benchmark E4 + analysis micro-benchmarks.

Pins the worked Section 4.3 numbers on Example 2 and measures the
throughput of both schedulability analyses on paper-sized systems.
"""

from __future__ import annotations

import pytest

from repro.core.analysis.sa_ds import analyze_sa_ds, ieert_pass, initial_ieer_bounds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.workload.config import WorkloadConfig
from repro.workload.examples import example_two
from repro.workload.generator import generate_system

from conftest import save_and_print


def test_sa_pm_example2_bounds(benchmark):
    system = example_two()
    result = benchmark(lambda: analyze_sa_pm(system))
    assert result.task_bounds == pytest.approx((2.0, 7.0, 5.0))
    save_and_print("sa_pm_example2", result.describe())


def test_sa_ds_example2_bound(benchmark):
    """Section 4.3's worked example.

    The paper prints "7" for T3's SA/DS bound, but its own Figure 3
    shows T3 responding in 8 time units, so a correct bound cannot be
    below 8; Algorithm IEERT as printed yields exactly 8 (tight).  See
    EXPERIMENTS.md for the discrepancy note.
    """
    system = example_two()
    result = benchmark(lambda: analyze_sa_ds(system))
    assert result.task_bounds[2] == pytest.approx(8.0)
    assert not result.is_task_schedulable(2)  # paper's conclusion: 8 > 6
    save_and_print("sa_ds_example2", result.describe())


def test_sa_pm_throughput_paper_sized_system(benchmark):
    """SA/PM over one 12-task, 4-processor, 5-stage system."""
    system = generate_system(
        WorkloadConfig(subtasks_per_task=5, utilization=0.7), seed=0
    )
    result = benchmark(lambda: analyze_sa_pm(system))
    assert result.all_finite


def test_sa_ds_throughput_paper_sized_system(benchmark):
    """Full SA/DS fixed point over one converging (5,70) system."""
    system = generate_system(
        WorkloadConfig(subtasks_per_task=5, utilization=0.7), seed=0
    )
    result = benchmark.pedantic(
        lambda: analyze_sa_ds(system), rounds=3, iterations=1
    )
    assert not result.failed


def test_ieert_single_pass_throughput(benchmark):
    """One IEERT pass (the inner loop of SA/DS) on a (8,80) system."""
    system = generate_system(
        WorkloadConfig(subtasks_per_task=8, utilization=0.8), seed=3
    )
    seeds = initial_ieer_bounds(system)
    bounds = benchmark(lambda: ieert_pass(system, seeds))
    assert all(bounds[sid] >= seeds[sid] - 1e-9 for sid in seeds)
