"""Timebase micro-benchmarks: the price of exact arithmetic.

The ``float`` backend is the default precisely because it is the fast
path; the ``exact`` backend buys tolerance-free semantics with rational
arithmetic.  These benchmarks pin the contract from the change that
introduced the layer: the float path is unregressed (it *is* the
historical code), and exact analysis stays within 5x of float on
paper-sized systems.
"""

from __future__ import annotations

import time

from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.timebase import EXACT
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import save_and_print

_CONFIG = WorkloadConfig(subtasks_per_task=5, utilization=0.7)


def test_sa_pm_exact_throughput(benchmark):
    """SA/PM under the exact backend, paper-sized system."""
    system = generate_system(_CONFIG, seed=0)
    result = benchmark(lambda: analyze_sa_pm(system, timebase=EXACT))
    assert result.all_finite


def test_sa_ds_exact_throughput(benchmark):
    """Full SA/DS fixed point under the exact backend."""
    system = generate_system(_CONFIG, seed=0)
    result = benchmark.pedantic(
        lambda: analyze_sa_ds(system, timebase=EXACT), rounds=3, iterations=1
    )
    assert not result.failed


def _best_of(repetitions, thunk):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def test_exact_analysis_within_5x_of_float():
    """The acceptance bound: exact analysis <= 5x float, best-of-5."""
    system = generate_system(_CONFIG, seed=0)
    lines = ["analysis      float      exact    ratio"]
    for label, run in (
        ("SA/PM", lambda tb: analyze_sa_pm(system, timebase=tb)),
        ("SA/DS", lambda tb: analyze_sa_ds(system, timebase=tb)),
    ):
        float_best = _best_of(5, lambda: run("float"))
        exact_best = _best_of(5, lambda: run("exact"))
        ratio = exact_best / float_best
        lines.append(
            f"{label:<10} {float_best * 1e3:7.2f}ms {exact_best * 1e3:7.2f}ms"
            f" {ratio:7.2f}x"
        )
        assert ratio < 5.0, f"{label}: exact is {ratio:.2f}x float (limit 5x)"
    save_and_print("timebase_ratio", "\n".join(lines))
