"""Benchmark E15: bound tightness -- the empirical basis of Section 3.2.

Quantifies "the actual worst-case EER time is typically much smaller
than the estimated worst-case EER time": for small systems where the
exhaustive phase search is affordable, compares each analysis bound to
the largest EER time any searched phasing attains.
"""

from __future__ import annotations

from repro.experiments.tightness import measure_tightness
from repro.workload.config import WorkloadConfig

from conftest import save_and_print

HEAVY = WorkloadConfig(
    subtasks_per_task=3, utilization=0.8, tasks=4, processors=3
)


def test_bound_tightness_study(benchmark):
    def measure():
        return {
            protocol: measure_tightness(
                protocol,
                systems=4,
                config=HEAVY,
                steps=4,
                horizon_periods=6.0,
            )
            for protocol in ("PM", "RG", "DS")
        }

    studies = benchmark.pedantic(measure, rounds=1, iterations=1)
    # PM realizes its bounds most often (its schedule is the analysis's
    # worst case); RG leaves a gap; SA/DS leaves the largest gap.
    assert studies["PM"].summary.mean <= studies["RG"].summary.mean + 1e-9
    assert studies["RG"].summary.mean < studies["DS"].summary.mean
    assert studies["DS"].worst > 1.5
    lines = [
        "E15 -- bound pessimism (bound / searched worst case) at "
        f"{HEAVY.label}:",
    ]
    lines += ["  " + studies[p].describe() for p in ("PM", "RG", "DS")]
    lines.append(
        "The gap is what lets RG release early (rule 2) with impunity -- "
        "and why its average EER times approach DS's (Section 3.2)."
    )
    save_and_print("e15_tightness", "\n".join(lines))
