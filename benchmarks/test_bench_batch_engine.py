"""Benchmark: batch engine vs reference kernel on the fig12-16 sweeps.

For each sweep-grid corner -- light (2, 50%), middling (5, 70%) and
heavy (8, 90%) paper-shaped systems -- every protocol is simulated on
both engines over a long horizon (40 periods, so per-event cost
dominates setup), timed best-of-3, and checked for *conformance on the
spot*: equal event counts, equal metrics, and a byte-identical packed
trace.  A speedup row is only trusted if the two runs provably did the
same work.

Honest numbers: the engine's acceptance target was >=10x, and a pure
Python event loop does not reach it -- the per-event floor (heap ops,
handler dispatch, float compares) lands the measured speedup at
roughly 5.5-8.6x kernel-vs-kernel on these workloads (batch ~0.9-1.4
us/event).  The gate below asserts >= ``MIN_SPEEDUP`` per case and
>= ``MIN_GEOMEAN`` overall -- floors set well under the measured
ratios so CI noise cannot flake the build, while a regression that
costs the engine half its advantage still fails loudly.  The measured
ratios are printed and persisted under ``benchmarks/out/``.
"""

from __future__ import annotations

import math
import time

from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.protocols.direct import DirectSynchronization
from repro.core.protocols.modified_pm import ModifiedPhaseModification
from repro.core.protocols.phase_modification import PhaseModification
from repro.core.protocols.release_guard import ReleaseGuard
from repro.sim.batch import encode
from repro.sim.simulator import simulate
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import save_and_print

#: (subtasks per task, utilization) -- the sweep sub-grid's corners.
POINTS = ((2, 0.5), (5, 0.7), (8, 0.9))
PROTOCOLS = ("DS", "PM", "MPM", "RG")
HORIZON_PERIODS = 40.0
ROUNDS = 3

#: Per-case floor: no single (config, protocol) cell may fall below.
MIN_SPEEDUP = 2.5
#: Aggregate floor: the geometric mean across all cells.
MIN_GEOMEAN = 3.5


def _controller_factory(protocol: str, system):
    if protocol == "DS":
        return DirectSynchronization
    if protocol == "RG":
        return ReleaseGuard
    bounds = dict(analyze_sa_pm(system).subtask_bounds)
    if any(math.isinf(b) for b in bounds.values()):
        return None  # timer protocols infeasible on this system
    cls = PhaseModification if protocol == "PM" else ModifiedPhaseModification
    return lambda: cls(dict(bounds))


def _best_time(system, factory, engine: str):
    """Best-of-``ROUNDS`` wall time; controller built outside the clock."""
    best = math.inf
    result = None
    for _ in range(ROUNDS):
        controller = factory()
        start = time.perf_counter()
        run = simulate(
            system,
            controller,
            horizon_periods=HORIZON_PERIODS,
            record_segments=True,
            engine=engine,
        )
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result = elapsed, run
    return best, result


def test_batch_engine_speedup_and_conformance(benchmark):
    rows = []
    speedups = []
    for n, u in POINTS:
        config = WorkloadConfig(
            subtasks_per_task=n,
            utilization=u,
            tasks=12,
            processors=4,
            random_phases=True,
        )
        system = generate_system(config, seed=1)
        for protocol in PROTOCOLS:
            factory = _controller_factory(protocol, system)
            if factory is None:
                continue
            ref_time, ref = _best_time(system, factory, "reference")
            batch_time, batch = _best_time(system, factory, "batch")
            # Conformance first: a speedup over different work is noise.
            assert batch.engine == "batch", batch.engine_fallback
            assert batch.events_processed == ref.events_processed
            assert batch.metrics == ref.metrics
            expected = encode(ref.trace)
            assert expected.identical(batch.packed_trace), (
                expected.describe_diff(batch.packed_trace)
            )
            speedup = ref_time / batch_time
            speedups.append(speedup)
            rows.append(
                f"({n},{int(u * 100)}%) {protocol:>3}: "
                f"{ref.events_processed:>6} events  "
                f"ref {ref_time * 1e3:7.1f} ms  "
                f"batch {batch_time * 1e3:6.1f} ms  "
                f"{speedup:4.1f}x"
            )
            assert speedup >= MIN_SPEEDUP, (
                f"{protocol} on ({n},{u}): {speedup:.1f}x is below the "
                f"{MIN_SPEEDUP}x per-case floor"
            )
    geomean = math.exp(sum(map(math.log, speedups)) / len(speedups))
    rows.append(
        f"geometric mean over {len(speedups)} cells: {geomean:.1f}x "
        f"(floors: {MIN_SPEEDUP}x per case, {MIN_GEOMEAN}x aggregate; "
        f"paper-target 10x not met -- see docs/batch-engine.md)"
    )
    save_and_print("batch_engine_speedup", "\n".join(rows))
    assert geomean >= MIN_GEOMEAN, (
        f"aggregate speedup {geomean:.1f}x fell below {MIN_GEOMEAN}x"
    )
    benchmark.extra_info["geomean_speedup"] = round(geomean, 2)
    # One stable sample for the benchmark table itself: the heavy DS run.
    system = generate_system(
        WorkloadConfig(
            subtasks_per_task=8,
            utilization=0.9,
            tasks=12,
            processors=4,
            random_phases=True,
        ),
        seed=1,
    )
    benchmark.pedantic(
        lambda: simulate(
            system,
            DirectSynchronization(),
            horizon_periods=HORIZON_PERIODS,
            record_segments=True,
            engine="batch",
        ),
        rounds=1,
        iterations=1,
    )
