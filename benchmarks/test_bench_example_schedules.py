"""Benchmarks E1-E3: the Example 2 schedules of Figures 3, 5 and 7.

Each benchmark simulates the paper's Example 2 under one protocol,
asserts the figure's defining events, and saves the ASCII Gantt chart.
"""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.model.task import SubtaskId
from repro.viz.gantt import render_gantt
from repro.workload.examples import example_two

from conftest import save_and_print

T22 = SubtaskId(1, 1)


def _simulate(protocol: str):
    return run_protocol(
        example_two(), protocol, horizon=30.0, record_segments=True
    )


def test_fig3_ds_schedule(benchmark):
    result = benchmark.pedantic(
        lambda: _simulate("DS"), rounds=5, iterations=1
    )
    # Figure 3: T2,2 released at 4, 8, 16, 20, 28; T3 misses at 10.
    releases = [result.trace.release_time(T22, m) for m in range(5)]
    assert releases == [4.0, 8.0, 16.0, 20.0, 28.0]
    assert result.trace.eer_time(2, 0) == pytest.approx(8.0)
    assert result.metrics.task(2).deadline_misses >= 1
    save_and_print(
        "fig3_ds_schedule",
        "Figure 3 -- Example 2 under DS (T3 misses its deadline):\n"
        + render_gantt(result.trace, until=24.0),
    )


def test_fig5_pm_schedule(benchmark):
    result = benchmark.pedantic(
        lambda: _simulate("PM"), rounds=5, iterations=1
    )
    # Figure 5: T2,2 strictly periodic from phase 4; T3 meets deadlines.
    releases = [result.trace.release_time(T22, m) for m in range(4)]
    assert releases == [4.0, 10.0, 16.0, 22.0]
    assert result.metrics.task(2).deadline_misses == 0
    save_and_print(
        "fig5_pm_schedule",
        "Figure 5 -- Example 2 under PM (T3 meets its deadline):\n"
        + render_gantt(result.trace, until=24.0),
    )


def test_fig6_mpm_schedule(benchmark):
    result = benchmark.pedantic(
        lambda: _simulate("MPM"), rounds=5, iterations=1
    )
    # Figure 6's property: identical to the PM schedule under ideal
    # conditions.
    pm = _simulate("PM")
    assert result.trace.completions == pm.trace.completions
    save_and_print(
        "fig6_mpm_schedule",
        "Figure 6 -- Example 2 under MPM (identical to PM):\n"
        + render_gantt(result.trace, until=24.0),
    )


def test_fig7_rg_schedule(benchmark):
    result = benchmark.pedantic(
        lambda: _simulate("RG"), rounds=5, iterations=1
    )
    # Figure 7: the held release goes at the idle point 9; T3 meets 10.
    assert result.trace.release_time(T22, 1) == pytest.approx(9.0)
    assert result.trace.eer_time(2, 0) == pytest.approx(5.0)
    assert result.metrics.task(2).deadline_misses == 0
    save_and_print(
        "fig7_rg_schedule",
        "Figure 7 -- Example 2 under RG (T2,2#2 released at idle point 9):\n"
        + render_gantt(result.trace, until=24.0),
    )
