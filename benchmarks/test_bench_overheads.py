"""Benchmark E10: the Section 3.3 cost comparison + kernel throughput.

The static table is regenerated from the cost model; the dynamic part
measures simulator throughput (events/second) under each protocol on a
paper-sized system, which tracks each protocol's event overhead (DS and
PM schedule one interrupt per instance; MPM and RG two).
"""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.core.protocols.costs import PROTOCOL_COSTS, overhead_per_instance
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import save_and_print


def test_section_3_3_cost_table(benchmark):
    rows = benchmark(
        lambda: [costs.describe() for costs in PROTOCOL_COSTS.values()]
    )
    table = "Section 3.3 -- implementation complexity and overhead:\n" + (
        "\n".join("  " + row for row in rows)
    )
    # Spot checks from the paper's text.
    assert PROTOCOL_COSTS["DS"].interrupts_per_instance == 1
    assert PROTOCOL_COSTS["PM"].interrupts_per_instance == 1
    assert PROTOCOL_COSTS["MPM"].interrupts_per_instance == 2
    assert PROTOCOL_COSTS["RG"].interrupts_per_instance == 2
    assert overhead_per_instance(
        "RG", interrupt_cost=1.0, context_switch_cost=1.0
    ) > overhead_per_instance(
        "DS", interrupt_cost=1.0, context_switch_cost=1.0
    )
    save_and_print("section33_costs", table)


@pytest.mark.parametrize("protocol", ["DS", "PM", "MPM", "RG"])
def test_kernel_throughput(benchmark, protocol):
    system = generate_system(
        WorkloadConfig(subtasks_per_task=5, utilization=0.7), seed=1
    )
    result = benchmark.pedantic(
        lambda: run_protocol(system, protocol, horizon_periods=5.0),
        rounds=3,
        iterations=1,
    )
    assert result.events_processed > 0
    assert result.metrics.precedence_violations == 0
