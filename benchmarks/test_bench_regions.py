"""Region-tier economics: hit-path speedup and build amortization.

The ISSUE-9 acceptance benchmark.  Shape-repeat traffic -- same task-set
topology, drifting execution times -- defeats the decision cache (every
request is a new content key) but is exactly what the region tier
serves: after one build, every in-box request is a hash, a store lookup
and a componentwise compare.  The floor here is a 10x speedup over
direct analysis on that traffic; the second test reports the break-even
point where the build's probe cost has amortized.
"""

from __future__ import annotations

import time

from repro.regions.shape import execution_vector, system_at
from repro.regions.tier import RegionTier
from repro.service import AdmissionController, AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import save_and_print

CONFIG = WorkloadConfig(
    subtasks_per_task=3, utilization=0.5, tasks=6, processors=3
)
STREAM = 60


def _shape_repeat_stream(n: int = STREAM) -> list[AdmissionRequest]:
    """One shape, n distinct execution vectors (all below the seed's)."""
    base = generate_system(CONFIG, seed=11)
    e0 = execution_vector(base)
    requests = []
    for i in range(n):
        scale = 0.7 + 0.3 * i / n
        requests.append(
            AdmissionRequest(
                system=system_at(base, tuple(scale * e for e in e0)),
                request_id=f"s{i}",
            )
        )
    return requests


def test_region_hit_path_at_least_10x_faster():
    requests = _shape_repeat_stream()

    direct = AdmissionController()  # decision cache on, but every key new
    started = time.perf_counter()
    computed = [direct.admit(r) for r in requests]
    direct_seconds = time.perf_counter() - started
    assert direct.metrics.snapshot()["cache_hits"] == 0

    regional = AdmissionController(
        region_backend="memory", region_build_threshold=1
    )
    regional.admit(AdmissionRequest(system=generate_system(CONFIG, seed=11)))
    started = time.perf_counter()
    served = [regional.admit(r) for r in requests]
    region_seconds = time.perf_counter() - started
    snapshot = regional.metrics.snapshot()
    assert snapshot["region_hits"] == STREAM, "stream left the region"

    assert [d.admitted for d in served] == [d.admitted for d in computed]
    speedup = direct_seconds / region_seconds
    save_and_print(
        "region_hit_speedup",
        "\n".join(
            [
                f"region tier, {STREAM}-request shape-repeat stream "
                f"{CONFIG.label}:",
                (
                    f"  direct analysis: {direct_seconds:.4f} s "
                    f"({STREAM / direct_seconds:.0f} admissions/s)"
                ),
                (
                    f"  region hits:     {region_seconds:.4f} s "
                    f"({STREAM / region_seconds:.0f} admissions/s)"
                ),
                f"  speedup: {speedup:.0f}x",
            ]
        ),
    )
    assert speedup >= 10.0, (
        f"region hits only {speedup:.1f}x faster "
        f"(direct {direct_seconds:.4f}s, region {region_seconds:.4f}s)"
    )


def test_build_cost_amortizes():
    """Report the break-even admission count for one region build."""
    prime = AdmissionRequest(system=generate_system(CONFIG, seed=11))
    probe_request = _shape_repeat_stream(1)[0]

    started = time.perf_counter()
    tier = RegionTier(build_threshold=1)
    region = tier.build(prime)
    build_seconds = time.perf_counter() - started

    direct = AdmissionController(enable_cache=False)
    started = time.perf_counter()
    for _ in range(20):
        direct.admit(probe_request)
    miss_seconds = (time.perf_counter() - started) / 20

    regional = AdmissionController(region_tier=tier)
    started = time.perf_counter()
    for _ in range(200):
        hit = regional.admit(probe_request)
    hit_seconds = (time.perf_counter() - started) / 200
    assert hit.margins is not None

    saved_per_hit = miss_seconds - hit_seconds
    assert saved_per_hit > 0, "region hit is not cheaper than a miss"
    break_even = build_seconds / saved_per_hit
    save_and_print(
        "region_amortization",
        "\n".join(
            [
                f"region build amortization {CONFIG.label}:",
                (
                    f"  build: {build_seconds * 1e3:.2f} ms "
                    f"({region.probes} probes)"
                ),
                f"  direct decision: {miss_seconds * 1e6:.0f} us",
                f"  region hit:      {hit_seconds * 1e6:.0f} us",
                (
                    f"  break-even after {break_even:.1f} repeat-shape "
                    f"admissions"
                ),
            ]
        ),
    )
    # A build costs a bounded number of direct analyses, so it must pay
    # for itself within a few hundred repeats at worst.
    assert break_even < 10 * region.probes


def test_region_hit_latency(benchmark):
    """Steady-state hit path: shape hash + store lookup + compare."""
    tier = RegionTier(build_threshold=1)
    tier.build(AdmissionRequest(system=generate_system(CONFIG, seed=11)))
    controller = AdmissionController(region_tier=tier)
    request = _shape_repeat_stream(1)[0]
    decision = benchmark(lambda: controller.admit(request))
    assert decision.margins is not None
