"""Benchmark E7: Figure 14 -- the PM/DS average-EER-ratio surface.

Per configuration, the mean over tasks and systems of (average EER time
under PM) / (average EER time under DS).  Expected shape (paper Section
5.3): always above 1; increases with the number of subtasks per task
(>= 2 from 5 subtasks on, around 3-4 at 8); decreases slightly as
utilization grows at fixed chain length.
"""

from __future__ import annotations

from repro.experiments.figures import eer_ratio_surface

from conftest import SUBTASK_COUNTS, save_and_print


def test_fig14_pm_ds_surface(benchmark, simulation_sweep):
    surface = benchmark.pedantic(
        lambda: eer_ratio_surface(simulation_sweep, "PM", "DS"),
        rounds=1,
        iterations=1,
    )
    for cell in surface:
        assert cell.value >= 1.0 - 1e-9
    counts = sorted(SUBTASK_COUNTS)
    # Grows with chain length at every utilization.
    for u in surface.utilization_axis:
        series = [surface.value(n, u) for n in counts]
        assert series == sorted(series)
    # Paper: >= 2 once chains have 5+ subtasks.
    for n in (c for c in counts if c >= 5):
        for u in surface.utilization_axis:
            assert surface.value(n, u) >= 1.8
    # Decreases (weakly) as utilization rises at fixed chain length.
    for n in counts:
        lo_u = surface.value(n, min(surface.utilization_axis))
        hi_u = surface.value(n, max(surface.utilization_axis))
        assert hi_u <= lo_u + 0.15
    save_and_print("fig14_pm_ds_ratio", surface.render(precision=2))
