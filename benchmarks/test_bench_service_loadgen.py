"""Service + load-generator benchmarks: sustained RPS and shard scaling.

Three gates, all run against the async sharded frontend:

1.  **Hit-path campaign** -- a seeded closed-loop campaign of 100k
    requests over a small system population (so the cache absorbs all
    but the first few dozen).  Reports caller-side p50/p99/p999 and
    sustained RPS, and asserts the RPS stays above a floor set well
    under the measured rate (~30k req/s on the reference container;
    the floor keeps >=30% headroom so CI noise cannot flake it while a
    real fast-path regression still fails loudly).

2.  **Stall-bound shard scaling** -- this container has a single CPU,
    so real analysis (pure Python, GIL-bound) cannot demonstrate shard
    parallelism.  Instead the shard compute hook is patched with a
    fixed 6 ms stall (releasing the GIL, like any I/O- or
    subprocess-bound verifier would), every request misses (cache
    disabled, distinct contents), and throughput is compared between
    1 and 4 shards at equal workers-per-shard.  Ideal scaling is 4x;
    consistent-hash imbalance and loop overhead land the measured
    ratio around 3.3x, gated at >= 2.5x.

3.  **Real-compute process scaling** -- the honest version of (2) with
    actual SA/PM + SA/DS analysis on process-pool executors; only
    meaningful with >= 4 cores, so it is skipped elsewhere.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

import repro.service.frontend as frontend_module
from repro.service.engine import compute_decision
from repro.service.frontend import AdmissionFrontend, FrontendConfig
from repro.service.loadgen import LoadgenConfig, run_campaign
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import save_and_print

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)

#: Gate 1: requests in the hit-path campaign (ISSUE-8 floor: >= 100k).
CAMPAIGN_REQUESTS = 100_000
#: Gate 1: sustained-RPS floor.  Measured ~30k req/s on the reference
#: container; 10k leaves ~70% headroom.
MIN_SUSTAINED_RPS = 10_000.0

#: Gate 2: stall-bound scaling floor (ideal 4.0, measured ~3.3).
MIN_SHARD_SCALING = 2.5
STALL_SECONDS = 0.006
STALL_REQUESTS = 240
WORKERS_PER_SHARD = 4

#: Gate 3: real-compute process scaling floor.
MIN_PROCESS_SCALING = 2.5


def test_hit_path_campaign_sustains_rps():
    config = LoadgenConfig(
        requests=CAMPAIGN_REQUESTS,
        systems=32,
        seed=5,
        mode="closed",
        concurrency=32,
        workload=LIGHT,
    )
    report = run_campaign(
        config, FrontendConfig(shards=2, queue_capacity=1024)
    )

    assert report.issued == CAMPAIGN_REQUESTS
    assert report.served == CAMPAIGN_REQUESTS
    assert report.shed == 0

    save_and_print(
        "service_loadgen_hit_path",
        "\n".join(
            [
                f"hit-path campaign, {CAMPAIGN_REQUESTS} requests, "
                "2 shards:",
                report.render(),
            ]
        ),
    )
    assert report.rps >= MIN_SUSTAINED_RPS, (
        f"sustained only {report.rps:.0f} req/s "
        f"(floor {MIN_SUSTAINED_RPS:.0f})"
    )
    assert report.latency_p50 <= report.latency_p99 <= report.latency_p999


def _distinct_requests(count: int) -> list[AdmissionRequest]:
    return [
        AdmissionRequest(
            system=generate_system(LIGHT, seed),
            request_id=f"bench-{seed:04d}",
        )
        for seed in range(count)
    ]


def _drive(config: FrontendConfig, requests) -> float:
    async def run() -> float:
        async with AdmissionFrontend(config) as frontend:
            started = time.perf_counter()
            decisions = await asyncio.gather(
                *[frontend.admit(r) for r in requests]
            )
            elapsed = time.perf_counter() - started
        assert len(decisions) == len(requests)
        assert not any(
            d.rationale.startswith("service shed") for d in decisions
        )
        return elapsed

    return asyncio.run(run())


def test_stall_bound_miss_workload_scales_across_shards(monkeypatch):
    requests = _distinct_requests(STALL_REQUESTS)
    canned = compute_decision(requests[0])

    def stalled_compute(job):
        key, _request = job
        time.sleep(STALL_SECONDS)  # releases the GIL, like real I/O
        return key, canned, STALL_SECONDS

    monkeypatch.setattr(
        frontend_module, "_shard_compute", stalled_compute
    )

    elapsed = {}
    for shards in (1, 4):
        elapsed[shards] = _drive(
            FrontendConfig(
                shards=shards,
                workers_per_shard=WORKERS_PER_SHARD,
                queue_capacity=512,
                cache_backend=None,
            ),
            requests,
        )

    scaling = elapsed[1] / elapsed[4]
    save_and_print(
        "service_loadgen_shard_scaling",
        "\n".join(
            [
                f"stall-bound miss workload, {STALL_REQUESTS} requests"
                f" x {STALL_SECONDS * 1e3:.0f} ms stall, "
                f"{WORKERS_PER_SHARD} workers/shard:",
                (
                    f"  1 shard : {elapsed[1]:.3f} s "
                    f"({STALL_REQUESTS / elapsed[1]:.0f} req/s)"
                ),
                (
                    f"  4 shards: {elapsed[4]:.3f} s "
                    f"({STALL_REQUESTS / elapsed[4]:.0f} req/s)"
                ),
                f"  scaling : {scaling:.2f}x (ideal 4.00x)",
            ]
        ),
    )
    assert scaling >= MIN_SHARD_SCALING, (
        f"1->4 shards only {scaling:.2f}x "
        f"(floor {MIN_SHARD_SCALING}x)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="real-compute shard scaling needs >= 4 cores",
)
def test_real_compute_scales_across_process_shards():
    requests = _distinct_requests(48)
    elapsed = {}
    for shards in (1, 4):
        elapsed[shards] = _drive(
            FrontendConfig(
                shards=shards,
                executor="process",
                workers_per_shard=1,
                queue_capacity=256,
                cache_backend=None,
            ),
            requests,
        )

    scaling = elapsed[1] / elapsed[4]
    save_and_print(
        "service_loadgen_process_scaling",
        "\n".join(
            [
                "real-compute miss workload, 48 requests, process "
                "executors:",
                f"  1 shard : {elapsed[1]:.3f} s",
                f"  4 shards: {elapsed[4]:.3f} s",
                f"  scaling : {scaling:.2f}x",
            ]
        ),
    )
    assert scaling >= MIN_PROCESS_SCALING
