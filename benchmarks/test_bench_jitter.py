"""Benchmark E11: the paper's output-jitter claims (Sections 2, 3, 6).

* Under PM/MPM the output jitter of a task is bounded by the response-
  time bound of its *last* subtask;
* under RG it can be as large as the estimated worst-case EER time, but
  no larger;
* DS's jitter is likewise bounded by its own (SA/DS) EER bound.
"""

from __future__ import annotations

import math

from repro.api import compare_protocols
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.model.task import SubtaskId
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import SYSTEMS, save_and_print

CONFIG = WorkloadConfig(
    subtasks_per_task=4, utilization=0.7, random_phases=True
)


def _measure():
    rows = []
    for seed in range(SYSTEMS):
        system = generate_system(CONFIG, seed)
        sa_pm = analyze_sa_pm(system)
        sa_ds = analyze_sa_ds(system, max_iterations=80)
        results = compare_protocols(
            system, ("DS", "PM", "RG"), horizon_periods=10.0
        )
        for i, task in enumerate(system.tasks):
            last = SubtaskId(i, task.chain_length - 1)
            rows.append(
                {
                    "seed": seed,
                    "task": i,
                    "pm_jitter": results["PM"].metrics.task(i).output_jitter,
                    "rg_jitter": results["RG"].metrics.task(i).output_jitter,
                    "ds_jitter": results["DS"].metrics.task(i).output_jitter,
                    "last_bound": sa_pm.subtask_bounds[last],
                    "eer_bound": sa_pm.task_bounds[i],
                    "ds_bound": sa_ds.task_bounds[i],
                }
            )
    return rows


def test_output_jitter_claims(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    assert rows
    pm_worst = rg_worst = ds_worst = 0.0
    for row in rows:
        # PM's jitter is bounded by the last stage's response bound.
        assert row["pm_jitter"] <= row["last_bound"] + 1e-6
        # RG's jitter is bounded by the estimated worst-case EER time.
        assert row["rg_jitter"] <= row["eer_bound"] + 1e-6
        if math.isfinite(row["ds_bound"]):
            assert row["ds_jitter"] <= row["ds_bound"] + 1e-6
        pm_worst = max(pm_worst, row["pm_jitter"] / row["last_bound"])
        rg_worst = max(rg_worst, row["rg_jitter"] / row["eer_bound"])
        ds_worst = max(ds_worst, row["ds_jitter"] / row["eer_bound"])
    summary = (
        "Output jitter (worst observed / relevant bound) over "
        f"{SYSTEMS} (4,70) systems:\n"
        f"  PM jitter / last-stage bound : {pm_worst:.3f} (<= 1 by claim)\n"
        f"  RG jitter / est. WCEER       : {rg_worst:.3f} (<= 1 by claim)\n"
        f"  DS jitter / est. WCEER(SA/PM): {ds_worst:.3f} (unbounded by it)\n"
        "PM keeps output jitter small; RG trades jitter for shorter "
        "average EER times (paper Section 6)."
    )
    save_and_print("jitter_claims", summary)
