"""Lock-subsystem overhead benchmarks.

The subsystem's contract is "pay only for what you declare": a lock
manager configured onto a system without critical sections installs no
per-event hooks and must reproduce the bare trace byte-for-byte (the
``lock-free-identity`` oracle).  These benchmarks pin the price of that
configured-but-idle plumbing on the simulator hot path, plus the
throughput of a genuinely resourceful run.
"""

from __future__ import annotations

import time

from repro.core.protocols.factory import make_controller
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.locks import (
    LockingConfig,
    analyze_sa_pm_blocking,
    inject_critical_sections,
)
from repro.sim.simulator import simulate
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import save_and_print

_CONFIG = WorkloadConfig(
    subtasks_per_task=4, utilization=0.6, tasks=4, processors=3
)
_HORIZON = 20.0


def _build():
    system = generate_system(_CONFIG, seed=0)
    bounds = analyze_sa_pm(system).subtask_bounds
    return system, bounds


def _run(system, bounds, locking):
    return simulate(
        system,
        make_controller("RG", system, bounds=bounds),
        horizon_periods=_HORIZON,
        locking=locking,
    )


def _best_of(repetitions, thunk):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def test_simulate_with_sections_throughput(benchmark):
    """RG simulation of a genuinely resourceful system under DPCP."""
    system, _bounds = _build()
    locked = inject_critical_sections(
        system, ratio=0.15, resources=2, participation=0.5, seed=0
    )
    assert locked.has_critical_sections
    bounds = analyze_sa_pm_blocking(
        locked, locking=LockingConfig("DPCP")
    ).subtask_bounds
    result = benchmark(
        lambda: _run(locked, bounds, LockingConfig("DPCP"))
    )
    assert result.trace.locks is not None


def test_lock_free_manager_overhead_under_10_percent():
    """The acceptance bound: an idle lock manager costs < 10%, best-of-7."""
    system, bounds = _build()
    bare_best = _best_of(7, lambda: _run(system, bounds, None))
    idle_best = _best_of(
        7, lambda: _run(system, bounds, LockingConfig("DPCP"))
    )
    ratio = idle_best / bare_best
    save_and_print(
        "lock_manager_overhead",
        f"bare {bare_best * 1e3:.2f}ms  idle-manager {idle_best * 1e3:.2f}ms"
        f"  ratio {ratio:.3f}x",
    )
    assert ratio < 1.10, (
        f"section-free lock manager costs {ratio:.2f}x the bare simulator "
        "(limit 1.10x)"
    )
