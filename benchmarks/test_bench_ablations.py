"""Ablation benchmarks E12-E14: the design choices DESIGN.md calls out.

* E12 -- overhead-aware schedulability: how platform interrupt /
  context-switch costs shift each protocol's schedulability verdicts
  (quantifying Section 3.3's table).
* E13 -- the local-deadline slicing baseline vs Algorithm SA/PM:
  acceptance rates of the prior-art analysis against the paper's.
* E14 -- simulation-horizon ablation: the average-EER ratio surfaces
  are insensitive to the horizon choice (our substitute for the paper's
  unstated simulation length).
"""

from __future__ import annotations

import statistics

from repro.core.analysis.local_deadline import analyze_local_deadline
from repro.core.analysis.overheads import analyze_with_overhead
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.experiments.evaluation import evaluate_system
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import SYSTEMS, save_and_print

CONFIG = WorkloadConfig(subtasks_per_task=4, utilization=0.7)


def test_overhead_ablation(benchmark):
    """E12: schedulable-task counts as platform costs grow, per protocol."""

    def measure():
        # Interrupt/context-switch costs as a fraction of the smallest
        # period (100): 0%, 0.05%, 0.2%.
        cost_points = (0.0, 0.05, 0.2)
        table: dict[tuple[str, float], int] = {}
        for seed in range(SYSTEMS):
            system = generate_system(CONFIG, seed)
            for protocol in ("DS", "PM", "MPM", "RG"):
                for cost in cost_points:
                    verdict = analyze_with_overhead(
                        system,
                        protocol,
                        interrupt_cost=cost,
                        context_switch_cost=cost,
                        **(
                            {"max_iterations": 60}
                            if protocol == "DS"
                            else {}
                        ),
                    )
                    key = (protocol, cost)
                    table[key] = table.get(key, 0) + sum(
                        verdict.is_task_schedulable(i)
                        for i in range(len(system.tasks))
                    )
        return cost_points, table

    cost_points, table = benchmark.pedantic(measure, rounds=1, iterations=1)
    total = SYSTEMS * CONFIG.tasks
    lines = [
        f"E12 -- schedulable tasks (of {total}) vs per-event cost, "
        f"config {CONFIG.label}:",
        f"{'protocol':<10}" + "".join(f"cost={c:<8}" for c in cost_points),
    ]
    for protocol in ("DS", "PM", "MPM", "RG"):
        row = f"{protocol:<10}"
        counts = [table[(protocol, c)] for c in cost_points]
        # More overhead never helps.
        assert counts == sorted(counts, reverse=True)
        row += "".join(f"{count:<13}" for count in counts)
        lines.append(row)
    # The SA/PM protocols dominate DS at every cost point here (long
    # chains, high utilization).
    for cost in cost_points:
        assert table[("RG", cost)] >= table[("DS", cost)]
    save_and_print("e12_overhead_ablation", "\n".join(lines))


def test_local_deadline_baseline(benchmark):
    """E13: slicing (prior art) accepts a subset of what SA/PM accepts."""

    def measure():
        sliced_ok = sa_pm_ok = both = 0
        total = 0
        for seed in range(SYSTEMS):
            system = generate_system(CONFIG, seed)
            sliced = analyze_local_deadline(system)
            sa_pm = analyze_sa_pm(system)
            for i in range(len(system.tasks)):
                total += 1
                s_ok = sliced.is_task_schedulable(i)
                p_ok = sa_pm.is_task_schedulable(i)
                sliced_ok += s_ok
                sa_pm_ok += p_ok
                both += s_ok and p_ok
                # Soundness relation: slicing acceptance implies SA/PM
                # acceptance (slices are per-stage sufficient conditions).
                assert p_ok or not s_ok
        return total, sliced_ok, sa_pm_ok

    total, sliced_ok, sa_pm_ok = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert sa_pm_ok >= sliced_ok
    save_and_print(
        "e13_local_deadline",
        (
            f"E13 -- acceptance on {total} tasks of config {CONFIG.label}:\n"
            f"  local-deadline slicing (prior art): {sliced_ok}\n"
            f"  Algorithm SA/PM (the paper's):      {sa_pm_ok}\n"
            f"SA/PM certifies {sa_pm_ok - sliced_ok} task(s) the slicing "
            f"baseline rejects."
        ),
    )


def test_period_scale_ablation(benchmark):
    """E18: sensitivity of the Figure-12 corner to the one parameter the
    paper leaves unspecified -- the truncated exponential's rate.

    The qualitative picture (high failure at (7,80)) survives across a
    9x range of scales; the exact rate moves by tens of percent, which
    bounds how literally our absolute failure rates should be read.
    """
    from repro.core.analysis.sa_ds import analyze_sa_ds
    from repro.workload.generator import generate_system

    sample = max(SYSTEMS, 10)

    def measure():
        rates = {}
        for scale in (1000.0, 3300.0, 9000.0):
            config = WorkloadConfig(
                subtasks_per_task=7,
                utilization=0.8,
                period_scale=scale,
            )
            failures = sum(
                analyze_sa_ds(
                    generate_system(config, seed), max_iterations=60
                ).failed
                for seed in range(sample)
            )
            rates[scale] = failures / sample
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    # The hard corner stays hard at every scale.
    assert all(rate >= 0.25 for rate in rates.values())
    save_and_print(
        "e18_period_scale",
        "E18 -- (7,80) DS failure rate vs period-distribution scale "
        f"({sample} systems each):\n"
        + "\n".join(
            f"  scale {scale:>6.0f}: {rate:.2f}"
            for scale, rate in sorted(rates.items())
        )
        + "\nThe paper's unspecified exponential rate shifts absolute "
        "failure rates\nbut not the figure's shape.",
    )


def test_breakdown_scaling_penalty(benchmark):
    """E19: the capacity price of choosing DS, in breakdown-scaling terms.

    For each sampled system, bisect the largest uniform execution-time
    scaling each analysis still certifies.  The SA/PM-to-SA/DS ratio of
    those factors says how much *faster* the processors must be for DS
    to match the certification the release-shaping protocols get --
    Figure 13's bound ratios converted into an engineering number.
    """
    from repro.core.analysis.sensitivity import breakdown_scaling
    from repro.workload.generator import generate_system

    config = WorkloadConfig(subtasks_per_task=4, utilization=0.6, tasks=8)

    def measure():
        rows = []
        for seed in range(max(2, SYSTEMS // 2)):
            system = generate_system(config, seed)
            pm_factor = breakdown_scaling(
                system, "SA/PM", tolerance=5e-3
            )
            ds_factor = breakdown_scaling(
                system, "SA/DS", tolerance=5e-3
            )
            rows.append((seed, pm_factor, ds_factor))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for _seed, pm_factor, ds_factor in rows:
        assert ds_factor <= pm_factor + 1e-6
    lines = [
        f"E19 -- breakdown execution-time scaling at {config.label}:",
        f"{'seed':>6}{'SA/PM':>9}{'SA/DS':>9}{'penalty':>10}",
    ]
    for seed, pm_factor, ds_factor in rows:
        penalty = pm_factor / ds_factor if ds_factor > 0 else float("inf")
        lines.append(
            f"{seed:>6}{pm_factor:>9.3f}{ds_factor:>9.3f}{penalty:>10.2f}x"
        )
    lines.append(
        "penalty = how much faster the platform must be before DS "
        "certifies what PM/MPM/RG already do."
    )
    save_and_print("e19_breakdown", "\n".join(lines))


def test_horizon_ablation(benchmark):
    """E14: PM/DS ratio means move by well under 5% from 5x to 20x."""

    def measure():
        config = CONFIG.with_random_phases()
        means = {}
        for horizon_periods in (5.0, 10.0, 20.0):
            ratios = []
            for seed in range(max(2, SYSTEMS // 2)):
                record = evaluate_system(
                    config,
                    seed,
                    run_analyses=False,
                    horizon_periods=horizon_periods,
                )
                ratios.extend(record.eer_ratios("PM", "DS"))
            means[horizon_periods] = statistics.mean(ratios)
        return means

    means = benchmark.pedantic(measure, rounds=1, iterations=1)
    reference = means[20.0]
    for horizon_periods, value in means.items():
        assert abs(value - reference) / reference < 0.05
    save_and_print(
        "e14_horizon_ablation",
        "E14 -- PM/DS ratio vs simulation horizon (multiples of the "
        "largest period):\n"
        + "\n".join(
            f"  {periods:>5.0f}x : {value:.4f}"
            for periods, value in sorted(means.items())
        )
        + "\nThe unstated paper horizon is immaterial at this scale.",
    )
