"""Benchmark E8: Figure 15 -- the RG/DS average-EER-ratio surface.

Expected shape (paper Section 5.3): the ratio sits between 1 and 2
across the grid, closest to 1 where processors have spare capacity
(rule 2 fires at every idle point), and largest at 90% utilization,
where idle points are rare and RG's releases become nearly periodic.
"""

from __future__ import annotations

from repro.experiments.figures import eer_ratio_surface

from conftest import save_and_print


def test_fig15_rg_ds_surface(benchmark, simulation_sweep):
    surface = benchmark.pedantic(
        lambda: eer_ratio_surface(simulation_sweep, "RG", "DS"),
        rounds=1,
        iterations=1,
    )
    for cell in surface:
        assert 1.0 - 1e-9 <= cell.value <= 2.0
    # The 90%-utilization column dominates the 50% column: rule 2 fires
    # less often when processors are busy.
    lo_u = min(surface.utilization_axis)
    hi_u = max(surface.utilization_axis)
    lo_mean = sum(
        surface.value(n, lo_u) for n in surface.subtask_axis
    ) / len(surface.subtask_axis)
    hi_mean = sum(
        surface.value(n, hi_u) for n in surface.subtask_axis
    ) / len(surface.subtask_axis)
    assert hi_mean >= lo_mean
    save_and_print("fig15_rg_ds_ratio", surface.render(precision=3))
