"""Admission-service throughput: cold vs warm decision cache.

The ISSUE-1 acceptance benchmark: on a repeated 100-system batch, warm-
cache admission must be at least 10x faster than cold-cache admission
(in practice the gap is orders of magnitude -- a hit is a dict lookup,
a miss is a full SA/PM + SA/DS run).
"""

from __future__ import annotations

import time

from repro.service import (
    AdmissionController,
    AdmissionRequest,
    DecisionCache,
    admit_batch,
)
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import save_and_print

BATCH_SIZE = 100
CONFIG = WorkloadConfig(
    subtasks_per_task=3, utilization=0.6, tasks=8, processors=4
)


def _batch() -> list[AdmissionRequest]:
    return [
        AdmissionRequest(
            system=generate_system(CONFIG, seed), request_id=str(seed)
        )
        for seed in range(BATCH_SIZE)
    ]


def test_warm_cache_batch_at_least_10x_faster():
    requests = _batch()
    cache = DecisionCache(capacity=2 * BATCH_SIZE)

    started = time.perf_counter()
    cold = admit_batch(requests, cache=cache, workers=1)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = admit_batch(requests, cache=cache, workers=1)
    warm_seconds = time.perf_counter() - started

    assert warm == cold, "cache changed the decisions"
    stats = cache.stats()
    assert stats.misses == BATCH_SIZE and stats.hits == BATCH_SIZE

    speedup = cold_seconds / warm_seconds
    save_and_print(
        "admission_throughput",
        "\n".join(
            [
                f"admission throughput, {BATCH_SIZE}-system batch "
                f"{CONFIG.label}:",
                (
                    f"  cold cache: {cold_seconds:.4f} s "
                    f"({BATCH_SIZE / cold_seconds:.0f} admissions/s)"
                ),
                (
                    f"  warm cache: {warm_seconds:.4f} s "
                    f"({BATCH_SIZE / warm_seconds:.0f} admissions/s)"
                ),
                f"  speedup: {speedup:.0f}x",
            ]
        ),
    )
    assert speedup >= 10.0, (
        f"warm cache only {speedup:.1f}x faster "
        f"(cold {cold_seconds:.4f}s, warm {warm_seconds:.4f}s)"
    )


def test_persisted_cache_restart_matches(tmp_path):
    """A warm restart from disk serves the whole batch without computing."""
    requests = _batch()
    path = tmp_path / "cache.jsonl"
    first = AdmissionController(cache=DecisionCache(path=path))
    before = first.admit_batch(requests, workers=1)
    first.cache.save()

    restarted = AdmissionController(cache=DecisionCache(path=path))
    started = time.perf_counter()
    after = restarted.admit_batch(requests, workers=1)
    warm_seconds = time.perf_counter() - started

    assert after == before
    assert restarted.metrics.snapshot()["cache_misses"] == 0
    save_and_print(
        "admission_warm_restart",
        (
            f"persisted-cache restart: {BATCH_SIZE} admissions in "
            f"{warm_seconds:.4f} s with 0 recomputations"
        ),
    )


def test_single_admission_hit_latency(benchmark):
    """Steady-state hit path: content hash + LRU lookup only."""
    controller = AdmissionController()
    request = AdmissionRequest(system=generate_system(CONFIG, seed=0))
    controller.admit(request)  # prime
    decision = benchmark(lambda: controller.admit(request))
    assert decision.admitted in (True, False)
    assert controller.metrics.snapshot()["cache_misses"] == 1


def test_single_admission_miss_latency(benchmark):
    """Cold path for reference: one full SA/PM + SA/DS decision."""
    controller = AdmissionController(enable_cache=False)
    request = AdmissionRequest(system=generate_system(CONFIG, seed=1))
    decision = benchmark(lambda: controller.admit(request))
    assert decision.key
