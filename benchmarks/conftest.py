"""Shared fixtures for the benchmark harness.

The figure benchmarks (12-16) share two sweeps over the paper's (N, U)
grid -- one analysis-only (Figures 12-13), one simulation-only (Figures
14-16) -- computed once per session and reused.  Set the environment
variable ``REPRO_BENCH_SYSTEMS`` to raise the per-configuration sample
(paper: 1000; default here: 4, which already reproduces every shape) and
``REPRO_BENCH_GRID=full`` to sweep all 35 configurations instead of the
default 3x3 sub-grid.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.evaluation import DEFAULT_PROTOCOLS
from repro.experiments.runner import sweep_grid
from repro.workload.config import paper_grid

OUT_DIR = Path(__file__).parent / "out"

SYSTEMS = int(os.environ.get("REPRO_BENCH_SYSTEMS", "4"))

if os.environ.get("REPRO_BENCH_GRID", "sub") == "full":
    SUBTASK_COUNTS: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)
    UTILIZATIONS: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)
else:
    SUBTASK_COUNTS = (2, 5, 8)
    UTILIZATIONS = (0.5, 0.7, 0.9)


def save_and_print(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/out/ and echo it."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def analysis_sweep():
    """Analyses (SA/PM + SA/DS) over the grid; no simulations."""
    configs = paper_grid(
        subtask_counts=SUBTASK_COUNTS, utilizations=UTILIZATIONS
    )
    return sweep_grid(
        configs,
        SYSTEMS,
        run_simulations=False,
        sa_ds_max_iterations=80,
    )


@pytest.fixture(scope="session")
def simulation_sweep():
    """DS/PM/RG simulations over the grid; random phases, no analyses."""
    configs = paper_grid(
        subtask_counts=SUBTASK_COUNTS,
        utilizations=UTILIZATIONS,
        random_phases=True,
    )
    return sweep_grid(
        configs,
        SYSTEMS,
        run_analyses=False,
        protocols=DEFAULT_PROTOCOLS,
        horizon_periods=10.0,
    )
