"""Benchmark E9: Figure 16 -- the PM/RG average-EER-ratio surface.

Expected shape (paper Section 5.3): consistently above one -- RG's
early releases always beat PM's fixed phases on average -- reaching 2-3
for configurations with 6-8 subtasks per task.
"""

from __future__ import annotations

from repro.experiments.figures import eer_ratio_surface

from conftest import SUBTASK_COUNTS, save_and_print


def test_fig16_pm_rg_surface(benchmark, simulation_sweep):
    surface = benchmark.pedantic(
        lambda: eer_ratio_surface(simulation_sweep, "PM", "RG"),
        rounds=1,
        iterations=1,
    )
    for cell in surface:
        assert cell.value >= 1.0 - 1e-9
    # Grows with chain length.
    for u in surface.utilization_axis:
        series = [surface.value(n, u) for n in sorted(SUBTASK_COUNTS)]
        assert series == sorted(series)
    # Paper: reaches 2-3 for 6+ subtasks per task.
    longest = max(SUBTASK_COUNTS)
    assert any(
        surface.value(longest, u) >= 2.0 for u in surface.utilization_axis
    )
    save_and_print("fig16_pm_rg_ratio", surface.render(precision=2))
