"""Benchmark E5: Figure 12 -- the DS failure-rate surface.

Regenerates the paper's failure-rate plot: the fraction of systems per
(N, U) configuration for which Algorithm SA/DS cannot produce finite
EER bounds.  Expected shape (paper Section 5.2): mostly zero, rising
sharply toward 1 as N approaches 8 and U approaches 90%.
"""

from __future__ import annotations

from repro.experiments.figures import failure_rate_surface

from conftest import SUBTASK_COUNTS, UTILIZATIONS, save_and_print


def test_fig12_failure_rate_surface(benchmark, analysis_sweep):
    surface = benchmark.pedantic(
        lambda: failure_rate_surface(analysis_sweep), rounds=1, iterations=1
    )
    low_corner = surface.value(min(SUBTASK_COUNTS), 50)
    high_corner = surface.value(max(SUBTASK_COUNTS), 90)
    # The paper's shape: near zero at the benign corner, near one at the
    # (8, 90) corner.
    assert low_corner == 0.0
    assert high_corner >= 0.75
    # Monotone along the main diagonal of the swept grid.
    diagonal = [
        surface.value(n, u)
        for n, u in zip(
            sorted(SUBTASK_COUNTS),
            sorted(round(u * 100) for u in UTILIZATIONS),
        )
    ]
    assert diagonal == sorted(diagonal)
    save_and_print("fig12_failure_rate", surface.render(precision=2))
