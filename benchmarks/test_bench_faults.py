"""Fault-plane overhead benchmarks.

The plane's contract is "pay only for what you inject": a zero-rate
fault configuration arms no rng streams, wraps the latency model in a
pass-through, and must reproduce the fault-free trace byte-for-byte
(the ``fault-free-identity`` oracle).  These benchmarks pin the price
of that armed-but-null plumbing on the simulator hot path.
"""

from __future__ import annotations

import time

from repro.core.protocols.factory import make_controller
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.faults import FaultConfig
from repro.sim.simulator import simulate
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

from conftest import save_and_print

_CONFIG = WorkloadConfig(
    subtasks_per_task=4, utilization=0.6, tasks=4, processors=3
)
_HORIZON = 20.0


def _build():
    system = generate_system(_CONFIG, seed=0)
    bounds = analyze_sa_pm(system).subtask_bounds
    return system, bounds


def _run(system, bounds, faults):
    return simulate(
        system,
        make_controller("RG", system, bounds=bounds),
        horizon_periods=_HORIZON,
        faults=faults,
    )


def _best_of(repetitions, thunk):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def test_simulate_with_null_plane_throughput(benchmark):
    """RG simulation with a zero-rate plane armed."""
    system, bounds = _build()
    result = benchmark(lambda: _run(system, bounds, FaultConfig()))
    assert result.trace.faults is not None


def test_null_plane_overhead_under_10_percent():
    """The acceptance bound: a zero-rate plane costs < 10%, best-of-7."""
    system, bounds = _build()
    bare_best = _best_of(7, lambda: _run(system, bounds, None))
    null_best = _best_of(7, lambda: _run(system, bounds, FaultConfig()))
    ratio = null_best / bare_best
    save_and_print(
        "fault_plane_overhead",
        f"bare {bare_best * 1e3:.2f}ms  null-plane {null_best * 1e3:.2f}ms"
        f"  ratio {ratio:.3f}x",
    )
    assert ratio < 1.10, (
        f"zero-rate fault plane costs {ratio:.2f}x the bare simulator "
        "(limit 1.10x)"
    )
