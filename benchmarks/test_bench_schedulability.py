"""Benchmark E17: certifiable schedulability per protocol family.

Not one of the paper's plotted figures, but the number its conclusion
turns on: with deadlines equal to periods, what fraction of tasks can
each analysis certify as the grid hardens?  The SA/PM column is the
PM/MPM/RG verdict; the SA/DS column is the DS verdict.  The paper's
"DS is not a suitable choice [for] high processor utilization and ...
long subtask chains" shows up as the widening gap.
"""

from __future__ import annotations

from repro.experiments.figures import schedulability_surface

from conftest import SUBTASK_COUNTS, save_and_print


def test_schedulability_gap(benchmark, analysis_sweep):
    def build():
        return (
            schedulability_surface(analysis_sweep, "SA/PM"),
            schedulability_surface(analysis_sweep, "SA/DS"),
        )

    sa_pm, sa_ds = benchmark.pedantic(build, rounds=1, iterations=1)
    # SA/DS never certifies more than SA/PM (its bounds dominate).
    for cell in sa_pm:
        assert sa_ds.value(*cell.key) <= cell.value + 1e-9
    # The gap is material at the hard corner.
    hard = (max(SUBTASK_COUNTS), 90)
    assert sa_pm.value(*hard) >= sa_ds.value(*hard)
    save_and_print(
        "e17_schedulability",
        sa_pm.render(precision=2)
        + "\n\n"
        + sa_ds.render(precision=2)
        + "\n(The gap between the two tables is the schedulability cost "
        "of choosing DS -- the paper's bottom-line advice.)",
    )
