"""The service-plane chaos harness: scenarios, oracles, gate, CLI."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.chaos import (
    SERVICE_CHAOS_SCENARIOS,
    ScenarioResult,
    ServiceChaosReport,
    run_service_chaos,
)


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            run_service_chaos(scenarios=("exorcism",))

    def test_empty_selection_rejected(self):
        with pytest.raises(ConfigurationError, match="no scenarios"):
            run_service_chaos(scenarios=())

    def test_scenario_names_are_stable(self):
        assert SERVICE_CHAOS_SCENARIOS == (
            "torn-cache-tail",
            "truncated-cache-file",
            "region-store-salvage",
            "sqlite-corruption",
            "shard-crash",
            "slow-backend",
        )


class TestReport:
    def test_empty_results_fail_the_gate(self):
        report = ServiceChaosReport(seed=0, requests=0, results=())
        assert not report.gate_passed

    def test_failures_fail_the_gate_and_render(self):
        report = ServiceChaosReport(
            seed=0,
            requests=10,
            results=(
                ScenarioResult("a", ()),
                ScenarioResult("b", ("oracle broke",), ("context",)),
            ),
        )
        assert not report.gate_passed
        text = report.render()
        assert "a: PASS" in text
        assert "b: FAIL" in text
        assert "! oracle broke" in text
        assert "gate: FAILED" in text


class TestScenarios:
    """One storage scenario and one shard scenario, kept small."""

    def test_torn_cache_tail_salvages_and_matches(self, tmp_path):
        report = run_service_chaos(
            requests=24,
            systems=8,
            seed=3,
            scenarios=("torn-cache-tail",),
            workdir=tmp_path,
        )
        assert report.gate_passed, report.render()
        (result,) = report.results
        assert any("salvaged" in note for note in result.notes)
        # The damaged artifact was kept for inspection in workdir.
        assert (tmp_path / "torn-cache-tail-cache.jsonl").exists()

    def test_shard_crash_opens_reroutes_restores(self):
        report = run_service_chaos(
            requests=36, systems=12, seed=0, scenarios=("shard-crash",)
        )
        assert report.gate_passed, report.render()
        (result,) = report.results
        assert any("rerouted" in note for note in result.notes)

    def test_sqlite_corruption_quarantines_and_rebuilds(self, tmp_path):
        report = run_service_chaos(
            requests=24,
            systems=8,
            seed=1,
            scenarios=("sqlite-corruption",),
            workdir=tmp_path,
        )
        assert report.gate_passed, report.render()
        assert (tmp_path / "cache.sqlite.quarantined-0").exists()


class TestCli:
    def test_gate_and_stats(self, capsys):
        from repro.cli import main

        code = main(
            [
                "service-chaos",
                "--requests", "24",
                "--systems", "8",
                "--scenarios", "torn-cache-tail",
                "--require-gate",
                "--stats",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "gate: PASSED" in captured.out
        assert "salvaged" in captured.err
