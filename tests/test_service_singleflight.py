"""Cross-batch single-flight: concurrent misses on one key compute once.

Regression for the pre-fix behaviour where ``admit_batch`` deduplicated
keys only *within* one batch: two concurrent batches (or shards, or
threads) both missing on the same key raced to compute it twice.  The
fix claims keys at the cache's in-flight table
(:class:`repro.service.cache.SingleFlight`); followers wait for the
leader's published decision instead of recomputing.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.service.batch as batch_module
from repro.service.batch import admit_batch
from repro.service.cache import DecisionCache, SingleFlight
from repro.service.metrics import ServiceMetrics
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)

_real_compute_job = batch_module._compute_job


def _request(seed: int, request_id: str) -> AdmissionRequest:
    return AdmissionRequest(
        system=generate_system(LIGHT, seed), request_id=request_id
    )


class TestSingleFlightTable:
    def test_first_claim_leads_then_followers_wait(self):
        flights = SingleFlight()
        leader, flight = flights.begin("k")
        assert leader
        follower, same_flight = flights.begin("k")
        assert not follower
        assert same_flight is flight
        assert flights.in_flight() == 1
        assert flights.coalesced == 1

    def test_finish_publishes_to_waiters(self):
        flights = SingleFlight()
        _, flight = flights.begin("k")
        decision = object()
        flights.finish("k", decision, degraded=True)
        published, degraded = SingleFlight.wait(flight)
        assert published is decision
        assert degraded
        assert flights.in_flight() == 0

    def test_finish_none_unblocks_without_a_decision(self):
        flights = SingleFlight()
        _, flight = flights.begin("k")
        flights.finish("k", None)
        published, degraded = SingleFlight.wait(flight)
        assert published is None
        assert not degraded

    def test_key_is_claimable_again_after_finish(self):
        flights = SingleFlight()
        flights.begin("k")
        flights.finish("k", None)
        leader, _ = flights.begin("k")
        assert leader

    def test_wait_timeout_returns_none(self):
        flights = SingleFlight()
        _, flight = flights.begin("k")
        published, degraded = SingleFlight.wait(flight, timeout=0.01)
        assert published is None
        assert not degraded


class TestConcurrentBatchesComputeOnce:
    def test_same_key_across_threads_computes_once(self, monkeypatch):
        """The regression: two batches, one key, exactly one compute."""
        calls: list[str] = []
        entered = threading.Event()

        def slow_compute(payload):
            calls.append(payload[0])
            entered.set()
            time.sleep(0.3)  # hold the flight open for the follower
            return _real_compute_job(payload)

        monkeypatch.setattr(batch_module, "_compute_job", slow_compute)
        cache = DecisionCache()
        metrics = ServiceMetrics()
        results: dict[str, list] = {}

        def run(tag: str, request_id: str) -> None:
            results[tag] = admit_batch(
                [_request(1, request_id)],
                cache=cache,
                metrics=metrics,
                workers=1,
            )

        leader = threading.Thread(target=run, args=("leader", "a"))
        follower = threading.Thread(target=run, args=("follower", "b"))
        leader.start()
        assert entered.wait(timeout=5.0)  # leader is mid-compute
        follower.start()
        leader.join()
        follower.join()

        assert len(calls) == 1  # pre-fix: 2 (once per batch)
        assert results["leader"][0].admitted == results["follower"][0].admitted
        assert results["leader"][0].key == results["follower"][0].key
        assert cache.stats().coalesced == 1
        assert metrics.snapshot()["coalesced"] == 1
        # The follower's serving counted as a hit, not a second miss.
        assert metrics.snapshot()["cache_hits"] >= 1

    def test_follower_computes_for_itself_if_leader_publishes_nothing(
        self, monkeypatch
    ):
        """A dying leader must not wedge or starve its followers."""
        cache = DecisionCache()
        request = _request(2, "solo")
        key_holder: list[str] = []

        def observing_compute(payload):
            key_holder.append(payload[0])
            return _real_compute_job(payload)

        monkeypatch.setattr(
            batch_module, "_compute_job", observing_compute
        )
        # Stage a leader that claimed the key and then vanished.
        probe = admit_batch([request], cache=cache, workers=1)
        cache.clear()
        leader, _flight = cache.flights.begin(probe[0].key)
        assert leader

        done: list = []

        def follower() -> None:
            done.extend(
                admit_batch([request], cache=cache, workers=1)
            )

        thread = threading.Thread(target=follower)
        thread.start()
        time.sleep(0.1)
        assert not done  # follower is parked on the flight
        cache.flights.finish(probe[0].key, None)  # leader dies
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert done[0] == probe[0]  # self-computed, identical verdict

    def test_degraded_leader_outcome_is_not_cached_for_followers(
        self, monkeypatch
    ):
        """Followers receive degraded verdicts but nobody caches them."""

        def always_raises(payload):
            raise RuntimeError("staged analysis crash")

        monkeypatch.setattr(batch_module, "_compute_job", always_raises)
        cache = DecisionCache()
        decisions = admit_batch(
            [_request(3, "x")],
            cache=cache,
            workers=1,
            max_retries=0,
        )
        assert decisions[0].rationale.startswith("service degraded:")
        assert cache.get(decisions[0].key) is None
        assert cache.flights.in_flight() == 0  # flight was released

    def test_within_batch_dedup_still_counts_duplicates_as_hits(self):
        base = _request(4, "a")
        dup = AdmissionRequest(
            system=base.system, request_id="b"
        )
        metrics = ServiceMetrics()
        decisions = admit_batch(
            [base, dup], metrics=metrics, workers=1
        )
        assert decisions[0].key == decisions[1].key
        snapshot = metrics.snapshot()
        assert snapshot["cache_hits"] == 1
        assert snapshot["cache_misses"] == 1


class TestFlightHygiene:
    def test_no_flight_leaks_after_clean_batches(self):
        cache = DecisionCache()
        for seed in range(3):
            admit_batch(
                [_request(seed, str(seed))], cache=cache, workers=1
            )
        assert cache.flights.in_flight() == 0

    def test_stats_describe_mentions_coalesced_only_when_nonzero(self):
        cache = DecisionCache()
        assert "coalesced" not in cache.stats().describe()
