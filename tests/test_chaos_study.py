"""Tests for the chaos study (protocol survival under injected faults)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.chaos_study import (
    CHAOS_SCENARIOS,
    STUDY_PROTOCOLS,
    run_chaos_study,
)


@pytest.fixture(scope="module")
def study():
    # Small but real: every scenario, both recovery arms, one system.
    return run_chaos_study(systems=1)


class TestStructure:
    def test_cell_grid_is_complete(self, study):
        names = [name for name, _faults in CHAOS_SCENARIOS]
        assert study.scenarios == tuple(names)
        for protocol in STUDY_PROTOCOLS:
            for name in names:
                for recovery in (False, True):
                    cell = study.cell(protocol, name, recovery=recovery)
                    assert cell.cases == 1
        assert study.cases == len(names) * len(STUDY_PROTOCOLS) * 2

    def test_signal_scenarios_exclude_timer_and_crash(self, study):
        signal = study.signal_scenarios
        assert "drop-high" in signal and "duplicate" in signal
        assert "timer-loss" not in signal
        assert "crash" not in signal
        assert "overrun" not in signal

    def test_scenario_subset_and_validation(self):
        subset = run_chaos_study(
            systems=1, scenarios=("drop-high", "timer-loss")
        )
        assert subset.scenarios == ("drop-high", "timer-loss")
        with pytest.raises(ConfigurationError):
            run_chaos_study(systems=1, scenarios=("no-such-scenario",))
        with pytest.raises(ConfigurationError):
            run_chaos_study(systems=0)


class TestFindings:
    def test_gate_passes_on_the_default_sample(self, study):
        assert study.fault_free_identity
        assert study.separation_demonstrated
        assert study.gate_passed

    def test_pm_is_immune_to_channel_faults(self, study):
        # PM ships no signals, so channel chaos cannot touch it.
        for name in study.signal_scenarios:
            cell = study.cell("PM", name, recovery=False)
            assert cell.injected_total == 0

    def test_ds_loses_guarantees_without_recovery(self, study):
        hurt = sum(
            study.cell("DS", name, recovery=False).unrecovered_violations
            for name in study.signal_scenarios
        )
        assert hurt > 0

    def test_rg_with_recovery_keeps_precedence(self, study):
        for name in study.signal_scenarios:
            cell = study.cell("RG", name, recovery=True)
            assert cell.unrecovered_precedence == 0

    def test_timer_loss_hurts_pm_and_mpm(self, study):
        for protocol in ("PM", "MPM"):
            cell = study.cell(protocol, "timer-loss", recovery=False)
            assert cell.unrecovered_violations > 0

    def test_render_reads_like_a_report(self, study):
        text = study.render()
        assert "separation demonstrated: yes" in text
        assert "fault-free identity (both timebases): ok" in text
        for name in study.scenarios:
            assert name in text
