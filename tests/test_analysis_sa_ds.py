"""Unit tests for Algorithm IEERT and Algorithm SA/DS."""

from __future__ import annotations

import math

import pytest

from repro.core.analysis.results import FAILURE_FACTOR
from repro.core.analysis.sa_ds import (
    analyze_sa_ds,
    ieert_pass,
    initial_ieer_bounds,
)
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.errors import AnalysisError
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system


class TestInitialBounds:
    def test_cumulative_execution_seeds(self, example2):
        seeds = initial_ieer_bounds(example2)
        assert seeds[SubtaskId(1, 0)] == pytest.approx(2.0)
        assert seeds[SubtaskId(1, 1)] == pytest.approx(5.0)

    def test_seeds_below_any_fixed_point(self, example2):
        seeds = initial_ieer_bounds(example2)
        result = analyze_sa_ds(example2)
        for sid, seed in seeds.items():
            assert seed <= result.subtask_bounds[sid] + 1e-9


class TestIeertPass:
    def test_single_pass_monotone_from_seed(self, example2):
        seeds = initial_ieer_bounds(example2)
        once = ieert_pass(example2, seeds)
        for sid in example2.subtask_ids:
            assert once[sid] >= seeds[sid] - 1e-9

    def test_pass_is_monotone_in_inputs(self, example2):
        seeds = initial_ieer_bounds(example2)
        bigger = {sid: value * 1.5 for sid, value in seeds.items()}
        low = ieert_pass(example2, seeds)
        high = ieert_pass(example2, bigger)
        for sid in example2.subtask_ids:
            assert high[sid] >= low[sid] - 1e-9

    def test_infinite_input_propagates(self, example2):
        seeds = initial_ieer_bounds(example2)
        seeds[SubtaskId(1, 0)] = math.inf
        out = ieert_pass(example2, seeds)
        # T2,2's jitter (its predecessor's bound) is infinite.
        assert math.isinf(out[SubtaskId(1, 1)])

    def test_fixed_point_is_stable(self, example2):
        result = analyze_sa_ds(example2)
        again = ieert_pass(example2, dict(result.subtask_bounds))
        for sid in example2.subtask_ids:
            assert again[sid] == pytest.approx(
                result.subtask_bounds[sid], rel=1e-9
            )


class TestExampleTwo:
    """Worked numbers for Example 2.

    Note on the paper's "7": Section 4.3 states the SA/DS bound on T3's
    EER time is 7.  The paper's own Figure 3 schedule, however, shows
    T3's first instance released at 4 and completing at 12 -- an EER
    time of 8 -- so no *correct* upper bound can be 7.  Algorithm IEERT
    as printed (Fig. 10) yields exactly 8, which is also tight; we pin 8
    and document the discrepancy in EXPERIMENTS.md.
    """

    def test_t3_bound_is_eight_and_tight(self, example2):
        result = analyze_sa_ds(example2)
        assert result.task_bounds[2] == pytest.approx(8.0)

    def test_t3_unschedulable_as_in_paper(self, example2):
        # The paper's conclusion -- bound exceeds the deadline 6 -- holds.
        result = analyze_sa_ds(example2)
        assert not result.is_task_schedulable(2)

    def test_simulation_attains_t3_bound(self, example2):
        from repro.api import run_protocol

        run = run_protocol(example2, "DS", horizon=600.0)
        assert run.metrics.task(2).max_eer == pytest.approx(8.0)

    def test_other_task_bounds(self, example2):
        result = analyze_sa_ds(example2)
        assert result.task_bounds[0] == pytest.approx(2.0)
        assert result.task_bounds[1] == pytest.approx(7.0)

    def test_converges_quickly(self, example2):
        result = analyze_sa_ds(example2)
        assert result.iterations <= 5
        assert not result.failed


class TestDominance:
    """SA/DS bounds are never tighter than SA/PM bounds (Section 4.3)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_sa_ds_at_least_sa_pm(self, seed):
        config = WorkloadConfig(
            subtasks_per_task=3, utilization=0.6, tasks=5, processors=3
        )
        system = generate_system(config, seed)
        pm = analyze_sa_pm(system)
        ds = analyze_sa_ds(system)
        for task_index in range(len(system.tasks)):
            assert (
                ds.task_bounds[task_index]
                >= pm.task_bounds[task_index] - 1e-6
            )

    def test_bounds_dominate_ds_simulation(self, example2):
        from repro.api import run_protocol

        result = analyze_sa_ds(example2)
        run = run_protocol(example2, "DS", horizon=600.0)
        for task_index in range(len(example2.tasks)):
            assert (
                run.metrics.task(task_index).max_eer
                <= result.task_bounds[task_index] + 1e-9
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_bounds_dominate_ds_simulation_generated(self, seed):
        from repro.api import run_protocol

        config = WorkloadConfig(
            subtasks_per_task=3, utilization=0.5, tasks=5, processors=3
        )
        system = generate_system(config, seed)
        result = analyze_sa_ds(system)
        if result.failed:
            pytest.skip("diverged seed")
        run = run_protocol(system, "DS", horizon_periods=15.0)
        for task_index in range(len(system.tasks)):
            observed = run.metrics.task(task_index).max_eer
            if math.isnan(observed):
                continue
            assert observed <= result.task_bounds[task_index] + 1e-6


class TestFailureHandling:
    def _heavy_system(self) -> System:
        """A long-chain high-utilization system that diverges."""
        config = WorkloadConfig(subtasks_per_task=8, utilization=0.9)
        return generate_system(config, seed=0)

    def test_failure_reported_with_infinite_bounds(self):
        result = analyze_sa_ds(self._heavy_system(), max_iterations=60)
        assert result.failed
        assert any(math.isinf(bound) for bound in result.task_bounds)
        assert result.notes  # explains what happened

    def test_failure_factor_scales_cutoff(self, example2):
        # With an absurdly tight cutoff even Example 2 "fails".
        result = analyze_sa_ds(example2, failure_factor=1.0)
        assert result.failed

    def test_default_failure_factor_is_300(self):
        assert FAILURE_FACTOR == 300.0

    def test_max_iterations_must_be_positive(self, example2):
        with pytest.raises(AnalysisError):
            analyze_sa_ds(example2, max_iterations=0)

    def test_iteration_exhaustion_declared_failure(self):
        # A near-critical system creeping upward: with a 1-pass budget the
        # analysis must declare failure rather than report unconverged
        # bounds as finite truth.
        result = analyze_sa_ds(self._heavy_system(), max_iterations=1)
        assert result.failed

    def test_infinite_mid_chain_bound_fails_whole_task(self):
        # Construct divergence via an overloaded processor mid-chain:
        # A carries 1.7/2 + 2/8 = 1.1 utilization.
        t1 = Task(period=2.0, subtasks=(Subtask(1.7, "A", priority=0),))
        t2 = Task(
            period=8.0,
            subtasks=(
                Subtask(1.0, "B", priority=0),
                Subtask(2.0, "A", priority=1),
                Subtask(1.0, "C", priority=0),
            ),
        )
        result = analyze_sa_ds(System((t1, t2)))
        assert math.isinf(result.task_bounds[1])
        assert result.failed
