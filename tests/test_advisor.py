"""Unit tests for the protocol-selection advisor (Section 6 as code)."""

from __future__ import annotations

import math

import pytest

from repro.advisor import recommend_protocol
from repro.model.system import System
from repro.model.task import Subtask, Task
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system


@pytest.fixture(scope="module")
def light_system() -> System:
    """Short chains, light load: DS territory."""
    t1 = Task(
        period=20.0,
        subtasks=(Subtask(1.0, "A", priority=0),
                  Subtask(1.0, "B", priority=0)),
    )
    t2 = Task(period=30.0, subtasks=(Subtask(2.0, "A", priority=1),))
    return System((t1, t2))


@pytest.fixture(scope="module")
def heavy_system() -> System:
    """Long chains at high utilization: DS's bounds collapse."""
    config = WorkloadConfig(subtasks_per_task=7, utilization=0.85)
    return generate_system(config, seed=0)


class TestDecisions:
    def test_light_load_gets_ds(self, light_system):
        rec = recommend_protocol(light_system)
        assert rec.protocol == "DS"
        assert rec.worst_bound_ratio <= 1.5
        assert rec.sa_ds.schedulable

    def test_heavy_load_gets_rg(self, heavy_system):
        rec = recommend_protocol(heavy_system)
        assert rec.protocol == "RG"
        assert math.isinf(rec.worst_bound_ratio) or rec.worst_bound_ratio > 1.5

    def test_jitter_sensitive_with_full_platform_gets_pm(self, light_system):
        rec = recommend_protocol(
            light_system,
            jitter_sensitive=True,
            clock_sync_available=True,
            strictly_periodic_arrivals=True,
        )
        assert rec.protocol == "PM"

    def test_jitter_sensitive_without_clock_sync_gets_mpm(self, light_system):
        rec = recommend_protocol(light_system, jitter_sensitive=True)
        assert rec.protocol == "MPM"

    def test_untrusted_wcets_never_pm_or_mpm(self, light_system, heavy_system):
        for system in (light_system, heavy_system):
            rec = recommend_protocol(system, wcets_trusted=False)
            assert rec.protocol in ("DS", "RG")

    def test_untrusted_wcets_heavy_gets_rg(self, heavy_system):
        rec = recommend_protocol(heavy_system, wcets_trusted=False)
        assert rec.protocol == "RG"

    def test_jitter_plus_untrusted_wcets_falls_back(self, light_system):
        """Jitter sensitivity cannot save PM/MPM when WCETs are untrusted:
        the timers would fire blind."""
        rec = recommend_protocol(
            light_system, jitter_sensitive=True, wcets_trusted=False
        )
        assert rec.protocol in ("DS", "RG")


class TestEvidence:
    def test_carries_both_analyses(self, light_system):
        rec = recommend_protocol(light_system)
        assert rec.sa_pm.algorithm == "SA/PM"
        assert rec.sa_ds.algorithm == "SA/DS"

    def test_ratio_matches_analyses(self, light_system):
        rec = recommend_protocol(light_system)
        expected = max(
            ds / pm
            for ds, pm in zip(rec.sa_ds.task_bounds, rec.sa_pm.task_bounds)
        )
        assert rec.worst_bound_ratio == pytest.approx(max(1.0, expected))

    def test_describe_readable(self, heavy_system):
        text = recommend_protocol(heavy_system).describe()
        assert "recommended protocol: RG" in text
        assert "rationale" in text

    def test_example2_recommendation(self, example2):
        # T2 is uncertifiable under every protocol; DS additionally
        # blows T3's bound, so RG it is.
        rec = recommend_protocol(example2)
        assert rec.protocol == "RG"
        assert rec.worst_bound_ratio == pytest.approx(8.0 / 5.0)


class TestSynchronizedClocks:
    """The `synchronized_clocks` veto vs its `clock_sync_available` alias."""

    def test_explicit_false_vetoes_pm(self, light_system):
        # Even a full PM platform cannot deploy PM when the clocks are
        # declared out of sync: the phase table is absolute local time.
        rec = recommend_protocol(
            light_system,
            jitter_sensitive=True,
            clock_sync_available=True,
            strictly_periodic_arrivals=True,
            synchronized_clocks=False,
        )
        assert rec.protocol == "MPM"

    def test_explicit_true_enables_pm_alone(self, light_system):
        # `synchronized_clocks=True` is the canonical input; the legacy
        # `clock_sync_available` flag need not also be set.
        rec = recommend_protocol(
            light_system,
            jitter_sensitive=True,
            strictly_periodic_arrivals=True,
            synchronized_clocks=True,
        )
        assert rec.protocol == "PM"

    def test_none_falls_back_to_the_alias(self, light_system):
        with_alias = recommend_protocol(
            light_system,
            jitter_sensitive=True,
            clock_sync_available=True,
            strictly_periodic_arrivals=True,
        )
        without = recommend_protocol(
            light_system,
            jitter_sensitive=True,
            strictly_periodic_arrivals=True,
        )
        assert with_alias.protocol == "PM"
        assert without.protocol == "MPM"