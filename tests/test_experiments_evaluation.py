"""Unit tests for per-system evaluation and the figure aggregators."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.evaluation import (
    SystemEvaluation,
    evaluate_config,
    evaluate_system,
)
from repro.experiments.figures import (
    bound_ratio_surface,
    eer_ratio_surface,
    failure_rate_surface,
)
from repro.workload.config import WorkloadConfig

LIGHT = WorkloadConfig(
    subtasks_per_task=2,
    utilization=0.5,
    tasks=4,
    processors=3,
    random_phases=True,
)


@pytest.fixture(scope="module")
def evaluation() -> SystemEvaluation:
    return evaluate_system(LIGHT, seed=0, horizon_periods=6.0)


class TestEvaluateSystem:
    def test_analyses_present(self, evaluation):
        assert len(evaluation.sa_pm_task_bounds) == 4
        assert len(evaluation.sa_ds_task_bounds) == 4
        assert evaluation.sa_ds_iterations >= 1

    def test_simulations_present(self, evaluation):
        assert set(evaluation.average_eer) == {"DS", "PM", "RG"}
        assert all(len(v) == 4 for v in evaluation.average_eer.values())

    def test_no_violations_in_clean_run(self, evaluation):
        assert all(
            count == 0 for count in evaluation.precedence_violations.values()
        )

    def test_bound_ratios_at_least_one(self, evaluation):
        ratios = evaluation.bound_ratios()
        assert ratios
        assert all(r >= 1.0 - 1e-9 for r in ratios)

    def test_eer_ratios_defined(self, evaluation):
        ratios = evaluation.eer_ratios("PM", "DS")
        assert len(ratios) == 4
        assert all(r >= 1.0 - 1e-9 for r in ratios)

    def test_eer_ratio_unknown_protocol(self, evaluation):
        with pytest.raises(ConfigurationError, match="not simulated"):
            evaluation.eer_ratios("MPM", "DS")

    def test_analyses_skippable(self):
        record = evaluate_system(
            LIGHT, seed=1, run_analyses=False, horizon_periods=4.0
        )
        assert record.sa_pm_task_bounds == ()
        assert record.average_eer  # sims still ran

    def test_simulations_skippable(self):
        record = evaluate_system(LIGHT, seed=1, run_simulations=False)
        assert record.average_eer == {}
        assert record.sa_pm_task_bounds


class TestEvaluateConfig:
    def test_count_and_seeds(self):
        records = evaluate_config(
            LIGHT, 2, base_seed=10, run_simulations=False
        )
        assert [r.seed for r in records] == [10, 11]

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_config(LIGHT, 0)


class TestSurfaces:
    @pytest.fixture(scope="class")
    def evaluations(self):
        heavy = WorkloadConfig(
            subtasks_per_task=3,
            utilization=0.7,
            tasks=4,
            processors=3,
            random_phases=True,
        )
        return {
            LIGHT: tuple(
                evaluate_config(LIGHT, 2, horizon_periods=5.0)
            ),
            heavy: tuple(
                evaluate_config(heavy, 2, horizon_periods=5.0)
            ),
        }

    def test_failure_rate_surface_shape(self, evaluations):
        surface = failure_rate_surface(evaluations)
        assert surface.value(2, 50) in (0.0, 0.5, 1.0)
        assert surface.subtask_axis == [2, 3]

    def test_bound_ratio_surface_at_least_one(self, evaluations):
        surface = bound_ratio_surface(evaluations)
        for cell in surface:
            if not math.isnan(cell.value):
                assert cell.value >= 1.0 - 1e-9

    def test_eer_ratio_surface_titles(self, evaluations):
        assert "Figure 14" in eer_ratio_surface(evaluations, "PM", "DS").name
        assert "Figure 15" in eer_ratio_surface(evaluations, "RG", "DS").name
        assert "Figure 16" in eer_ratio_surface(evaluations, "PM", "RG").name
        assert "Figure" not in eer_ratio_surface(evaluations, "DS", "PM").name

    def test_failure_rate_requires_records(self):
        with pytest.raises(ConfigurationError, match="no evaluations"):
            failure_rate_surface({LIGHT: ()})

    def test_schedulability_surface_fraction(self, evaluations):
        from repro.experiments.figures import schedulability_surface

        sa_pm = schedulability_surface(evaluations, "SA/PM")
        sa_ds = schedulability_surface(evaluations, "SA/DS")
        for cell in sa_pm:
            assert 0.0 <= cell.value <= 1.0
            # SA/DS certifies at most what SA/PM certifies.
            assert sa_ds.value(*cell.key) <= cell.value + 1e-9

    def test_schedulability_surface_rejects_unknown_analysis(
        self, evaluations
    ):
        from repro.experiments.figures import schedulability_surface

        with pytest.raises(ConfigurationError):
            schedulability_surface(evaluations, "holistic")

    def test_schedulability_surface_needs_analyses(self):
        from repro.experiments.figures import schedulability_surface

        record = evaluate_system(
            LIGHT, seed=3, run_analyses=False, horizon_periods=4.0
        )
        with pytest.raises(ConfigurationError, match="run_analyses"):
            schedulability_surface({LIGHT: (record,)}, "SA/PM")

    def test_deadlines_recorded_with_analyses(self, evaluation):
        assert len(evaluation.task_deadlines) == 4
        assert all(d > 0 for d in evaluation.task_deadlines)
