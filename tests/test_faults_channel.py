"""Unit tests for the faulty channel and its timebase discipline."""

from __future__ import annotations

from repro.faults import FaultConfig, FaultPlane, FaultyChannel
from repro.sim.network import FixedLatency, UniformLatency, ZeroLatency
from repro.timebase import get_timebase

FLOAT = get_timebase("float")
EXACT = get_timebase("exact")


def _channel(timebase=FLOAT, **config) -> FaultyChannel:
    plane = FaultPlane(FaultConfig(**config), timebase=timebase)
    return FaultyChannel(FixedLatency(0.5), plane)


class TestPlanSemantics:
    def test_local_delivery_never_faulted(self):
        channel = _channel(drop_rate=1.0)
        plan = channel.plan_in("P1", "P1", FLOAT)
        assert plan.delays == (0.0,)
        assert not plan.dropped

    def test_drop_yields_no_copies(self):
        plan = _channel(drop_rate=1.0).plan_in("P1", "P2", FLOAT)
        assert plan.delays == ()
        assert plan.dropped and not plan.duplicated

    def test_duplicate_yields_two_copies_same_delay(self):
        plan = _channel(duplicate_rate=1.0).plan_in("P1", "P2", FLOAT)
        assert plan.delays == (0.5, 0.5)
        assert plan.duplicated and not plan.dropped

    def test_reorder_adds_the_configured_delay(self):
        plan = _channel(
            reorder_rate=1.0, reorder_delay=3.0
        ).plan_in("P1", "P2", FLOAT)
        assert plan.delays == (3.5,)
        assert plan.reordered

    def test_clean_channel_is_transparent(self):
        channel = _channel()
        plan = channel.plan_in("P1", "P2", FLOAT)
        assert plan.delays == (0.5,)
        assert not (plan.dropped or plan.duplicated or plan.reordered)
        # delay/delay_in pass straight through to the inner model.
        assert channel.delay("P1", "P2") == 0.5
        assert channel.delay_in("P1", "P2", FLOAT) == 0.5

    def test_zero_rates_draw_nothing(self):
        # A rate-0 category must never consume randomness: the plane
        # holds no stream for it at all, so arming a null config cannot
        # perturb any other category's decisions.
        plane = FaultPlane(FaultConfig(), timebase=FLOAT)
        assert plane._drop_rng is None
        assert plane._duplicate_rng is None
        assert plane._reorder_rng is None


class TestExactTimebase:
    """Faulty deliveries must not leak raw floats into exact runs.

    Mirrors the ``FixedLatency.delay_in`` exactness tests: every delay a
    channel hands the kernel must already be a timebase value.
    """

    def test_uniform_latency_delay_in_converts(self):
        model = UniformLatency(0.1, 0.4, seed=2)
        converted = model.delay_in("P1", "P2", EXACT)
        assert not isinstance(converted, float)
        assert model.delay_in("P1", "P1", EXACT) == EXACT.zero

    def test_faulty_channel_reorder_stays_exact(self):
        plane = FaultPlane(
            FaultConfig(reorder_rate=1.0, reorder_delay=3.0),
            timebase=EXACT,
        )
        channel = FaultyChannel(FixedLatency(0.5), plane)
        plan = channel.plan_in("P1", "P2", EXACT)
        assert len(plan.delays) == 1
        assert not isinstance(plan.delays[0], float)
        assert plan.delays[0] == EXACT.convert(3.5)

    def test_faulty_channel_over_uniform_latency_stays_exact(self):
        plane = FaultPlane(
            FaultConfig(duplicate_rate=1.0), timebase=EXACT
        )
        channel = FaultyChannel(UniformLatency(0.1, 0.4, seed=2), plane)
        plan = channel.plan_in("P1", "P2", EXACT)
        assert plan.duplicated
        for delay in plan.delays:
            assert not isinstance(delay, float)

    def test_ack_timeout_converted_once(self):
        plane = FaultPlane(
            FaultConfig(watchdog=True, ack_timeout=0.25), timebase=EXACT
        )
        assert not isinstance(plane.ack_timeout, float)
        assert plane.ack_timeout == EXACT.convert(0.25)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        def decisions(seed):
            channel = _channel(
                drop_rate=0.3, duplicate_rate=0.2, seed=seed
            )
            return [
                (plan.dropped, plan.duplicated)
                for plan in (
                    channel.plan_in("P1", "P2", FLOAT) for _ in range(50)
                )
            ]

        assert decisions(5) == decisions(5)
        assert decisions(5) != decisions(6)

    def test_channel_faults_ride_any_inner_model(self):
        plane = FaultPlane(FaultConfig(drop_rate=1.0), timebase=FLOAT)
        channel = FaultyChannel(ZeroLatency(), plane)
        assert channel.plan_in("P1", "P2", FLOAT).dropped
