"""Unit tests for ASCII Gantt rendering."""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.errors import ConfigurationError
from repro.viz.gantt import render_gantt


class TestRenderGantt:
    def _trace(self, example2, protocol="DS", horizon=24.0):
        return run_protocol(
            example2, protocol, horizon=horizon, record_segments=True
        ).trace

    def test_contains_processor_headers(self, example2):
        text = render_gantt(self._trace(example2))
        assert "-- P1" in text
        assert "-- P2" in text

    def test_contains_subtask_labels(self, example2):
        text = render_gantt(self._trace(example2))
        for label in ("T1", "T2,1", "T2,2", "T3"):
            assert label in text

    def test_deadline_misses_reported_for_ds(self, example2):
        text = render_gantt(self._trace(example2, "DS"))
        assert "deadline misses" in text
        assert "T3" in text

    def test_no_miss_line_for_rg_t3(self, example2):
        text = render_gantt(self._trace(example2, "RG", horizon=12.0))
        # T2 misses under every protocol; T3 must not be listed under RG.
        miss_line = [
            line for line in text.splitlines() if "deadline misses" in line
        ]
        if miss_line:
            assert "T3" not in miss_line[0]

    def test_execution_blocks_present(self, example2):
        text = render_gantt(self._trace(example2))
        assert "#" in text

    def test_release_markers_present(self, example2):
        text = render_gantt(self._trace(example2))
        assert "^" in text

    def test_release_markers_suppressible(self, example2):
        text = render_gantt(self._trace(example2), show_releases=False)
        assert "^" not in text

    def test_axis_ticks(self, example2):
        text = render_gantt(self._trace(example2), until=12.0)
        assert "0" in text and "10" in text

    def test_until_truncates(self, example2):
        short = render_gantt(self._trace(example2), until=8.0)
        long = render_gantt(self._trace(example2), until=20.0)
        assert len(short.splitlines()[1]) < len(long.splitlines()[1])

    def test_requires_segments(self, example2):
        result = run_protocol(example2, "DS", horizon=12.0)
        with pytest.raises(ConfigurationError, match="no recorded segments"):
            render_gantt(result.trace)

    def test_bad_until(self, example2):
        with pytest.raises(ConfigurationError):
            render_gantt(self._trace(example2), until=0.0)
