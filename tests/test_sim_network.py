"""Unit tests for signal-latency models and their effect on simulation."""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.errors import ConfigurationError
from repro.model.task import SubtaskId
from repro.sim.network import FixedLatency, UniformLatency, ZeroLatency


class TestModels:
    def test_zero_latency(self):
        assert ZeroLatency().delay("P1", "P2") == 0.0

    def test_fixed_latency_between_processors(self):
        assert FixedLatency(0.5).delay("P1", "P2") == 0.5

    def test_fixed_latency_local_delivery_free(self):
        assert FixedLatency(0.5).delay("P1", "P1") == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(-0.1)

    def test_uniform_latency_bounded(self):
        model = UniformLatency(0.1, 0.4, seed=2)
        values = [model.delay("P1", "P2") for _ in range(100)]
        assert all(0.1 <= v <= 0.4 for v in values)

    def test_uniform_latency_local_free(self):
        assert UniformLatency(0.1, 0.4, seed=2).delay("P1", "P1") == 0.0

    def test_uniform_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.4, 0.1)


class TestLatencyInSimulation:
    def test_ds_successor_release_shifted_by_latency(self, two_stage_pipeline):
        prompt = run_protocol(
            two_stage_pipeline, "DS", horizon=9.0
        )
        delayed = run_protocol(
            two_stage_pipeline,
            "DS",
            horizon=9.0,
            latency_model=FixedLatency(0.5),
        )
        stage2 = SubtaskId(0, 1)
        assert prompt.trace.release_time(stage2, 0) == pytest.approx(2.0)
        assert delayed.trace.release_time(stage2, 0) == pytest.approx(2.5)

    def test_latency_adds_to_eer(self, two_stage_pipeline):
        base = run_protocol(two_stage_pipeline, "DS", horizon=9.0)
        delayed = run_protocol(
            two_stage_pipeline,
            "DS",
            horizon=9.0,
            latency_model=FixedLatency(0.5),
        )
        assert delayed.metrics.task(0).average_eer == pytest.approx(
            base.metrics.task(0).average_eer + 0.5
        )

    def test_precedence_still_holds_under_latency(self, example2):
        result = run_protocol(
            example2,
            "DS",
            horizon=60.0,
            latency_model=FixedLatency(0.25),
        )
        assert result.metrics.precedence_violations == 0


class TestExactTimebase:
    """Latency must not leak raw floats into exact-timebase runs."""

    def test_fixed_latency_keeps_exact_runs_exact(self, example2):
        result = run_protocol(
            example2,
            "DS",
            horizon=60.0,
            latency_model=FixedLatency(0.25),
            timebase="exact",
        )
        for when in result.trace.releases.values():
            assert not isinstance(when, float), type(when)
        for when in result.trace.completions.values():
            assert not isinstance(when, float), type(when)

    def test_delay_in_converts_per_timebase(self):
        from repro.timebase import get_timebase

        model = FixedLatency(0.25)
        exact = get_timebase("exact")
        converted = model.delay_in("P1", "P2", exact)
        assert not isinstance(converted, float)
        # Cached: the same object comes back on the next signal.
        assert model.delay_in("P1", "P2", exact) is converted
        assert model.delay_in("P1", "P1", exact) == exact.zero
