"""Unit tests for workload configurations and the paper grid."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workload.config import PAPER_GRID, WorkloadConfig, paper_grid


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        config = WorkloadConfig(subtasks_per_task=5, utilization=0.6)
        assert config.processors == 4
        assert config.tasks == 12
        assert config.period_min == 100.0
        assert config.period_max == 10_000.0
        assert config.priority_policy == "pd-monotonic"
        assert not config.random_phases

    def test_label_uses_paper_notation(self):
        config = WorkloadConfig(subtasks_per_task=5, utilization=0.6)
        assert config.label == "(5,60)"

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_subtask_count(self, bad):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(subtasks_per_task=bad, utilization=0.5)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_bad_utilization(self, bad):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(subtasks_per_task=2, utilization=bad)

    def test_chains_need_two_processors(self):
        with pytest.raises(ConfigurationError, match="at least 2 processors"):
            WorkloadConfig(subtasks_per_task=3, utilization=0.5, processors=1)

    def test_single_stage_single_processor_allowed(self):
        config = WorkloadConfig(
            subtasks_per_task=1, utilization=0.5, processors=1
        )
        assert config.processors == 1

    def test_bad_period_range(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(
                subtasks_per_task=2,
                utilization=0.5,
                period_min=100.0,
                period_max=50.0,
            )

    def test_bad_weight_range(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(
                subtasks_per_task=2,
                utilization=0.5,
                weight_min=0.0,
            )

    def test_with_random_phases(self):
        config = WorkloadConfig(subtasks_per_task=2, utilization=0.5)
        flipped = config.with_random_phases()
        assert flipped.random_phases
        assert not config.random_phases
        assert flipped.subtasks_per_task == 2


class TestPaperGrid:
    def test_full_grid_has_35_configurations(self):
        assert len(PAPER_GRID) == 35

    def test_grid_axes(self):
        ns = sorted({c.subtasks_per_task for c in PAPER_GRID})
        us = sorted({round(c.utilization * 100) for c in PAPER_GRID})
        assert ns == [2, 3, 4, 5, 6, 7, 8]
        assert us == [50, 60, 70, 80, 90]

    def test_subgrid(self):
        grid = paper_grid(subtask_counts=(2, 4), utilizations=(0.5,))
        assert len(grid) == 2

    def test_overrides_apply_to_all(self):
        grid = paper_grid(subtask_counts=(2,), utilizations=(0.5,), tasks=6)
        assert grid[0].tasks == 6
