"""Unit tests for the shared-resource model layer and static lock tables.

Covers the pieces below the simulator: critical sections on subtasks,
the system's resource views, the locking configuration, the static
placement (:func:`repro.locks.build_assignment`), the seeded section
injector and the observable lock log.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, ModelError
from repro.io import system_from_dict, system_to_dict
from repro.locks import (
    LOCKING_PROTOCOLS,
    LockingConfig,
    LockLog,
    build_assignment,
    inject_critical_sections,
    locking_config_from_dict,
    locking_config_to_dict,
)
from repro.model import CriticalSection, Subtask, SubtaskId, System, Task
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

CONFIG = WorkloadConfig(
    subtasks_per_task=3, utilization=0.6, tasks=4, processors=3
)


def _toy() -> System:
    """Two chains, three processors, two resources.

    R1 is shared across processors (T1,1 on P1 and T2,1 on P2); R2 is
    private to T2,1.  Priorities are globally unique: 0..3.
    """
    t1 = Task(
        period=10.0,
        subtasks=(
            Subtask(
                2.0,
                "P1",
                priority=0,
                critical_sections=(CriticalSection("R1", 0.5, 1.0),),
            ),
            Subtask(2.0, "P2", priority=1),
        ),
    )
    t2 = Task(
        period=20.0,
        subtasks=(
            Subtask(
                3.0,
                "P2",
                priority=2,
                critical_sections=(
                    CriticalSection("R1", 1.0, 0.5),
                    CriticalSection("R2", 2.0, 0.5),
                ),
            ),
            Subtask(2.0, "P3", priority=3),
        ),
    )
    return System((t1, t2), name="toy")


class TestCriticalSection:
    def test_end_offset(self):
        assert CriticalSection("R1", 0.5, 1.25).end == 1.75

    def test_empty_resource_rejected(self):
        with pytest.raises(ModelError):
            CriticalSection("", 0.0, 1.0)

    @pytest.mark.parametrize("bad", [-0.5, math.inf, math.nan])
    def test_bad_start_rejected(self, bad):
        with pytest.raises(ModelError):
            CriticalSection("R1", bad, 1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_nonpositive_duration_rejected(self, bad):
        with pytest.raises(ModelError):
            CriticalSection("R1", 0.0, bad)


class TestSubtaskSections:
    def test_section_beyond_wcet_rejected(self):
        with pytest.raises(ModelError):
            Subtask(
                2.0,
                "P1",
                critical_sections=(CriticalSection("R1", 1.5, 1.0),),
            )

    def test_overlapping_sections_rejected(self):
        with pytest.raises(ModelError):
            Subtask(
                4.0,
                "P1",
                critical_sections=(
                    CriticalSection("R1", 0.0, 2.0),
                    CriticalSection("R2", 1.0, 1.0),
                ),
            )

    def test_nested_sections_rejected(self):
        with pytest.raises(ModelError):
            Subtask(
                4.0,
                "P1",
                critical_sections=(
                    CriticalSection("R1", 0.0, 3.0),
                    CriticalSection("R2", 1.0, 1.0),
                ),
            )

    def test_sections_stored_sorted_by_start(self):
        sub = Subtask(
            4.0,
            "P1",
            critical_sections=(
                CriticalSection("R2", 2.0, 1.0),
                CriticalSection("R1", 0.0, 1.0),
            ),
        )
        assert [s.resource for s in sub.critical_sections] == ["R1", "R2"]

    def test_back_to_back_sections_allowed(self):
        sub = Subtask(
            4.0,
            "P1",
            critical_sections=(
                CriticalSection("R1", 0.0, 2.0),
                CriticalSection("R2", 2.0, 2.0),
            ),
        )
        assert sub.critical_time == 4.0

    def test_critical_time_sums_durations(self):
        assert _toy().subtask(SubtaskId(1, 0)).critical_time == 1.0

    def test_sectionless_subtask_has_zero_critical_time(self):
        assert Subtask(1.0, "P1").critical_time == 0.0


class TestSystemResourceViews:
    def test_has_critical_sections(self):
        assert _toy().has_critical_sections
        assert not generate_system(CONFIG, seed=0).has_critical_sections

    def test_resources_and_accessors(self):
        system = _toy()
        assert set(system.resources) == {"R1", "R2"}
        assert set(system.accessors_of("R1")) == {
            SubtaskId(0, 0),
            SubtaskId(1, 0),
        }
        assert system.accessors_of("R2") == (SubtaskId(1, 0),)

    def test_sections_of(self):
        system = _toy()
        assert system.sections_of(SubtaskId(0, 1)) == ()
        assert [
            s.resource for s in system.sections_of(SubtaskId(1, 0))
        ] == ["R1", "R2"]

    def test_io_round_trip_preserves_sections(self):
        system = _toy()
        rebuilt = system_from_dict(system_to_dict(system))
        assert rebuilt == system
        assert rebuilt.sections_of(SubtaskId(1, 0)) == system.sections_of(
            SubtaskId(1, 0)
        )

    def test_io_round_trip_of_sectionless_system_unchanged(self):
        system = generate_system(CONFIG, seed=3)
        assert system_from_dict(system_to_dict(system)) == system


class TestLockingConfig:
    def test_default_is_dpcp(self):
        config = LockingConfig()
        assert config.protocol == "DPCP"
        assert not config.parallel

    @pytest.mark.parametrize("spelling", ["dpcp-p", "DPCPP", "dpcpp"])
    def test_parallel_spellings_canonicalized(self, spelling):
        config = LockingConfig(spelling)
        assert config.protocol == "DPCP-p"
        assert config.parallel

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            LockingConfig("MSRP")

    def test_label(self):
        assert LockingConfig("dpcp").label == "locks=DPCP"

    @pytest.mark.parametrize("protocol", LOCKING_PROTOCOLS)
    def test_dict_round_trip(self, protocol):
        config = LockingConfig(protocol)
        data = locking_config_to_dict(config)
        assert data["format"] == "repro-locking-config-v1"
        assert locking_config_from_dict(data) == config

    def test_from_dict_rejects_foreign_documents(self):
        with pytest.raises(ConfigurationError):
            locking_config_from_dict({"protocol": "DPCP"})


class TestBuildAssignment:
    def test_dpcp_funnels_every_resource_to_min_processor(self):
        assignment = build_assignment(_toy(), LockingConfig("DPCP"))
        assert assignment.host_of("R1") == "P1"
        assert assignment.host_of("R2") == "P1"

    def test_dpcp_p_spreads_to_top_accessor_homes(self):
        assignment = build_assignment(_toy(), LockingConfig("DPCP-p"))
        # R1's highest-priority accessor is T1,1 (priority 0) on P1;
        # R2's only accessor is T2,1 on P2.
        assert assignment.host_of("R1") == "P1"
        assert assignment.host_of("R2") == "P2"

    def test_ceilings_are_min_accessor_priorities(self):
        assignment = build_assignment(_toy())
        assert assignment.ceiling["R1"] == 0
        assert assignment.ceiling["R2"] == 2

    def test_agent_priorities_sit_below_all_normal_priorities(self):
        system = _toy()
        assignment = build_assignment(system)
        # offset = max - min + 1 = 4; only resourceful subtasks appear.
        assert assignment.agent_priority == {
            SubtaskId(0, 0): -4,
            SubtaskId(1, 0): -2,
        }
        highest_normal = min(
            system.subtask(sid).priority for sid in system.subtask_ids
        )
        assert all(
            boosted < highest_normal
            for boosted in assignment.agent_priority.values()
        )

    def test_agent_priorities_preserve_requester_order(self):
        assignment = build_assignment(_toy())
        assert (
            assignment.agent_priority[SubtaskId(0, 0)]
            < assignment.agent_priority[SubtaskId(1, 0)]
        )

    def test_agent_work_on_sums_hosted_durations(self):
        system = _toy()
        dpcp = build_assignment(system, LockingConfig("DPCP"))
        assert dpcp.agent_work_on(system, "P1") == {
            SubtaskId(0, 0): 1.0,
            SubtaskId(1, 0): 1.0,
        }
        assert dpcp.agent_work_on(system, "P2") == {}
        spread = build_assignment(system, LockingConfig("DPCP-p"))
        assert spread.agent_work_on(system, "P2") == {SubtaskId(1, 0): 0.5}

    def test_sectionless_system_gets_empty_assignment(self):
        assignment = build_assignment(generate_system(CONFIG, seed=0))
        assert assignment.sync_processor == {}
        assert assignment.ceiling == {}
        assert assignment.agent_priority == {}

    def test_deterministic(self):
        assert build_assignment(_toy()) == build_assignment(_toy())


class TestInjectCriticalSections:
    def test_zero_ratio_returns_the_same_object(self):
        system = generate_system(CONFIG, seed=0)
        assert inject_critical_sections(system, ratio=0.0) is system

    def test_injection_is_deterministic(self):
        system = generate_system(CONFIG, seed=0)
        a = inject_critical_sections(system, ratio=0.2, seed=5)
        b = inject_critical_sections(system, ratio=0.2, seed=5)
        assert a == b

    def test_different_seeds_draw_different_sections(self):
        system = generate_system(CONFIG, seed=0)
        a = inject_critical_sections(
            system, ratio=0.3, participation=1.0, seed=1
        )
        b = inject_critical_sections(
            system, ratio=0.3, participation=1.0, seed=2
        )
        assert a != b

    def test_injected_system_is_valid_and_renamed(self):
        system = generate_system(CONFIG, seed=0)
        locked = inject_critical_sections(
            system, ratio=0.25, resources=2, participation=1.0, seed=0
        )
        assert locked.has_critical_sections
        assert locked.name == f"{system.name}+locks"
        # Sections stay inside each subtask's execution time and use
        # only the requested resource pool (model validation re-ran on
        # construction; spot-check the invariants anyway).
        for sid in locked.subtask_ids:
            stage = locked.subtask(sid)
            for section in stage.critical_sections:
                assert section.end <= stage.execution_time
        assert set(locked.resources) <= {"R1", "R2"}

    def test_timing_parameters_unperturbed(self):
        system = generate_system(CONFIG, seed=0)
        locked = inject_critical_sections(
            system, ratio=0.25, participation=1.0, seed=0
        )
        for original, injected in zip(system.tasks, locked.tasks):
            assert injected.period == original.period
            assert injected.phase == original.phase
            for a, b in zip(original.subtasks, injected.subtasks):
                assert b.execution_time == a.execution_time
                assert b.processor == a.processor
                assert b.priority == a.priority

    @pytest.mark.parametrize("ratio", [-0.1, 1.0, 1.5])
    def test_bad_ratio_rejected(self, ratio):
        with pytest.raises(ConfigurationError):
            inject_critical_sections(
                generate_system(CONFIG, seed=0), ratio=ratio
            )

    def test_bad_resource_count_rejected(self):
        with pytest.raises(ConfigurationError):
            inject_critical_sections(
                generate_system(CONFIG, seed=0), ratio=0.2, resources=0
            )

    @pytest.mark.parametrize("participation", [-0.1, 1.5])
    def test_bad_participation_rejected(self, participation):
        with pytest.raises(ConfigurationError):
            inject_critical_sections(
                generate_system(CONFIG, seed=0),
                ratio=0.2,
                participation=participation,
            )


class TestLockLog:
    def _sid(self) -> SubtaskId:
        return SubtaskId(0, 0)

    def test_note_rejects_unknown_kind(self):
        log = LockLog()
        with pytest.raises(ValueError):
            log.note("grant", 1.0, self._sid(), 0, "R1", "P1")

    def test_waits_sum_acquire_minus_request(self):
        log = LockLog()
        sid = self._sid()
        log.note("request", 1.0, sid, 0, "R1", "P1")
        log.note("acquire", 3.0, sid, 0, "R1", "P1")
        log.note("release", 4.0, sid, 0, "R1", "P1")
        log.note("request", 10.0, sid, 1, "R1", "P1")
        log.note("acquire", 10.0, sid, 1, "R1", "P1")
        assert log.waits() == {(sid, 0): 2.0, (sid, 1): 0.0}

    def test_unacquired_requests_excluded_from_waits(self):
        log = LockLog()
        sid = self._sid()
        log.note("request", 5.0, sid, 2, "R1", "P1")
        assert log.waits() == {}
        assert log.unacquired() == {(sid, 2)}

    def test_hold_and_suspension_intervals(self):
        log = LockLog()
        sid = self._sid()
        log.note("request", 1.0, sid, 0, "R1", "P1")
        log.note("acquire", 3.0, sid, 0, "R1", "P1")
        log.note("release", 4.5, sid, 0, "R1", "P1")
        assert log.hold_intervals() == {(sid, 0): [(3.0, 4.5)]}
        assert log.suspension_intervals() == {(sid, 0): [(1.0, 4.5)]}

    def test_open_interval_ends_at_infinity(self):
        log = LockLog()
        sid = self._sid()
        log.note("request", 7.0, sid, 0, "R1", "P1")
        log.note("acquire", 8.0, sid, 0, "R1", "P1")
        [(start, end)] = log.hold_intervals()[(sid, 0)]
        assert start == 8.0 and math.isinf(end)

    def test_counts_and_describe(self):
        log = LockLog()
        sid = self._sid()
        log.note("request", 1.0, sid, 0, "R1", "P1")
        log.note("acquire", 2.0, sid, 0, "R1", "P1")
        assert log.counts() == {"request": 1, "acquire": 1, "release": 0}
        assert log.describe() == "requests=1 acquires=1 releases=0"
        assert len(log) == 2
        assert [event.kind for event in log] == ["request", "acquire"]
