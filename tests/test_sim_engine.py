"""Unit tests for the event queue and simulation kernel."""

from __future__ import annotations

import pytest

from repro.core.protocols.direct import DirectSynchronization
from repro.errors import SimulationError
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task
from repro.sim.engine import (
    EVENT_COMPLETION,
    EVENT_ENV,
    EVENT_TIMER,
    EventQueue,
    Kernel,
)
from repro.sim.interfaces import ReleaseController


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.push(2.0, EVENT_TIMER, lambda t: seen.append("b"))
        queue.push(1.0, EVENT_TIMER, lambda t: seen.append("a"))
        queue.push(3.0, EVENT_TIMER, lambda t: seen.append("c"))
        while (handle := queue.pop()) is not None:
            handle[3](handle[0])
        assert seen == ["a", "b", "c"]

    def test_equal_times_ordered_by_event_class(self):
        queue = EventQueue()
        seen = []
        queue.push(1.0, EVENT_ENV, lambda t: seen.append("env"))
        queue.push(1.0, EVENT_COMPLETION, lambda t: seen.append("done"))
        queue.push(1.0, EVENT_TIMER, lambda t: seen.append("timer"))
        while (handle := queue.pop()) is not None:
            handle[3](handle[0])
        assert seen == ["done", "timer", "env"]

    def test_fifo_within_class(self):
        queue = EventQueue()
        seen = []
        queue.push(1.0, EVENT_TIMER, lambda t: seen.append(1))
        queue.push(1.0, EVENT_TIMER, lambda t: seen.append(2))
        while (handle := queue.pop()) is not None:
            handle[3](handle[0])
        assert seen == [1, 2]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        seen = []
        handle = queue.push(1.0, EVENT_TIMER, lambda t: seen.append("dead"))
        queue.push(2.0, EVENT_TIMER, lambda t: seen.append("alive"))
        EventQueue.cancel(handle)
        while (popped := queue.pop()) is not None:
            popped[3](popped[0])
        assert seen == ["alive"]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, EVENT_TIMER, lambda t: None)
        queue.push(5.0, EVENT_TIMER, lambda t: None)
        EventQueue.cancel(handle)
        assert queue.peek_time() == 5.0

    def test_len_counts_live_events(self):
        queue = EventQueue()
        handle = queue.push(1.0, EVENT_TIMER, lambda t: None)
        queue.push(2.0, EVENT_TIMER, lambda t: None)
        assert len(queue) == 2
        EventQueue.cancel(handle)
        assert len(queue) == 1

    def test_empty_queue_pops_none(self):
        assert EventQueue().pop() is None
        assert EventQueue().peek_time() is None


class TestKernelBasics:
    def test_horizon_must_be_positive(self, example2):
        with pytest.raises(SimulationError):
            Kernel(example2, DirectSynchronization(), 0.0)

    def test_env_releases_follow_phase_and_period(self, example2):
        kernel = Kernel(example2, DirectSynchronization(), 20.0)
        trace = kernel.run()
        t3_releases = [
            trace.env_releases[(2, m)] for m in range(3)
        ]
        assert t3_releases == [4.0, 10.0, 16.0]

    def test_events_not_processed_past_horizon(self, example2):
        kernel = Kernel(example2, DirectSynchronization(), 5.0)
        trace = kernel.run()
        assert all(time <= 5.0 for time in trace.releases.values())
        assert all(time <= 5.0 for time in trace.completions.values())

    def test_timer_in_past_rejected(self, example2):
        kernel = Kernel(example2, DirectSynchronization(), 10.0)
        kernel.now = 5.0
        with pytest.raises(SimulationError):
            kernel.schedule_timer(1.0, lambda t: None)

    def test_event_budget_enforced(self, example2):
        kernel = Kernel(
            example2, DirectSynchronization(), 1000.0, max_events=10
        )
        with pytest.raises(SimulationError, match="event budget"):
            kernel.run()

    def test_is_idle_before_any_release(self, example2):
        kernel = Kernel(example2, DirectSynchronization(), 10.0)
        assert kernel.is_idle("P1")
        assert kernel.is_idle("P2")


class TestPrecedence:
    def test_ds_run_has_no_violations(self, example2):
        kernel = Kernel(example2, DirectSynchronization(), 100.0)
        trace = kernel.run()
        assert trace.violations == []

    def test_violation_recorded_for_premature_release(self):
        """A controller that releases stage 2 without waiting."""

        class Broken(ReleaseController):
            name = "broken"

            def on_env_release(self, sid, instance, now):
                self.kernel.release(sid, instance)
                # Release the successor immediately -- before stage 1 ran.
                successor = self.system.successor_of(sid)
                if successor is not None:
                    self.kernel.release(successor, instance)

        task = Task(
            period=10.0,
            subtasks=(Subtask(2.0, "A", priority=0),
                      Subtask(2.0, "B", priority=0)),
        )
        kernel = Kernel(System((task,)), Broken(), 9.0)
        trace = kernel.run()
        assert len(trace.violations) == 1
        violation = trace.violations[0]
        assert violation.sid == SubtaskId(0, 1)
        assert violation.predecessor == SubtaskId(0, 0)

    def test_strict_mode_raises_on_violation(self):
        class Broken(ReleaseController):
            name = "broken"

            def on_env_release(self, sid, instance, now):
                self.kernel.release(sid, instance)
                successor = self.system.successor_of(sid)
                if successor is not None:
                    self.kernel.release(successor, instance)

        task = Task(
            period=10.0,
            subtasks=(Subtask(2.0, "A", priority=0),
                      Subtask(2.0, "B", priority=0)),
        )
        kernel = Kernel(
            System((task,)), Broken(), 9.0, strict_precedence=True
        )
        with pytest.raises(SimulationError, match="precedence violation"):
            kernel.run()


class TestIdlePoints:
    def test_idle_points_recorded_at_completions(self, single_task_system):
        kernel = Kernel(
            single_task_system,
            DirectSynchronization(),
            25.0,
            record_idle_points=True,
        )
        trace = kernel.run()
        # The solo task (period 10, exec 3) finishes at 3, 13, 23.
        assert trace.idle_points["P1"] == [3.0, 13.0, 23.0]

    def test_idle_points_not_recorded_by_default(self, single_task_system):
        kernel = Kernel(single_task_system, DirectSynchronization(), 25.0)
        trace = kernel.run()
        assert trace.idle_points == {}

    def test_no_idle_point_while_backlogged(self):
        # Two tasks saturating one processor: the first idle point comes
        # only when both complete.
        t1 = Task(period=10.0, subtasks=(Subtask(4.0, "A", priority=0),))
        t2 = Task(period=10.0, subtasks=(Subtask(4.0, "A", priority=1),))
        kernel = Kernel(
            System((t1, t2)),
            DirectSynchronization(),
            9.0,
            record_idle_points=True,
        )
        trace = kernel.run()
        assert trace.idle_points["A"] == [8.0]
