"""Unit tests for the exhaustive worst-case search and Audsley's OPA."""

from __future__ import annotations

import math

import pytest

from repro.core.analysis.exhaustive import search_worst_case_eer
from repro.core.analysis.opa import audsley_assignment
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.errors import ConfigurationError
from repro.model.priority import proportional_deadline_monotonic
from repro.model.system import System
from repro.model.task import Subtask, Task


class TestExhaustiveSearch:
    def test_finds_the_ds_worst_case_of_example2(self, example2):
        search = search_worst_case_eer(
            example2, "DS", steps=6, horizon_periods=10.0
        )
        # T3's true worst case is 8 (attained by the paper's own phasing).
        assert search.worst_eer[2] == pytest.approx(8.0)
        assert search.combinations == 6 ** 3

    def test_search_never_exceeds_sa_ds_bounds(self, example2):
        search = search_worst_case_eer(example2, "DS", steps=4)
        verdict = analyze_sa_ds(example2)
        for observed, bound in zip(search.worst_eer, verdict.task_bounds):
            assert observed <= bound + 1e-9

    @pytest.mark.parametrize("protocol", ["PM", "RG"])
    def test_search_never_exceeds_sa_pm_bounds(self, example2, protocol):
        search = search_worst_case_eer(example2, protocol, steps=3)
        verdict = analyze_sa_pm(example2)
        for observed, bound in zip(search.worst_eer, verdict.task_bounds):
            assert observed <= bound + 1e-9

    def test_search_dominates_single_simulation(self, example2):
        from repro.api import run_protocol

        search = search_worst_case_eer(example2, "DS", steps=3)
        single = run_protocol(example2, "DS", horizon_periods=10.0)
        for task_index in range(3):
            assert (
                search.worst_eer[task_index]
                >= single.metrics.task(task_index).max_eer - 1e-9
            )

    def test_combination_budget_enforced(self, example2):
        with pytest.raises(ConfigurationError, match="combinations"):
            search_worst_case_eer(
                example2, "DS", steps=20, max_combinations=100
            )

    def test_steps_must_be_positive(self, example2):
        with pytest.raises(ConfigurationError):
            search_worst_case_eer(example2, "DS", steps=0)

    def test_pessimism_ratios(self, example2):
        search = search_worst_case_eer(example2, "DS", steps=6)
        verdict = analyze_sa_ds(example2)
        ratios = search.pessimism(verdict.task_bounds)
        # SA/DS is tight on every task of Example 2 at this granularity.
        for ratio in ratios:
            assert ratio == pytest.approx(1.0)

    def test_pessimism_handles_infinite_bounds(self, example2):
        search = search_worst_case_eer(example2, "DS", steps=2)
        ratios = search.pessimism([math.inf, 1.0, 1.0])
        assert math.isnan(ratios[0])

    def test_witness_phases_reproduce_the_worst_case(self, example2):
        from repro.api import run_protocol

        search = search_worst_case_eer(example2, "DS", steps=6)
        witness = search.witness_phases[2]
        replay = run_protocol(
            example2.with_phases(list(witness)), "DS", horizon_periods=10.0
        )
        assert replay.metrics.task(2).max_eer == pytest.approx(
            search.worst_eer[2]
        )


class TestAudsleyOpa:
    def test_finds_feasible_assignment(self, example2):
        assigned = audsley_assignment(example2)
        assert assigned is not None
        from repro.core.analysis.local_deadline import analyze_local_deadline

        # T2's slices cannot hold in Example 2 under any order (its
        # SA/PM EER bound already exceeds the deadline), so give OPA the
        # end-to-end deadline as a permissive local deadline instead.
        relaxed = audsley_assignment(
            example2, lambda s, sid: s.task_of(sid).relative_deadline
        )
        assert relaxed is not None

    def test_agrees_with_pd_monotonic_in_power(self):
        """Leung & Whitehead: deadline-monotonic ordering is optimal for
        fixed local deadlines <= periods on one processor, and the
        busy-period slice test depends only on the higher-priority set.
        OPA must therefore accept exactly the systems PD-monotonic
        accepts -- this test pins that equivalence on a sample."""
        from repro.core.analysis.local_deadline import analyze_local_deadline
        from repro.workload.config import WorkloadConfig
        from repro.workload.generator import generate_system

        config = WorkloadConfig(
            subtasks_per_task=3, utilization=0.7, tasks=4, processors=3
        )
        agree = 0
        for seed in range(8):
            system = generate_system(config, seed)
            pdm_ok = analyze_local_deadline(
                proportional_deadline_monotonic(system)
            ).schedulable
            opa = audsley_assignment(system)
            opa_ok = opa is not None
            assert pdm_ok == opa_ok
            agree += 1
        assert agree == 8

    def test_returns_none_when_infeasible(self):
        t1 = Task(period=4.0, subtasks=(Subtask(3.0, "A"),))
        t2 = Task(period=4.0, subtasks=(Subtask(3.0, "A"),))
        assert audsley_assignment(System((t1, t2))) is None

    def test_priorities_dense_per_processor(self, example2):
        assigned = audsley_assignment(example2)
        assert assigned is not None
        for processor in assigned.processors:
            priorities = sorted(
                assigned.subtask(sid).priority
                for sid in assigned.subtasks_on(processor)
            )
            assert priorities == list(range(len(priorities)))

    def test_respects_custom_local_deadlines(self, example2):
        # With absurdly tight local deadlines nothing fits.
        assert (
            audsley_assignment(example2, lambda s, sid: 0.01) is None
        )
        # With permissive ones everything fits.
        assert (
            audsley_assignment(example2, lambda s, sid: 1e9) is not None
        )

    def test_assignment_leaves_original_untouched(self, example2):
        before = [
            example2.subtask(sid).priority for sid in example2.subtask_ids
        ]
        audsley_assignment(example2)
        after = [
            example2.subtask(sid).priority for sid in example2.subtask_ids
        ]
        assert before == after
