"""Crash-restart round trips: hard-stop mid-flight, reload, re-serve.

The durability contract in one property: for every backend combination
(memory/sqlite x decision-cache/region-store), a campaign that is
killed mid-flight and restarted over the persisted state re-issues
every request with decisions identical to an uninterrupted run.  No
pytest-asyncio in the toolchain: each test drives its own event loop.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.engine import compute_decision
from repro.service.frontend import AdmissionFrontend, FrontendConfig
from repro.service.loadgen import (
    LoadgenConfig,
    build_requests,
    decision_digest,
)

_POPULATION = build_requests(
    LoadgenConfig(requests=30, systems=8, seed=7)
)
_BASELINE_DIGEST = decision_digest(
    [compute_decision(request) for request in _POPULATION]
)

_SHED_PREFIX = "service shed:"


def _drive_all(config: FrontendConfig) -> list:
    async def run() -> list:
        async with AdmissionFrontend(config) as frontend:
            return [
                await frontend.admit(request) for request in _POPULATION
            ]

    return asyncio.run(run())


def _interrupt_mid_flight(config: FrontendConfig) -> list:
    """Issue everything concurrently, hard-stop after the first third.

    ``stop(drain="shed")`` is the closest controllable stand-in for a
    crash: intake halts immediately, queued work is resolved as
    explicit sheds (never served), and the backends are closed with
    whatever state they had.  Requests that arrive after the stop get
    the not-started error -- also crash-shaped.
    """

    async def run() -> list:
        frontend = AdmissionFrontend(config)
        await frontend.start()
        tasks = [
            asyncio.create_task(frontend.admit(request))
            for request in _POPULATION
        ]
        for task in tasks[: len(tasks) // 3]:
            await task
        await frontend.stop(drain="shed")
        return await asyncio.gather(*tasks, return_exceptions=True)

    return asyncio.run(run())


def _cache_config(backend: str, tmp_path) -> FrontendConfig:
    suffix = "jsonl" if backend == "memory" else "sqlite"
    return FrontendConfig(
        shards=2,
        cache_backend=backend,
        cache_path=tmp_path / f"cache.{suffix}",
    )


def _region_config(backend: str, tmp_path) -> FrontendConfig:
    suffix = "jsonl" if backend == "memory" else "sqlite"
    return FrontendConfig(
        shards=2,
        cache_backend=None,
        region_backend=backend,
        region_path=tmp_path / f"regions.{suffix}",
        region_build_threshold=1,
    )


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
class TestDecisionCacheRestart:
    def test_digest_survives_hard_stop(self, backend, tmp_path):
        config = _cache_config(backend, tmp_path)
        outcomes = _interrupt_mid_flight(config)
        served = [
            o
            for o in outcomes
            if not isinstance(o, Exception)
            and not o.rationale.startswith(_SHED_PREFIX)
        ]
        assert served, "the interrupted run served nothing"
        # Warm restart over the persisted state: every request again.
        warm = _drive_all(config)
        assert decision_digest(warm) == _BASELINE_DIGEST
        # Warm-start actually happened: the reloaded cache serves hits.
        assert len(warm) == len(_POPULATION)

    def test_warm_restart_equals_cold_run(self, backend, tmp_path):
        config = _cache_config(backend, tmp_path)
        cold = _drive_all(config)
        warm = _drive_all(config)
        assert decision_digest(cold) == _BASELINE_DIGEST
        assert decision_digest(warm) == _BASELINE_DIGEST


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
class TestRegionStoreRestart:
    def test_verdicts_survive_hard_stop(self, backend, tmp_path):
        config = _region_config(backend, tmp_path)
        cold = _drive_all(config)
        _interrupt_mid_flight(config)
        warm = _drive_all(config)
        # Region-served decisions document worst_bound_ratio=inf, so
        # the byte digest differs from the computed run; the soundness
        # property is verdict identity per request.
        for before, after in zip(cold, warm):
            assert after.request_id == before.request_id
            assert after.admitted == before.admitted
            assert after.schedulable == before.schedulable

    def test_two_warm_restarts_are_identical(self, backend, tmp_path):
        config = _region_config(backend, tmp_path)
        _drive_all(config)  # populate and persist the region store
        first = _drive_all(config)
        second = _drive_all(config)
        assert decision_digest(first) == decision_digest(second)
