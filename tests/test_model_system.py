"""Unit tests for the System container."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task


def _system() -> System:
    t1 = Task(
        period=4.0,
        subtasks=(Subtask(1.0, "A", priority=0),),
        name="first",
    )
    t2 = Task(
        period=8.0,
        subtasks=(
            Subtask(2.0, "A", priority=1),
            Subtask(1.0, "B", priority=0),
        ),
        name="second",
    )
    return System((t1, t2), name="demo")


class TestStructure:
    def test_empty_system_rejected(self):
        with pytest.raises(ModelError):
            System(())

    def test_non_task_rejected(self):
        with pytest.raises(ModelError):
            System(("nope",))  # type: ignore[arg-type]

    def test_tasks_coerced_to_tuple(self):
        system = System([_system().tasks[0]])
        assert isinstance(system.tasks, tuple)

    def test_processors_sorted_and_deduplicated(self):
        assert _system().processors == ("A", "B")

    def test_subtask_ids_in_task_order(self):
        assert _system().subtask_ids == (
            SubtaskId(0, 0),
            SubtaskId(1, 0),
            SubtaskId(1, 1),
        )

    def test_len_and_iter(self):
        system = _system()
        assert len(system) == 2
        assert [t.name for t in system] == ["first", "second"]

    def test_subtask_count(self):
        assert _system().subtask_count == 3


class TestLookups:
    def test_task_of(self):
        system = _system()
        assert system.task_of(SubtaskId(1, 0)).name == "second"

    def test_subtask_lookup(self):
        system = _system()
        assert system.subtask(SubtaskId(1, 1)).processor == "B"

    def test_period_of_subtask_is_parent_period(self):
        system = _system()
        assert system.period_of(SubtaskId(1, 1)) == 8.0

    def test_unknown_task_index_raises(self):
        with pytest.raises(ModelError):
            _system().subtask(SubtaskId(5, 0))

    def test_unknown_subtask_index_raises(self):
        with pytest.raises(ModelError):
            _system().subtask(SubtaskId(0, 1))

    def test_is_last(self):
        system = _system()
        assert system.is_last(SubtaskId(0, 0))
        assert not system.is_last(SubtaskId(1, 0))
        assert system.is_last(SubtaskId(1, 1))

    def test_successor_of(self):
        system = _system()
        assert system.successor_of(SubtaskId(1, 0)) == SubtaskId(1, 1)
        assert system.successor_of(SubtaskId(1, 1)) is None

    def test_subtasks_on_processor(self):
        system = _system()
        assert system.subtasks_on("A") == (SubtaskId(0, 0), SubtaskId(1, 0))

    def test_subtasks_on_unknown_processor_raises(self):
        with pytest.raises(ModelError):
            _system().subtasks_on("Z")


class TestInterferenceSet:
    def test_higher_priority_included(self):
        system = _system()
        # On A: first (prio 0) interferes with second's stage (prio 1).
        assert system.interference_set(SubtaskId(1, 0)) == (SubtaskId(0, 0),)

    def test_lower_priority_excluded(self):
        system = _system()
        assert system.interference_set(SubtaskId(0, 0)) == ()

    def test_equal_priority_included(self):
        t1 = Task(period=4.0, subtasks=(Subtask(1.0, "A", priority=0),))
        t2 = Task(period=6.0, subtasks=(Subtask(1.0, "A", priority=0),))
        system = System((t1, t2))
        assert system.interference_set(SubtaskId(0, 0)) == (SubtaskId(1, 0),)
        assert system.interference_set(SubtaskId(1, 0)) == (SubtaskId(0, 0),)

    def test_self_excluded(self):
        system = _system()
        for sid in system.subtask_ids:
            assert sid not in system.interference_set(sid)


class TestAggregates:
    def test_processor_utilization(self):
        system = _system()
        # A: 1/4 + 2/8 = 0.5; B: 1/8.
        assert system.processor_utilization("A") == pytest.approx(0.5)
        assert system.processor_utilization("B") == pytest.approx(0.125)

    def test_utilizations_maps_all_processors(self):
        assert set(_system().utilizations()) == {"A", "B"}

    def test_max_utilization(self):
        assert _system().max_utilization == pytest.approx(0.5)

    def test_hyperperiod_hint(self):
        assert _system().hyperperiod_hint == pytest.approx(8.0)


class TestFunctionalUpdates:
    def test_with_priorities_replaces_all(self):
        system = _system()
        flipped = system.with_priorities(
            {
                SubtaskId(0, 0): 1,
                SubtaskId(1, 0): 0,
                SubtaskId(1, 1): 0,
            }
        )
        assert flipped.subtask(SubtaskId(0, 0)).priority == 1
        assert flipped.subtask(SubtaskId(1, 0)).priority == 0
        # Original untouched.
        assert system.subtask(SubtaskId(0, 0)).priority == 0

    def test_with_priorities_requires_full_coverage(self):
        with pytest.raises(ModelError):
            _system().with_priorities({SubtaskId(0, 0): 1})

    def test_with_phases(self):
        shifted = _system().with_phases([1.0, 2.0])
        assert [t.phase for t in shifted.tasks] == [1.0, 2.0]

    def test_with_phases_wrong_length(self):
        with pytest.raises(ModelError):
            _system().with_phases([1.0])

    def test_with_tasks(self):
        system = _system()
        reduced = system.with_tasks(system.tasks[:1])
        assert len(reduced) == 1
        assert reduced.name == system.name


class TestDisplay:
    def test_display_name_prefers_subtask_name(self, example2):
        assert example2.display_name(SubtaskId(1, 0)) == "T2,1"

    def test_display_name_falls_back_to_positional(self):
        system = _system()
        # Subtasks in _system() have empty names.
        assert system.display_name(SubtaskId(1, 1)) == "T2,2"

    def test_describe_mentions_tasks_and_processors(self):
        text = _system().describe()
        assert "demo" in text
        assert "first" in text
        assert "U=" in text
