"""Tests for corpus persistence and the committed regression corpus."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.fuzz import (
    Counterexample,
    append_counterexample,
    load_corpus,
    replay_corpus,
)
from repro.fuzz.corpus import (
    counterexample_from_dict,
    counterexample_to_dict,
)
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

CORPUS_DIR = Path(__file__).parent / "corpus"


def _record(seed: int = 3) -> Counterexample:
    config = WorkloadConfig(
        subtasks_per_task=2, utilization=0.5, tasks=2, processors=2
    )
    return Counterexample(
        oracle="rg-separation",
        system=generate_system(config, seed),
        violations=("RG: example violation",),
        seed=seed,
        config=config,
        original_task_count=4,
        shrink_attempts=17,
        note="unit-test record",
    )


class TestSerialization:
    def test_round_trip_preserves_every_field(self):
        record = _record()
        rebuilt = counterexample_from_dict(counterexample_to_dict(record))
        assert rebuilt == record

    def test_wrong_format_rejected(self):
        data = counterexample_to_dict(_record())
        data["format"] = "something-else"
        with pytest.raises(ConfigurationError, match="format"):
            counterexample_from_dict(data)

    def test_unknown_oracle_rejected(self):
        data = counterexample_to_dict(_record())
        data["oracle"] = "no-such-oracle"
        with pytest.raises(ConfigurationError, match="unknown oracle"):
            counterexample_from_dict(data)


class TestPersistence:
    def test_append_then_load(self, tmp_path):
        target = tmp_path / "corpus" / "found.jsonl"
        append_counterexample(_record(1), target)
        append_counterexample(_record(2), target)
        records = load_corpus(target)
        assert [record.seed for record in records] == [1, 2]

    def test_directory_argument_uses_default_file_and_globs(self, tmp_path):
        file = append_counterexample(_record(5), tmp_path)
        assert file.name == "counterexamples.jsonl"
        assert [r.seed for r in load_corpus(tmp_path)] == [5]

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        file = append_counterexample(_record(7), tmp_path / "c.jsonl")
        text = file.read_text()
        file.write_text("# a comment line\n\n" + text)
        assert len(load_corpus(file)) == 1

    def test_missing_path_is_an_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nowhere") == []

    def test_corrupt_line_reports_file_and_number(self, tmp_path):
        file = tmp_path / "bad.jsonl"
        file.write_text("{not json\n")
        with pytest.raises(ConfigurationError, match="bad.jsonl:1"):
            load_corpus(file)


class TestCommittedCorpus:
    """The corpus under ``tests/corpus/`` documents *fixed* bugs; every
    entry must replay clean against the current code, forever."""

    def test_seeded_corpus_is_nonempty(self):
        assert load_corpus(CORPUS_DIR)

    def test_every_entry_replays_clean(self):
        outcomes = replay_corpus(load_corpus(CORPUS_DIR))
        failing = [o.describe() for o in outcomes if not o.passed]
        assert failing == []

    def test_entries_are_shrunk_and_attributed(self):
        for record in load_corpus(CORPUS_DIR):
            assert len(record.system.tasks) <= 3
            assert record.seed is not None
            assert record.violations
            assert record.note
