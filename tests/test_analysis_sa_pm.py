"""Unit tests for Algorithm SA/PM."""

from __future__ import annotations

import math

import pytest

from repro.core.analysis.sa_pm import analyze_sa_pm, sa_pm_subtask_details
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task


class TestExampleTwo:
    """The paper's worked numbers for Example 2 (Sections 3-4)."""

    def test_subtask_bounds(self, example2):
        result = analyze_sa_pm(example2)
        assert result.subtask_bounds[SubtaskId(0, 0)] == pytest.approx(2.0)
        assert result.subtask_bounds[SubtaskId(1, 0)] == pytest.approx(4.0)
        assert result.subtask_bounds[SubtaskId(1, 1)] == pytest.approx(3.0)
        # "Task T3 would have a worst-case response time of 5 time units."
        assert result.subtask_bounds[SubtaskId(2, 0)] == pytest.approx(5.0)

    def test_task_bounds_sum_subtask_bounds(self, example2):
        result = analyze_sa_pm(example2)
        assert result.task_bounds == pytest.approx((2.0, 7.0, 5.0))

    def test_t3_schedulable_t2_not(self, example2):
        result = analyze_sa_pm(example2)
        assert result.is_task_schedulable(0)
        assert not result.is_task_schedulable(1)  # bound 7 > deadline 6
        assert result.is_task_schedulable(2)
        assert not result.schedulable

    def test_not_failed(self, example2):
        result = analyze_sa_pm(example2)
        assert result.all_finite
        assert not result.failed


class TestStructure:
    def test_algorithm_label(self, example2):
        assert analyze_sa_pm(example2).algorithm == "SA/PM"

    def test_details_cover_all_subtasks(self, example2):
        details = sa_pm_subtask_details(example2)
        assert set(details) == set(example2.subtask_ids)

    def test_monitor_pipeline_bounds_are_exec_times(self, monitor):
        # A single chain with no interference: every bound equals the
        # stage execution time, and the EER bound is their sum.
        result = analyze_sa_pm(monitor)
        task = monitor.tasks[0]
        for j, stage in enumerate(task.subtasks):
            assert result.subtask_bounds[SubtaskId(0, j)] == pytest.approx(
                stage.execution_time
            )
        assert result.task_bounds[0] == pytest.approx(
            task.total_execution_time
        )

    def test_overloaded_processor_yields_infinite_bounds(self):
        t1 = Task(period=2.0, subtasks=(Subtask(1.5, "A", priority=0),))
        t2 = Task(
            period=8.0,
            subtasks=(Subtask(1.0, "B", priority=0),
                      Subtask(2.0, "A", priority=1)),
        )
        result = analyze_sa_pm(System((t1, t2)))
        assert math.isinf(result.subtask_bounds[SubtaskId(1, 1)])
        assert math.isinf(result.task_bounds[1])
        assert result.failed
        # The unaffected task keeps its finite bound.
        assert result.task_bounds[0] == pytest.approx(1.5)

    def test_describe_mentions_verdicts(self, example2):
        text = analyze_sa_pm(example2).describe()
        assert "SA/PM" in text
        assert "MISS" in text
        assert "ok" in text


class TestAgainstSimulation:
    """SA/PM bounds must dominate every simulated response time."""

    @pytest.mark.parametrize("protocol", ["PM", "MPM", "RG"])
    def test_bounds_dominate_observed_eer(self, example2, protocol):
        from repro.api import run_protocol

        result = analyze_sa_pm(example2)
        run = run_protocol(example2, protocol, horizon=600.0)
        for task_index in range(len(example2.tasks)):
            observed = run.metrics.task(task_index).max_eer
            assert observed <= result.task_bounds[task_index] + 1e-9

    def test_bounds_dominate_generated_system(self, small_system):
        from repro.api import run_protocol

        result = analyze_sa_pm(small_system)
        run = run_protocol(small_system, "RG", horizon_periods=15.0)
        for task_index in range(len(small_system.tasks)):
            observed = run.metrics.task(task_index).max_eer
            if math.isnan(observed):
                continue
            assert observed <= result.task_bounds[task_index] + 1e-9
