"""Unit tests for the independent trace validator."""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.core.protocols import make_controller
from repro.errors import SimulationError
from repro.model.task import SubtaskId
from repro.sim.simulator import simulate
from repro.sim.tracing import Segment, Trace
from repro.sim.trace_validation import validate_trace
from repro.sim.variation import OverrunInjection, UniformScaledExecution


class TestCleanTraces:
    @pytest.mark.parametrize("protocol", ["DS", "PM", "MPM", "RG"])
    def test_example2_traces_validate(self, example2, protocol):
        result = run_protocol(
            example2, protocol, horizon=60.0, record_segments=True
        )
        assert validate_trace(result.trace) == []

    def test_generated_system_traces_validate(self, small_system):
        result = run_protocol(
            small_system, "RG", horizon_periods=6.0, record_segments=True
        )
        assert validate_trace(result.trace) == []

    def test_variation_below_wcet_validates(self, small_system):
        result = simulate(
            small_system,
            make_controller("DS", small_system),
            horizon_periods=5.0,
            execution_model=UniformScaledExecution(0.4, 1.0, seed=2),
            record_segments=True,
        )
        assert validate_trace(result.trace) == []


class TestDetections:
    def _base_trace(self, example2) -> Trace:
        trace = Trace(example2, horizon=100.0)
        return trace

    def test_requires_segments(self, example2):
        trace = Trace(example2, horizon=10.0, record_segments=False)
        with pytest.raises(SimulationError):
            validate_trace(trace)

    def test_detects_overlapping_segments(self, example2):
        trace = self._base_trace(example2)
        sid = SubtaskId(0, 0)
        trace.note_release(sid, 0, 0.0)
        trace.note_release(sid, 1, 4.0)
        trace.note_segment(Segment("P1", sid, 0, 0.0, 2.0))
        trace.note_segment(Segment("P1", sid, 1, 1.0, 3.0))
        trace.note_completion(sid, 0, 2.0)
        trace.note_completion(sid, 1, 3.0)
        assert any("overlap" in issue for issue in validate_trace(trace))

    def test_detects_priority_inversion(self, example2):
        trace = self._base_trace(example2)
        high = SubtaskId(0, 0)   # T1, priority 0 on P1
        low = SubtaskId(1, 0)    # T2,1, priority 1 on P1
        trace.note_release(high, 0, 0.0)
        trace.note_release(low, 0, 0.0)
        # The low-priority instance runs while the high one is ready.
        trace.note_segment(Segment("P1", low, 0, 0.0, 2.0))
        trace.note_completion(low, 0, 2.0)
        trace.note_segment(Segment("P1", high, 0, 2.0, 4.0))
        trace.note_completion(high, 0, 4.0)
        assert any(
            "higher-priority" in issue for issue in validate_trace(trace)
        )

    def test_detects_overrun_unless_allowed(self, small_system):
        result = simulate(
            small_system,
            make_controller("DS", small_system),
            horizon_periods=5.0,
            execution_model=OverrunInjection(
                small_system.subtask_ids[0], factor=2.0
            ),
            record_segments=True,
        )
        issues = validate_trace(result.trace)
        assert any("WCET" in issue for issue in issues)
        assert validate_trace(result.trace, allow_overruns=True) == []

    def test_detects_completion_without_execution(self, example2):
        trace = self._base_trace(example2)
        sid = SubtaskId(0, 0)
        trace.note_release(sid, 0, 0.0)
        trace.note_completion(sid, 0, 2.0)
        # Add an unrelated segment so the segments requirement is met.
        other = SubtaskId(2, 0)
        trace.note_release(other, 0, 0.0)
        trace.note_segment(Segment("P2", other, 0, 0.0, 2.0))
        trace.note_completion(other, 0, 2.0)
        assert any(
            "without executing" in issue for issue in validate_trace(trace)
        )

    def test_detects_precedence_violation(self, example2):
        trace = self._base_trace(example2)
        first = SubtaskId(1, 0)
        second = SubtaskId(1, 1)
        trace.note_release(first, 0, 0.0)
        trace.note_segment(Segment("P1", first, 0, 0.0, 2.0))
        trace.note_completion(first, 0, 2.0)
        # Successor released before the predecessor completed.
        trace.note_release(second, 0, 1.0)
        trace.note_segment(Segment("P2", second, 0, 1.0, 4.0))
        trace.note_completion(second, 0, 4.0)
        assert any("before" in issue for issue in validate_trace(trace))

    def test_detects_missing_predecessor(self, example2):
        trace = self._base_trace(example2)
        second = SubtaskId(1, 1)
        trace.note_release(second, 0, 1.0)
        trace.note_segment(Segment("P2", second, 0, 1.0, 4.0))
        trace.note_completion(second, 0, 4.0)
        assert any(
            "never released" in issue for issue in validate_trace(trace)
        )

    def test_detects_out_of_order_releases(self, example2):
        trace = self._base_trace(example2)
        sid = SubtaskId(0, 0)
        # Instance 1 released before instance 0: the period is fixed,
        # so index order must follow time order.
        trace.note_release(sid, 0, 5.0)
        trace.note_release(sid, 1, 2.0)
        trace.note_segment(Segment("P1", sid, 1, 2.0, 4.0))
        trace.note_segment(Segment("P1", sid, 0, 5.0, 7.0))
        trace.note_completion(sid, 1, 4.0)
        trace.note_completion(sid, 0, 7.0)
        assert any(
            "released at 2 before" in issue for issue in validate_trace(trace)
        )

    def test_detects_out_of_order_completions(self, example2):
        trace = self._base_trace(example2)
        sid = SubtaskId(0, 0)
        trace.note_release(sid, 0, 0.0)
        trace.note_release(sid, 1, 4.0)
        trace.note_segment(Segment("P1", sid, 0, 0.0, 2.0))
        trace.note_segment(Segment("P1", sid, 1, 4.0, 6.0))
        # Completions swapped: instance 1 finishes before instance 0.
        trace.note_completion(sid, 0, 6.0)
        trace.note_completion(sid, 1, 5.0)
        assert any(
            "completed at 5 before" in issue
            for issue in validate_trace(trace)
        )


class TestToleranceBoundary:
    """Violations inside ``tolerance`` pass; just outside, they fail."""

    TOL = 1e-3

    def _overlap_trace(self, example2, overlap: float) -> Trace:
        trace = Trace(example2, horizon=100.0)
        sid = SubtaskId(0, 0)
        trace.note_release(sid, 0, 0.0)
        trace.note_release(sid, 1, 4.0)
        trace.note_segment(Segment("P1", sid, 0, 0.0, 2.0))
        trace.note_segment(Segment("P1", sid, 1, 2.0 - overlap, 4.0 - overlap))
        trace.note_completion(sid, 0, 2.0)
        trace.note_completion(sid, 1, 4.0 - overlap)
        return trace

    def test_overlap_within_tolerance_passes(self, example2):
        trace = self._overlap_trace(example2, overlap=self.TOL / 2)
        assert validate_trace(trace, tolerance=self.TOL) == []

    def test_overlap_beyond_tolerance_fails(self, example2):
        trace = self._overlap_trace(example2, overlap=2 * self.TOL)
        issues = validate_trace(trace, tolerance=self.TOL)
        assert any("overlap" in issue for issue in issues)

    def _precedence_trace(self, example2, early: float) -> Trace:
        trace = Trace(example2, horizon=100.0)
        first = SubtaskId(1, 0)
        second = SubtaskId(1, 1)
        trace.note_release(first, 0, 0.0)
        trace.note_segment(Segment("P1", first, 0, 0.0, 2.0))
        trace.note_completion(first, 0, 2.0)
        trace.note_release(second, 0, 2.0 - early)
        trace.note_segment(Segment("P2", second, 0, 2.0, 5.0))
        trace.note_completion(second, 0, 5.0)
        return trace

    def test_precedence_within_tolerance_passes(self, example2):
        trace = self._precedence_trace(example2, early=self.TOL / 2)
        assert validate_trace(trace, tolerance=self.TOL) == []

    def test_precedence_beyond_tolerance_fails(self, example2):
        trace = self._precedence_trace(example2, early=2 * self.TOL)
        issues = validate_trace(trace, tolerance=self.TOL)
        assert any("before" in issue for issue in issues)
