"""The circuit-breaker state machine, on an injectable clock."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.supervision import (
    BREAKER_STATES,
    BreakerConfig,
    CircuitBreaker,
)


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _breaker(threshold=2, recovery=1.0, probes=1, transitions=None):
    clock = _Clock()
    breaker = CircuitBreaker(
        BreakerConfig(
            failure_threshold=threshold,
            recovery_time=recovery,
            probe_budget=probes,
        ),
        clock=clock,
        on_transition=(
            (lambda old, new: transitions.append((old, new)))
            if transitions is not None
            else None
        ),
    )
    return breaker, clock


class TestConfig:
    def test_zero_threshold_means_disabled(self):
        assert not BreakerConfig(failure_threshold=0).enabled
        assert BreakerConfig(failure_threshold=1).enabled

    def test_disabled_config_refuses_breaker(self):
        with pytest.raises(ConfigurationError, match="disables"):
            CircuitBreaker(BreakerConfig(failure_threshold=0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=-1)
        with pytest.raises(ConfigurationError):
            BreakerConfig(recovery_time=0.0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(recovery_time=float("inf"))
        with pytest.raises(ConfigurationError):
            BreakerConfig(probe_budget=0)


class TestStateMachine:
    def test_states_enumerated(self):
        assert BREAKER_STATES == ("closed", "open", "half_open")

    def test_opens_after_consecutive_failures(self):
        breaker, _ = _breaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker, _ = _breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_void_does_not_reset_the_streak(self):
        # Interleaved cache hits must not mask a failing executor.
        breaker, _ = _breaker(threshold=2)
        breaker.record_failure()
        breaker.record_void()
        breaker.record_failure()
        assert breaker.state == "open"

    def test_cooldown_gates_half_open(self):
        breaker, clock = _breaker(threshold=1, recovery=2.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()
        assert breaker.state == "half_open"

    def test_successful_probe_closes(self):
        breaker, clock = _breaker(threshold=1)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.closes == 1

    def test_failed_probe_reopens(self):
        breaker, clock = _breaker(threshold=1)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        # The new cooldown starts from the re-open.
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()

    def test_probe_budget_bounds_inflight(self):
        breaker, clock = _breaker(threshold=1, probes=2)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()  # consumes permit 1 (open -> half_open)
        assert breaker.allow()  # consumes permit 2
        assert not breaker.allow()  # budget exhausted
        breaker.record_success()
        assert breaker.state == "half_open"  # needs budget successes
        breaker.record_success()
        assert breaker.state == "closed"

    def test_void_returns_the_probe_permit(self):
        breaker, clock = _breaker(threshold=1, probes=1)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_void()  # the probe turned out to be a cache hit
        assert breaker.allow()  # permit is available again
        breaker.record_success()
        assert breaker.state == "closed"

    def test_straggler_success_while_open_is_ignored(self):
        breaker, _ = _breaker(threshold=1)
        breaker.record_failure()
        breaker.record_success()  # finished after the trip
        assert breaker.state == "open"


class TestObservability:
    def test_transition_hook_sees_every_change(self):
        transitions: list[tuple[str, str]] = []
        breaker, clock = _breaker(threshold=1, transitions=transitions)
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_success()
        assert transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_snapshot_and_describe(self):
        breaker, clock = _breaker(threshold=1)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["opens"] == 1
        assert "breaker open" in breaker.describe()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_success()
        assert "1 restore(s)" in breaker.describe()
