"""Edge-case tests filling branches the mainline suites do not touch."""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.core.protocols import make_controller
from repro.errors import ConfigurationError
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task
from repro.sim.network import FixedLatency
from repro.sim.simulator import default_horizon, simulate


class TestDefaultHorizon:
    def test_scales_from_largest_phase_and_period(self, example2):
        assert default_horizon(example2, 10.0) == pytest.approx(4 + 60.0)

    def test_rejects_nonpositive_periods(self, example2):
        with pytest.raises(ConfigurationError):
            default_horizon(example2, 0.0)


class TestWarmup:
    def test_warmup_forwarded_to_metrics(self, example2):
        full = run_protocol(example2, "DS", horizon=60.0)
        trimmed = run_protocol(example2, "DS", horizon=60.0, warmup=30.0)
        assert (
            trimmed.metrics.task(0).completed_instances
            < full.metrics.task(0).completed_instances
        )


class TestMpmUnderLatency:
    def test_mpm_successor_shifted_by_latency(self, two_stage_pipeline):
        """MPM's relay signal pays the network latency; the successor's
        release lands at release + R + latency."""
        from repro.core.protocols.factory import pm_bounds_for

        bounds = pm_bounds_for(two_stage_pipeline)
        result = simulate(
            two_stage_pipeline,
            make_controller("MPM", two_stage_pipeline),
            horizon=40.0,
            latency_model=FixedLatency(0.5),
        )
        stage1, stage2 = SubtaskId(0, 0), SubtaskId(0, 1)
        for m in range(3):
            assert result.trace.release_time(stage2, m) == pytest.approx(
                result.trace.release_time(stage1, m) + bounds[stage1] + 0.5
            )
        assert result.metrics.precedence_violations == 0

    def test_pm_ignores_latency_so_schedules_diverge_from_mpm(
        self, two_stage_pipeline
    ):
        """PM uses no signals at all, so under a signalling latency the
        'identical schedules' property of PM vs MPM no longer holds."""
        results = {}
        for protocol in ("PM", "MPM"):
            results[protocol] = simulate(
                two_stage_pipeline,
                make_controller(protocol, two_stage_pipeline),
                horizon=40.0,
                latency_model=FixedLatency(0.5),
            )
        stage2 = SubtaskId(0, 1)
        assert results["PM"].trace.release_time(stage2, 0) != pytest.approx(
            results["MPM"].trace.release_time(stage2, 0)
        )


class TestExhaustiveWithBounds:
    def test_custom_bounds_forwarded_to_pm(self, two_stage_pipeline):
        from repro.core.analysis.exhaustive import search_worst_case_eer

        generous = {sid: 4.0 for sid in two_stage_pipeline.subtask_ids}
        search = search_worst_case_eer(
            two_stage_pipeline, "PM", steps=2, bounds=generous
        )
        # PM with a 4.0 first-stage bound: EER = 4 + 3 = 7 every time.
        assert search.worst_eer[0] == pytest.approx(7.0)


class TestDeadlineStrategiesWithExplicitDeadline:
    def test_strategies_use_relative_deadline_not_period(self):
        from repro.model.deadlines import deadline_map

        task = Task(
            period=20.0,
            deadline=12.0,
            subtasks=(Subtask(2.0, "A"), Subtask(4.0, "B")),
        )
        system = System((task,))
        mapping = deadline_map(system, "pd")
        assert sum(mapping.values()) == pytest.approx(12.0)
        ed = deadline_map(system, "ed")
        assert ed[SubtaskId(0, 0)] == pytest.approx(8.0)


class TestOverheadInflationStructure:
    def test_names_and_periods_preserved(self, example2):
        from repro.core.analysis.overheads import inflate_for_overhead

        inflated = inflate_for_overhead(
            example2, "DS", interrupt_cost=0.01, context_switch_cost=0.01
        )
        assert [t.name for t in inflated.tasks] == [
            t.name for t in example2.tasks
        ]
        assert [t.period for t in inflated.tasks] == [
            t.period for t in example2.tasks
        ]
        assert inflated.subtask(SubtaskId(1, 0)).priority == example2.subtask(
            SubtaskId(1, 0)
        ).priority


class TestGanttScaling:
    def test_chars_per_unit_changes_width(self, example2):
        from repro.viz.gantt import render_gantt

        result = run_protocol(
            example2, "DS", horizon=12.0, record_segments=True
        )
        narrow = render_gantt(result.trace, until=12.0, chars_per_unit=1.0)
        wide = render_gantt(result.trace, until=12.0, chars_per_unit=4.0)
        assert len(wide.splitlines()[1]) > len(narrow.splitlines()[1])

    def test_violation_count_rendered(self, two_stage_pipeline):
        from repro.core.protocols.factory import pm_bounds_for
        from repro.core.protocols.phase_modification import PhaseModification
        from repro.viz.gantt import render_gantt

        # Understated bounds force precedence violations.
        controller = PhaseModification(
            {sid: 0.5 for sid in two_stage_pipeline.subtask_ids}
        )
        result = simulate(
            two_stage_pipeline,
            controller,
            horizon=25.0,
            record_segments=True,
        )
        assert result.metrics.precedence_violations > 0
        text = render_gantt(result.trace)
        assert "precedence violations" in text


class TestParallelSweepWithSimulations:
    def test_multiprocess_simulation_results_match_serial(self):
        from repro.experiments.parallel import parallel_sweep_grid
        from repro.experiments.runner import sweep_grid
        from repro.workload.config import WorkloadConfig

        config = WorkloadConfig(
            subtasks_per_task=2,
            utilization=0.5,
            tasks=3,
            processors=2,
            random_phases=True,
        )
        serial = sweep_grid(
            [config], 2, run_analyses=False, horizon_periods=4.0
        )
        parallel = parallel_sweep_grid(
            [config],
            2,
            workers=2,
            run_analyses=False,
            horizon_periods=4.0,
        )
        for a, b in zip(serial[config], parallel[config]):
            assert a.average_eer == b.average_eer


class TestSimulateFacadePassthroughs:
    def test_max_events_enforced_via_facade(self, example2):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="event budget"):
            simulate(
                example2,
                make_controller("DS", example2),
                horizon=1000.0,
                max_events=5,
            )

    def test_record_idle_points_via_facade(self, single_task_system):
        result = simulate(
            single_task_system,
            make_controller("DS", single_task_system),
            horizon=25.0,
            record_idle_points=True,
        )
        assert result.trace.idle_points["P1"] == [3.0, 13.0, 23.0]

    def test_warmup_via_facade(self, example2):
        result = simulate(
            example2,
            make_controller("DS", example2),
            horizon=60.0,
            warmup=30.0,
        )
        full = simulate(
            example2, make_controller("DS", example2), horizon=60.0
        )
        assert (
            result.metrics.task(0).completed_instances
            < full.metrics.task(0).completed_instances
        )


class TestSurfaceNanMean:
    def test_put_mean_with_empty_sample(self):
        from repro.experiments.stats import mean_with_ci
        from repro.experiments.surface import Surface

        surface = Surface("demo")
        surface.put_mean(2, 50, mean_with_ci([]))
        rendered = surface.render()
        assert "-" in rendered  # NaN cell renders as a dash


class TestDescribeOutputs:
    def test_analysis_describe_includes_notes(self, example2):
        from repro.core.analysis.sa_ds import analyze_sa_ds

        result = analyze_sa_ds(example2, failure_factor=1.0)
        text = result.describe()
        assert "note:" in text
        assert "FAIL (unbounded)" in text

    def test_system_describe_lists_all_subtasks(self, small_system):
        text = small_system.describe()
        for sid in small_system.subtask_ids:
            assert small_system.display_name(sid) in text
