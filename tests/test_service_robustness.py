"""Batch admission under misbehaving workers: timeouts, retries, degrade.

The worker body (``repro.service.batch._compute_job``) is monkeypatched
in the parent process; with the fork start method the pool's children
inherit the patched module, so hangs and crashes can be staged
deterministically without real workload pathology.
"""

from __future__ import annotations

import functools
import multiprocessing
import time

import pytest

import repro.service.batch as batch_module
from repro.errors import ConfigurationError
from repro.service.batch import admit_batch
from repro.service.cache import DecisionCache
from repro.service.engine import AdmissionController
from repro.service.metrics import ServiceMetrics
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="staged worker faults rely on fork inheriting the patch",
)

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)

_real_compute_job = batch_module._compute_job


def _requests(count: int) -> list[AdmissionRequest]:
    return [
        AdmissionRequest(
            system=generate_system(LIGHT, seed), request_id=f"r{seed}"
        )
        for seed in range(count)
    ]


# Staged worker bodies must be module-level: the pool pickles the
# callable by qualified name, so closures cannot cross into workers.
def _hang_job(request_id, seconds, payload):
    key, request = payload
    if request.request_id == request_id:
        time.sleep(seconds)
    return _real_compute_job(payload)


def _raise_job(request_id, payload):
    key, request = payload
    if request.request_id == request_id:
        raise RuntimeError("staged pool crash")
    return _real_compute_job(payload)


def _hang_on(request_id: str, seconds: float = 5.0):
    return functools.partial(_hang_job, request_id, seconds)


class TestValidation:
    @pytest.mark.parametrize(
        "options",
        [
            {"job_timeout": 0.0},
            {"job_timeout": -1.0},
            {"job_timeout": float("inf")},
            {"max_retries": -1},
            {"retry_backoff": -0.1},
            {"retry_backoff": float("nan")},
        ],
    )
    def test_bad_knobs_rejected(self, options):
        with pytest.raises(ConfigurationError):
            admit_batch(_requests(1), workers=2, **options)


class TestTimeouts:
    def test_hung_worker_degrades_only_its_decision(self, monkeypatch):
        monkeypatch.setattr(
            batch_module, "_compute_job", _hang_on("r1")
        )
        metrics = ServiceMetrics()
        started = time.monotonic()
        decisions = admit_batch(
            _requests(4),
            workers=2,
            metrics=metrics,
            job_timeout=0.4,
            max_retries=1,
            retry_backoff=0.0,
        )
        elapsed = time.monotonic() - started
        assert elapsed < 4.0  # nobody waited for the 5 s sleeper
        by_id = {d.request_id: d for d in decisions}
        degraded = by_id["r1"]
        assert not degraded.admitted
        assert degraded.rationale.startswith("service degraded:")
        assert "timed out" in degraded.rationale
        assert degraded.worst_bound_ratio == float("inf")
        # The other three requests got real verdicts.
        for rid in ("r0", "r2", "r3"):
            assert not by_id[rid].rationale.startswith(
                "service degraded:"
            )
        snapshot = metrics.snapshot()
        assert snapshot["timeouts"] == 2  # initial attempt + one retry
        assert snapshot["retries"] == 1
        assert snapshot["degraded"] == 1
        assert "robustness:" in metrics.describe()

    def test_degraded_decisions_are_not_cached(self, monkeypatch):
        monkeypatch.setattr(
            batch_module, "_compute_job", _hang_on("r0")
        )
        cache = DecisionCache()
        requests = _requests(2)
        decisions = admit_batch(
            requests,
            workers=2,
            cache=cache,
            job_timeout=0.3,
            max_retries=0,
        )
        assert decisions[0].rationale.startswith("service degraded:")
        assert cache.get(decisions[0].key) is None
        # The healthy decision was cached as usual.
        assert cache.get(decisions[1].key) is not None

    def test_timeout_applies_per_job_not_per_batch(self, monkeypatch):
        # Four healthy jobs, generous timeout: nothing degrades even
        # though total batch time may exceed one job's budget.
        metrics = ServiceMetrics()
        decisions = admit_batch(
            _requests(4), workers=2, metrics=metrics, job_timeout=30.0
        )
        assert all(
            not d.rationale.startswith("service degraded:")
            for d in decisions
        )
        assert metrics.snapshot()["timeouts"] == 0
        assert metrics.snapshot()["degraded"] == 0


class TestRetries:
    def test_serial_flaky_job_degrades_after_the_ladder(
        self, monkeypatch
    ):
        calls = []

        def always_raises(payload):
            calls.append(payload[0])
            raise RuntimeError("staged analysis crash")

        monkeypatch.setattr(batch_module, "_compute_job", always_raises)
        metrics = ServiceMetrics()
        cache = DecisionCache()
        decisions = admit_batch(
            _requests(1),
            workers=1,
            cache=cache,
            metrics=metrics,
            max_retries=2,
            retry_backoff=0.0,
        )
        assert len(calls) == 3  # initial attempt + 2 retries
        assert decisions[0].rationale.startswith("service degraded:")
        assert "staged analysis crash" in decisions[0].rationale
        assert metrics.snapshot()["retries"] == 2
        assert metrics.snapshot()["degraded"] == 1
        assert cache.get(decisions[0].key) is None

    def test_serial_retry_then_success(self, monkeypatch):
        attempts = []

        def flaky(payload):
            attempts.append(payload[0])
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return _real_compute_job(payload)

        monkeypatch.setattr(batch_module, "_compute_job", flaky)
        metrics = ServiceMetrics()
        decisions = admit_batch(
            _requests(1),
            workers=1,
            metrics=metrics,
            max_retries=2,
            retry_backoff=0.0,
        )
        assert len(attempts) == 2
        assert not decisions[0].rationale.startswith("service degraded:")
        assert metrics.snapshot()["retries"] == 1
        assert metrics.snapshot()["degraded"] == 0

    def test_pooled_flaky_job_retries_across_the_pool(self, monkeypatch):
        monkeypatch.setattr(
            batch_module,
            "_compute_job",
            functools.partial(_raise_job, "r0"),
        )
        metrics = ServiceMetrics()
        decisions = admit_batch(
            _requests(3),
            workers=2,
            metrics=metrics,
            job_timeout=30.0,
            max_retries=1,
            retry_backoff=0.0,
        )
        by_id = {d.request_id: d for d in decisions}
        assert by_id["r0"].rationale.startswith("service degraded:")
        assert "staged pool crash" in by_id["r0"].rationale
        assert not by_id["r1"].rationale.startswith("service degraded:")
        assert metrics.snapshot()["retries"] == 1
        assert metrics.snapshot()["degraded"] == 1


class TestControllerPassthrough:
    def test_controller_batch_carries_the_knobs(self, monkeypatch):
        monkeypatch.setattr(
            batch_module, "_compute_job", _hang_on("r0")
        )
        controller = AdmissionController(enable_cache=False)
        decisions = controller.admit_batch(
            _requests(2),
            workers=2,
            job_timeout=0.3,
            max_retries=0,
        )
        assert decisions[0].rationale.startswith("service degraded:")
        snapshot = controller.metrics.snapshot()
        assert snapshot["timeouts"] == 1
        assert snapshot["degraded"] == 1
        assert "robustness:" in controller.describe()
