"""Batch admission under misbehaving workers: timeouts, retries, degrade.

The worker body (``repro.service.batch._compute_job``) is monkeypatched
in the parent process; with the fork start method the pool's children
inherit the patched module, so hangs and crashes can be staged
deterministically without real workload pathology.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time

import pytest

import repro.service.batch as batch_module
from repro.errors import ConfigurationError
from repro.service.batch import admit_batch
from repro.service.cache import DecisionCache
from repro.service.engine import AdmissionController
from repro.service.metrics import ServiceMetrics
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="staged worker faults rely on fork inheriting the patch",
)

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)

_real_compute_job = batch_module._compute_job


def _requests(count: int) -> list[AdmissionRequest]:
    return [
        AdmissionRequest(
            system=generate_system(LIGHT, seed), request_id=f"r{seed}"
        )
        for seed in range(count)
    ]


# Staged worker bodies must be module-level: the pool pickles the
# callable by qualified name, so closures cannot cross into workers.
def _hang_job(request_id, seconds, payload):
    key, request = payload
    if request.request_id == request_id:
        time.sleep(seconds)
    return _real_compute_job(payload)


def _raise_job(request_id, payload):
    key, request = payload
    if request.request_id == request_id:
        raise RuntimeError("staged pool crash")
    return _real_compute_job(payload)


def _hang_on(request_id: str, seconds: float = 5.0):
    return functools.partial(_hang_job, request_id, seconds)


def _crash_once_job(flag_path, request_id, payload):
    """Kill the worker process the first time ``request_id`` is seen.

    The flag file is the cross-process "already crashed" bit: the
    first worker to run the job dies with ``os._exit`` (taking the
    whole pool with it -- ``BrokenProcessPool``); the retry, on the
    rebuilt pool, finds the flag and computes normally.
    """
    key, request = payload
    if request.request_id == request_id and not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os._exit(1)
    return _real_compute_job(payload)


def _always_crash_job(request_id, payload):
    key, request = payload
    if request.request_id == request_id:
        os._exit(1)
    return _real_compute_job(payload)


def _flaky_once_then_hang(flag_path, request_id, seconds, payload):
    """``request_id`` raises on first sight; everyone else naps."""
    key, request = payload
    if request.request_id == request_id:
        if not os.path.exists(flag_path):
            with open(flag_path, "w"):
                pass
            raise RuntimeError("staged transient failure")
        return _real_compute_job(payload)
    time.sleep(seconds)
    return _real_compute_job(payload)


class TestValidation:
    @pytest.mark.parametrize(
        "options",
        [
            {"job_timeout": 0.0},
            {"job_timeout": -1.0},
            {"job_timeout": float("inf")},
            {"max_retries": -1},
            {"retry_backoff": -0.1},
            {"retry_backoff": float("nan")},
        ],
    )
    def test_bad_knobs_rejected(self, options):
        with pytest.raises(ConfigurationError):
            admit_batch(_requests(1), workers=2, **options)


class TestTimeouts:
    def test_hung_worker_degrades_only_its_decision(self, monkeypatch):
        monkeypatch.setattr(
            batch_module, "_compute_job", _hang_on("r1")
        )
        metrics = ServiceMetrics()
        started = time.monotonic()
        decisions = admit_batch(
            _requests(4),
            workers=2,
            metrics=metrics,
            job_timeout=0.4,
            max_retries=1,
            retry_backoff=0.0,
        )
        elapsed = time.monotonic() - started
        assert elapsed < 4.0  # nobody waited for the 5 s sleeper
        by_id = {d.request_id: d for d in decisions}
        degraded = by_id["r1"]
        assert not degraded.admitted
        assert degraded.rationale.startswith("service degraded:")
        assert "timed out" in degraded.rationale
        assert degraded.worst_bound_ratio == float("inf")
        # The other three requests got real verdicts.
        for rid in ("r0", "r2", "r3"):
            assert not by_id[rid].rationale.startswith(
                "service degraded:"
            )
        snapshot = metrics.snapshot()
        assert snapshot["timeouts"] == 2  # initial attempt + one retry
        assert snapshot["retries"] == 1
        assert snapshot["degraded"] == 1
        assert "robustness:" in metrics.describe()

    def test_degraded_decisions_are_not_cached(self, monkeypatch):
        monkeypatch.setattr(
            batch_module, "_compute_job", _hang_on("r0")
        )
        cache = DecisionCache()
        requests = _requests(2)
        decisions = admit_batch(
            requests,
            workers=2,
            cache=cache,
            job_timeout=0.3,
            max_retries=0,
        )
        assert decisions[0].rationale.startswith("service degraded:")
        assert cache.get(decisions[0].key) is None
        # The healthy decision was cached as usual.
        assert cache.get(decisions[1].key) is not None

    def test_timeout_applies_per_job_not_per_batch(self, monkeypatch):
        # Four healthy jobs, generous timeout: nothing degrades even
        # though total batch time may exceed one job's budget.
        metrics = ServiceMetrics()
        decisions = admit_batch(
            _requests(4), workers=2, metrics=metrics, job_timeout=30.0
        )
        assert all(
            not d.rationale.startswith("service degraded:")
            for d in decisions
        )
        assert metrics.snapshot()["timeouts"] == 0
        assert metrics.snapshot()["degraded"] == 0


class TestRetries:
    def test_serial_flaky_job_degrades_after_the_ladder(
        self, monkeypatch
    ):
        calls = []

        def always_raises(payload):
            calls.append(payload[0])
            raise RuntimeError("staged analysis crash")

        monkeypatch.setattr(batch_module, "_compute_job", always_raises)
        metrics = ServiceMetrics()
        cache = DecisionCache()
        decisions = admit_batch(
            _requests(1),
            workers=1,
            cache=cache,
            metrics=metrics,
            max_retries=2,
            retry_backoff=0.0,
        )
        assert len(calls) == 3  # initial attempt + 2 retries
        assert decisions[0].rationale.startswith("service degraded:")
        assert "staged analysis crash" in decisions[0].rationale
        assert metrics.snapshot()["retries"] == 2
        assert metrics.snapshot()["degraded"] == 1
        assert cache.get(decisions[0].key) is None

    def test_serial_retry_then_success(self, monkeypatch):
        attempts = []

        def flaky(payload):
            attempts.append(payload[0])
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return _real_compute_job(payload)

        monkeypatch.setattr(batch_module, "_compute_job", flaky)
        metrics = ServiceMetrics()
        decisions = admit_batch(
            _requests(1),
            workers=1,
            metrics=metrics,
            max_retries=2,
            retry_backoff=0.0,
        )
        assert len(attempts) == 2
        assert not decisions[0].rationale.startswith("service degraded:")
        assert metrics.snapshot()["retries"] == 1
        assert metrics.snapshot()["degraded"] == 0

    def test_pooled_flaky_job_retries_across_the_pool(self, monkeypatch):
        monkeypatch.setattr(
            batch_module,
            "_compute_job",
            functools.partial(_raise_job, "r0"),
        )
        metrics = ServiceMetrics()
        decisions = admit_batch(
            _requests(3),
            workers=2,
            metrics=metrics,
            job_timeout=30.0,
            max_retries=1,
            retry_backoff=0.0,
        )
        by_id = {d.request_id: d for d in decisions}
        assert by_id["r0"].rationale.startswith("service degraded:")
        assert "staged pool crash" in by_id["r0"].rationale
        assert not by_id["r1"].rationale.startswith("service degraded:")
        assert metrics.snapshot()["retries"] == 1
        assert metrics.snapshot()["degraded"] == 1


class TestBrokenPool:
    """Regression: a pool break must not bill the stranded jobs.

    Pre-fix, ``BrokenProcessPool`` surfaced as an ordinary job failure
    for *every* job queued or in flight on the dead pool, burning one
    retry attempt each -- with ``max_retries=0`` a single worker crash
    degraded the whole batch.  Post-fix the pool is rebuilt once per
    break and the stranded jobs resubmit at their current attempt.
    """

    def test_one_crash_degrades_nothing(self, monkeypatch, tmp_path):
        flag = tmp_path / "crashed"
        monkeypatch.setattr(
            batch_module,
            "_compute_job",
            functools.partial(_crash_once_job, str(flag), "r0"),
        )
        metrics = ServiceMetrics()
        decisions = admit_batch(
            _requests(4),
            workers=2,
            metrics=metrics,
            max_retries=0,  # pre-fix: any break means degradation
            retry_backoff=0.0,
        )
        assert flag.exists()  # the crash really happened
        assert all(
            not d.rationale.startswith("service degraded:")
            for d in decisions
        )
        snapshot = metrics.snapshot()
        assert snapshot["pool_rebuilds"] >= 1
        assert snapshot["degraded"] == 0
        assert "pool rebuild" in metrics.describe()

    def test_pool_killer_eventually_fails_closed(self, monkeypatch):
        # A job that kills every pool it rides must not rebuild forever:
        # after max_retries + 1 breaks it is treated as the culprit.
        monkeypatch.setattr(
            batch_module,
            "_compute_job",
            functools.partial(_always_crash_job, "r0"),
        )
        metrics = ServiceMetrics()
        decisions = admit_batch(
            _requests(3),
            workers=2,
            metrics=metrics,
            max_retries=0,
            retry_backoff=0.0,
        )
        by_id = {d.request_id: d for d in decisions}
        assert by_id["r0"].rationale.startswith("service degraded:")
        assert "worker pool broke" in by_id["r0"].rationale
        # Innocent bystanders still got real verdicts.
        for rid in ("r1", "r2"):
            assert not by_id[rid].rationale.startswith(
                "service degraded:"
            )
        assert metrics.snapshot()["pool_rebuilds"] >= 2

    def test_crash_survivors_are_cached_and_deterministic(
        self, monkeypatch, tmp_path
    ):
        flag = tmp_path / "crashed"
        monkeypatch.setattr(
            batch_module,
            "_compute_job",
            functools.partial(_crash_once_job, str(flag), "r1"),
        )
        cache = DecisionCache()
        requests = _requests(3)
        survived = admit_batch(
            requests, workers=2, cache=cache, max_retries=0
        )
        monkeypatch.setattr(
            batch_module, "_compute_job", _real_compute_job
        )
        healthy = admit_batch(requests, workers=2)
        assert survived == healthy
        assert all(cache.get(d.key) is not None for d in survived)


class TestSchedulerWakeup:
    """Regression: no oversleep past a backoff deadline, no busy-wait."""

    def test_retry_under_load_stays_bounded_without_spinning(
        self, monkeypatch, tmp_path
    ):
        # r0 fails once and backs off 0.2 s while r1/r2 occupy both
        # workers for ~0.6 s.  The scheduler must neither oversleep
        # (pre-fix: an expired backoff instant was dropped from the
        # wakeup set, so the retry waited for the *next* event) nor
        # busy-spin wait(timeout=0) while the window is full.
        monkeypatch.setattr(
            batch_module,
            "_compute_job",
            functools.partial(
                _flaky_once_then_hang,
                str(tmp_path / "failed"),
                "r0",
                0.6,
            ),
        )
        real_wait = batch_module.wait
        wait_calls: list = []

        def counting_wait(futures, timeout=None, return_when=None):
            wait_calls.append(timeout)
            return real_wait(
                futures, timeout=timeout, return_when=return_when
            )

        monkeypatch.setattr(batch_module, "wait", counting_wait)
        started = time.monotonic()
        decisions = admit_batch(
            _requests(3),
            workers=2,
            max_retries=1,
            retry_backoff=0.2,
        )
        elapsed = time.monotonic() - started
        by_id = {d.request_id: d for d in decisions}
        assert not by_id["r0"].rationale.startswith("service degraded:")
        assert elapsed < 5.0  # no oversleep into the pool teardown
        # A handful of scheduler turns, not a zero-timeout spin loop.
        assert len(wait_calls) < 25
        assert sum(1 for t in wait_calls if t == 0.0) <= 2


class TestControllerPassthrough:
    def test_controller_batch_carries_the_knobs(self, monkeypatch):
        monkeypatch.setattr(
            batch_module, "_compute_job", _hang_on("r0")
        )
        controller = AdmissionController(enable_cache=False)
        decisions = controller.admit_batch(
            _requests(2),
            workers=2,
            job_timeout=0.3,
            max_retries=0,
        )
        assert decisions[0].rationale.startswith("service degraded:")
        snapshot = controller.metrics.snapshot()
        assert snapshot["timeouts"] == 1
        assert snapshot["degraded"] == 1
        assert "robustness:" in controller.describe()
