"""Batch-engine fallback through the service-shaped workloads.

The batch simulation engine only handles the deterministic float-clock
fault-free resource-free core; anything else must *explicitly* fall
back to the reference kernel, recording why on
``SimulationResult.engine_fallback`` -- and, because the fallback runs
the oracle of record, certify identically to an ``engine="reference"``
run.  These tests pin that contract for exactly the request features
the admission service models: armed fault planes, declared critical
sections, and the exact (rational-arithmetic) timebase.

The admission side is covered too: a resourceful system admitted
through the batch path and through the async frontend must produce the
same decision as a direct ``compute_decision`` -- the engines backing
the service may differ in speed, never in verdicts.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import run_protocol
from repro.faults import FaultConfig
from repro.locks import inject_critical_sections
from repro.service.batch import admit_batch
from repro.service.engine import compute_decision
from repro.service.frontend import AdmissionFrontend, FrontendConfig
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)

HORIZON_PERIODS = 5.0


def _system(seed: int):
    return generate_system(LIGHT, seed)


def _resourceful(seed: int):
    return inject_critical_sections(
        _system(seed), ratio=0.2, resources=2, seed=seed
    )


class TestFallbackReasons:
    """engine="batch" on unsupported features: explicit, recorded."""

    def test_armed_fault_plane_falls_back(self):
        faults = FaultConfig(drop_rate=0.1)
        result = run_protocol(
            _system(1),
            "DS",
            horizon_periods=HORIZON_PERIODS,
            faults=faults,
            engine="batch",
        )
        assert result.engine == "reference"
        assert result.engine_fallback == "fault plane armed"

    def test_critical_sections_fall_back(self):
        result = run_protocol(
            _resourceful(1),
            "DS",
            horizon_periods=HORIZON_PERIODS,
            engine="batch",
        )
        assert result.engine == "reference"
        assert (
            result.engine_fallback
            == "system declares critical sections"
        )

    def test_exact_timebase_falls_back(self):
        result = run_protocol(
            _system(1),
            "DS",
            horizon_periods=HORIZON_PERIODS,
            timebase="exact",
            engine="batch",
        )
        assert result.engine == "reference"
        assert result.engine_fallback == "non-float timebase"

    def test_supported_core_does_not_fall_back(self):
        result = run_protocol(
            _system(1),
            "DS",
            horizon_periods=HORIZON_PERIODS,
            engine="batch",
        )
        assert result.engine == "batch"
        assert result.engine_fallback is None


class TestFallbackCertifiesIdentically:
    """The fallback is the oracle of record: results must match it."""

    @pytest.mark.parametrize("protocol", ["DS", "RG"])
    def test_fault_run_matches_reference(self, protocol):
        faults = FaultConfig(drop_rate=0.25, seed=7)
        via_batch = run_protocol(
            _system(2),
            protocol,
            horizon_periods=HORIZON_PERIODS,
            faults=faults,
            engine="batch",
        )
        direct = run_protocol(
            _system(2),
            protocol,
            horizon_periods=HORIZON_PERIODS,
            faults=faults,
            engine="reference",
        )
        # repr-compare: unrecovered faults leave NaN latency summaries,
        # and NaN breaks dataclass ==; identical runs repr identically.
        assert repr(via_batch.metrics) == repr(direct.metrics)
        assert via_batch.events_processed == direct.events_processed

    @pytest.mark.parametrize("protocol", ["DS", "RG"])
    def test_locked_run_matches_reference(self, protocol):
        via_batch = run_protocol(
            _resourceful(2),
            protocol,
            horizon_periods=HORIZON_PERIODS,
            engine="batch",
        )
        direct = run_protocol(
            _resourceful(2),
            protocol,
            horizon_periods=HORIZON_PERIODS,
            engine="reference",
        )
        assert via_batch.metrics == direct.metrics

    def test_exact_timebase_run_matches_reference(self):
        via_batch = run_protocol(
            _system(3),
            "DS",
            horizon_periods=HORIZON_PERIODS,
            timebase="exact",
            engine="batch",
        )
        direct = run_protocol(
            _system(3),
            "DS",
            horizon_periods=HORIZON_PERIODS,
            timebase="exact",
            engine="reference",
        )
        assert via_batch.metrics == direct.metrics


class TestServicePathParity:
    """Resourceful/exact requests decide identically on every path."""

    def _requests(self):
        return [
            AdmissionRequest(
                system=_resourceful(seed),
                request_id=f"r{seed}",
                shared_resources=True,
            )
            for seed in range(3)
        ]

    def test_batch_path_matches_direct(self):
        requests = self._requests()
        batch = admit_batch(requests, workers=1)
        assert batch == [compute_decision(r) for r in requests]
        # The blocking-aware analyses actually engaged: a resourceful
        # request keys differently from its resource-free twin.
        bare = AdmissionRequest(
            system=_system(0), request_id="r0"
        )
        assert batch[0].key != compute_decision(bare).key

    def test_frontend_path_matches_direct(self):
        requests = self._requests()

        async def run():
            async with AdmissionFrontend(
                FrontendConfig(shards=2)
            ) as frontend:
                return [await frontend.admit(r) for r in requests]

        decisions = asyncio.run(run())
        assert decisions == [compute_decision(r) for r in requests]

    def test_paths_agree_with_each_other(self):
        requests = self._requests()
        via_batch = admit_batch(requests, workers=1)

        async def run():
            async with AdmissionFrontend(
                FrontendConfig(shards=1)
            ) as frontend:
                return [await frontend.admit(r) for r in requests]

        via_frontend = asyncio.run(run())
        assert via_batch == via_frontend
