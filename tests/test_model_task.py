"""Unit tests for the task model (Subtask, Task, SubtaskId)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ModelError
from repro.model.task import Subtask, SubtaskId, Task, subtask_display_name


class TestSubtaskId:
    def test_orders_by_task_then_position(self):
        assert SubtaskId(0, 1) < SubtaskId(1, 0)
        assert SubtaskId(1, 0) < SubtaskId(1, 1)

    def test_display_uses_one_based_paper_convention(self):
        assert str(SubtaskId(1, 0)) == "T2,1"
        assert subtask_display_name(0, 2) == "T1,3"

    def test_predecessor_of_first_is_none(self):
        assert SubtaskId(3, 0).predecessor is None

    def test_predecessor_of_later_subtask(self):
        assert SubtaskId(3, 2).predecessor == SubtaskId(3, 1)

    def test_successor_position(self):
        assert SubtaskId(2, 1).successor == SubtaskId(2, 2)

    def test_negative_task_index_rejected(self):
        with pytest.raises(ModelError):
            SubtaskId(-1, 0)

    def test_negative_subtask_index_rejected(self):
        with pytest.raises(ModelError):
            SubtaskId(0, -1)

    def test_hashable_and_equal(self):
        assert SubtaskId(1, 2) == SubtaskId(1, 2)
        assert len({SubtaskId(1, 2), SubtaskId(1, 2)}) == 1


class TestSubtask:
    def test_valid_construction(self):
        sub = Subtask(2.5, "P1", priority=3, name="stage")
        assert sub.execution_time == 2.5
        assert sub.processor == "P1"
        assert sub.priority == 3
        assert sub.name == "stage"

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_nonpositive_execution_time_rejected(self, bad):
        with pytest.raises(ModelError):
            Subtask(bad, "P1")

    def test_empty_processor_rejected(self):
        with pytest.raises(ModelError):
            Subtask(1.0, "")

    def test_non_string_processor_rejected(self):
        with pytest.raises(ModelError):
            Subtask(1.0, 7)  # type: ignore[arg-type]

    def test_non_integer_priority_rejected(self):
        with pytest.raises(ModelError):
            Subtask(1.0, "P1", priority=1.5)  # type: ignore[arg-type]

    def test_with_priority_returns_new_object(self):
        sub = Subtask(1.0, "P1", priority=0)
        bumped = sub.with_priority(4)
        assert bumped.priority == 4
        assert sub.priority == 0
        assert bumped.execution_time == sub.execution_time


class TestTask:
    def _chain(self, *exec_times: float) -> tuple[Subtask, ...]:
        return tuple(
            Subtask(e, f"P{i + 1}", priority=0) for i, e in enumerate(exec_times)
        )

    def test_valid_construction(self):
        task = Task(period=10.0, subtasks=self._chain(1.0, 2.0))
        assert task.chain_length == 2
        assert task.phase == 0.0

    @pytest.mark.parametrize("bad", [0.0, -5.0, math.inf, math.nan])
    def test_bad_period_rejected(self, bad):
        with pytest.raises(ModelError):
            Task(period=bad, subtasks=self._chain(1.0))

    def test_empty_chain_rejected(self):
        with pytest.raises(ModelError):
            Task(period=10.0, subtasks=())

    def test_non_subtask_chain_entry_rejected(self):
        with pytest.raises(ModelError):
            Task(period=10.0, subtasks=("oops",))  # type: ignore[arg-type]

    def test_negative_phase_rejected(self):
        with pytest.raises(ModelError):
            Task(period=10.0, phase=-1.0, subtasks=self._chain(1.0))

    def test_bad_deadline_rejected(self):
        with pytest.raises(ModelError):
            Task(period=10.0, deadline=0.0, subtasks=self._chain(1.0))

    def test_deadline_defaults_to_period(self):
        task = Task(period=12.0, subtasks=self._chain(1.0))
        assert task.relative_deadline == 12.0

    def test_explicit_deadline_kept(self):
        task = Task(period=12.0, deadline=8.0, subtasks=self._chain(1.0))
        assert task.relative_deadline == 8.0

    def test_list_chain_coerced_to_tuple(self):
        task = Task(period=10.0, subtasks=list(self._chain(1.0, 2.0)))
        assert isinstance(task.subtasks, tuple)

    def test_total_execution_time(self):
        task = Task(period=10.0, subtasks=self._chain(1.0, 2.5, 0.5))
        assert task.total_execution_time == pytest.approx(4.0)

    def test_utilization_sums_stage_utilizations(self):
        task = Task(period=10.0, subtasks=self._chain(1.0, 2.0))
        assert task.utilization == pytest.approx(0.3)
        assert task.subtask_utilization(1) == pytest.approx(0.2)

    def test_cumulative_execution_time(self):
        task = Task(period=10.0, subtasks=self._chain(1.0, 2.0, 3.0))
        assert task.cumulative_execution_time(0) == pytest.approx(1.0)
        assert task.cumulative_execution_time(2) == pytest.approx(6.0)

    def test_cumulative_execution_time_out_of_range(self):
        task = Task(period=10.0, subtasks=self._chain(1.0))
        with pytest.raises(ModelError):
            task.cumulative_execution_time(1)

    def test_processors_in_chain_order(self):
        task = Task(period=10.0, subtasks=self._chain(1.0, 2.0, 3.0))
        assert task.processors() == ("P1", "P2", "P3")

    def test_release_times_periodic_from_phase(self):
        task = Task(period=4.0, phase=1.0, subtasks=self._chain(1.0))
        assert list(task.release_times(14.0)) == [1.0, 5.0, 9.0, 13.0]

    def test_release_times_horizon_exclusive(self):
        task = Task(period=5.0, subtasks=self._chain(1.0))
        assert list(task.release_times(10.0)) == [0.0, 5.0]

    def test_with_phase_copies(self):
        task = Task(period=10.0, subtasks=self._chain(1.0))
        shifted = task.with_phase(3.0)
        assert shifted.phase == 3.0
        assert task.phase == 0.0

    def test_with_subtasks_copies(self):
        task = Task(period=10.0, subtasks=self._chain(1.0))
        widened = task.with_subtasks(self._chain(1.0, 2.0))
        assert widened.chain_length == 2
        assert task.chain_length == 1
