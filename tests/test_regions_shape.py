"""Shape canonicalization: what a shape keeps, drops and re-materializes.

The region cache is only as good as its key: two requests must share a
shape key exactly when they differ only in execution times (with
critical sections scaled along), and must *not* share one when anything
verdict-relevant differs.  These tests pin both directions, plus the
``system_at`` re-materialization the region search probes through.
"""

from __future__ import annotations

from dataclasses import replace
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.system import System
from repro.model.task import CriticalSection, Subtask, Task
from repro.regions.shape import (
    SHAPE_FORMAT,
    dimension_names,
    execution_vector,
    shape_key,
    shape_payload,
    system_at,
    task_shape_token,
)
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system


def _system(names: tuple[str, str] = ("a", "b")) -> System:
    return System(
        (
            Task(
                period=10.0,
                subtasks=(
                    Subtask(2.0, "P1", priority=0, name=names[0]),
                    Subtask(3.0, "P2", priority=1, name=names[1]),
                ),
                name="T_first",
            ),
            Task(
                period=20.0,
                subtasks=(Subtask(4.0, "P2", priority=0),),
                name="T_second",
            ),
        ),
        name="shape-fixture",
    )


def _sectioned(e1: float = 2.0, e2: float = 4.0) -> System:
    return System(
        (
            Task(
                period=12.0,
                subtasks=(
                    Subtask(
                        e1,
                        "P1",
                        priority=0,
                        critical_sections=(
                            CriticalSection("R1", e1 / 4, e1 / 2),
                        ),
                    ),
                ),
            ),
            Task(
                period=24.0,
                subtasks=(
                    Subtask(
                        e2,
                        "P1",
                        priority=1,
                        critical_sections=(
                            CriticalSection("R1", 0.0, e2 / 4),
                        ),
                    ),
                ),
            ),
        ),
        name="sectioned",
    )


class TestShapeKey:
    def test_stable_across_calls(self):
        request = AdmissionRequest(system=_system())
        assert shape_key(request) == shape_key(request)

    def test_names_are_not_decision_content(self):
        plain = AdmissionRequest(system=_system(("a", "b")))
        renamed = AdmissionRequest(
            system=replace(_system(("x", "y")), name="other-label")
        )
        assert shape_key(plain) == shape_key(renamed)

    def test_execution_times_are_stripped(self):
        base = _system()
        doubled = system_at(
            base, tuple(2 * e for e in execution_vector(base))
        )
        assert shape_key(AdmissionRequest(system=base)) == shape_key(
            AdmissionRequest(system=doubled)
        )

    def test_proportionally_scaled_sections_share_a_shape(self):
        small = AdmissionRequest(system=_sectioned(2.0, 4.0))
        large = AdmissionRequest(system=_sectioned(4.0, 8.0))
        assert shape_key(small) == shape_key(large)

    def test_different_section_layout_differs(self):
        base = AdmissionRequest(system=_sectioned())
        moved = _sectioned()
        tasks = list(moved.tasks)
        stage = tasks[0].subtasks[0]
        tasks[0] = tasks[0].with_subtasks(
            (
                replace(
                    stage,
                    critical_sections=(
                        CriticalSection("R1", 0.0, 0.5),
                    ),
                ),
            )
        )
        assert shape_key(base) != shape_key(
            AdmissionRequest(system=moved.with_tasks(tasks))
        )

    @pytest.mark.parametrize(
        "options",
        [
            {"protocols": ("DS",)},
            {"synchronized_clocks": False},
            {"clock_rate_bound": 1e-4},
            {"clock_jump_bound": 0.01},
            {"shared_resources": True},
            {"sa_ds_max_iterations": 17},
        ],
    )
    def test_verdict_relevant_options_fragment_the_shape(self, options):
        base = AdmissionRequest(system=_system())
        varied = AdmissionRequest(system=_system(), **options)
        assert shape_key(base) != shape_key(varied)

    def test_advisor_only_options_do_not_fragment(self):
        base = AdmissionRequest(system=_system())
        advisory = AdmissionRequest(system=_system(), jitter_sensitive=True)
        assert shape_key(base) == shape_key(advisory)

    def test_period_change_differs(self):
        base = AdmissionRequest(system=_system())
        slowed = _system()
        tasks = list(slowed.tasks)
        tasks[0] = replace(tasks[0], period=11.0)
        assert shape_key(base) != shape_key(
            AdmissionRequest(system=slowed.with_tasks(tasks))
        )

    def test_payload_carries_format_tag(self):
        payload = shape_payload(AdmissionRequest(system=_system()))
        assert payload["format"] == SHAPE_FORMAT

    @given(
        seed=st.integers(min_value=0, max_value=30),
        factors=st.lists(
            st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0, 4.0]),
            min_size=6,
            max_size=6,
        ),
    )
    def test_property_shape_invariant_under_execution_scaling(
        self, seed, factors
    ):
        """Per-dimension rescaling never moves a section-free shape key."""
        config = WorkloadConfig(
            subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
        )
        system = generate_system(config, seed)
        e0 = execution_vector(system)
        scaled = system_at(
            system, tuple(e * f for e, f in zip(e0, factors))
        )
        assert shape_key(AdmissionRequest(system=system)) == shape_key(
            AdmissionRequest(system=scaled)
        )


class TestTaskToken:
    def test_equal_tasks_share_a_token(self):
        a = _system().tasks[0]
        b = replace(_system().tasks[0], name="renamed")
        assert task_shape_token(a) == task_shape_token(b)

    def test_placement_differs(self):
        a = _system().tasks[0]
        moved = a.with_subtasks(
            (a.subtasks[0], replace(a.subtasks[1], processor="P3"))
        )
        assert task_shape_token(a) != task_shape_token(moved)


class TestVectors:
    def test_execution_vector_follows_canonical_order(self):
        system = _system()
        assert execution_vector(system) == (2.0, 3.0, 4.0)
        assert dimension_names(system) == ("T1,1", "T1,2", "T2,1")

    def test_system_at_round_trips_identity(self):
        system = _sectioned()
        assert system_at(system, execution_vector(system)) == system

    def test_system_at_scales_sections_proportionally(self):
        system = _sectioned(2.0, 4.0)
        grown = system_at(system, (4.0, 4.0))
        section = grown.tasks[0].subtasks[0].critical_sections[0]
        assert section.start == pytest.approx(1.0)
        assert section.duration == pytest.approx(2.0)
        # Untouched dimension keeps its stage object verbatim.
        assert grown.tasks[1] == system.tasks[1]

    def test_system_at_exact_targets_stay_rational(self):
        system = _sectioned(2.0, 4.0)
        grown = system_at(system, (Fraction(3), Fraction(4)))
        section = grown.tasks[0].subtasks[0].critical_sections[0]
        assert isinstance(section.start, Fraction)
        assert section.start == Fraction(3, 4)
        assert section.duration == Fraction(3, 2)

    def test_system_at_clamps_section_end(self):
        stage = Subtask(
            4.0,
            "P1",
            critical_sections=(CriticalSection("R1", 3.0, 1.0),),
        )
        system = System((Task(period=10.0, subtasks=(stage,)),))
        # A shrink that would leave the scaled section poking past the
        # new execution time must clamp, not raise in Subtask validation.
        shrunk = system_at(system, (2.0,))
        section = shrunk.tasks[0].subtasks[0].critical_sections[0]
        assert section.start + section.duration <= 2.0 + 1e-12

    def test_system_at_rejects_wrong_arity(self):
        with pytest.raises(ValueError, match="components"):
            system_at(_system(), (1.0, 2.0))
