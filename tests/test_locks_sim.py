"""Simulation tests for the distributed lock manager.

Runs genuinely resourceful systems under DPCP and DPCP-p and checks the
observable contract: mutual exclusion per resource, the
request/acquire/release lifecycle, placement of agent chunks on the
assignment's synchronization processors, determinism, and the
configured-but-idle identity (a lock manager on a section-free system
must change nothing and log nothing).
"""

from __future__ import annotations

import pytest

from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.protocols.factory import make_controller
from repro.locks import (
    LockingConfig,
    analyze_sa_pm_blocking,
    build_assignment,
    inject_critical_sections,
)
from repro.sim.simulator import simulate
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

CONFIG = WorkloadConfig(
    subtasks_per_task=3,
    utilization=0.5,
    tasks=4,
    processors=3,
    period_min=100.0,
    period_max=1000.0,
    period_scale=300.0,
)

PROTOCOLS = ("DS", "PM", "MPM", "RG")


@pytest.fixture(scope="module")
def locked_system():
    """A resourceful system whose blocking-aware SA/PM bounds are finite
    under both locking protocols (so PM/MPM timers can be armed)."""
    for seed in range(20):
        system = generate_system(CONFIG, seed=seed)
        locked = inject_critical_sections(
            system, ratio=0.2, resources=2, participation=1.0, seed=seed
        )
        if all(
            analyze_sa_pm_blocking(
                locked, locking=LockingConfig(protocol)
            ).all_finite
            for protocol in ("DPCP", "DPCP-p")
        ):
            return locked
    pytest.skip("no analyzable resourceful system in seeds 0..19")


def _run(system, protocol, locking, *, horizon_periods=3.0, timebase="float"):
    bounds = None
    if locking is not None and system.has_critical_sections:
        bounds = analyze_sa_pm_blocking(
            system, locking=locking, timebase=timebase
        ).subtask_bounds
    controller = make_controller(protocol, system, bounds=bounds)
    return simulate(
        system,
        controller,
        horizon_periods=horizon_periods,
        locking=locking,
        timebase=timebase,
    )


class TestResourcefulRuns:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("locking", ["DPCP", "DPCP-p"])
    def test_lock_log_recorded_and_trace_clean(
        self, locked_system, protocol, locking
    ):
        result = _run(locked_system, protocol, LockingConfig(locking))
        log = result.trace.locks
        assert log is not None
        counts = log.counts()
        assert counts["acquire"] > 0
        assert counts["request"] >= counts["acquire"] >= counts["release"]
        assert not result.trace.violations

    @pytest.mark.parametrize("locking", ["DPCP", "DPCP-p"])
    def test_mutual_exclusion_per_resource(self, locked_system, locking):
        log = _run(locked_system, "RG", LockingConfig(locking)).trace.locks
        holds: dict[str, list[tuple[float, float]]] = {}
        open_at: dict[str, float] = {}
        for event in log:
            if event.kind == "acquire":
                assert event.resource not in open_at, (
                    f"{event.resource} granted at {event.time} while held"
                )
                open_at[event.resource] = event.time
            elif event.kind == "release":
                start = open_at.pop(event.resource)
                holds.setdefault(event.resource, []).append(
                    (start, event.time)
                )
        for resource, intervals in holds.items():
            ordered = sorted(intervals)
            for (_, end), (start, _) in zip(ordered, ordered[1:]):
                assert start >= end, f"{resource} holds overlap"

    def test_request_lifecycle_order(self, locked_system):
        log = _run(locked_system, "RG", LockingConfig("DPCP")).trace.locks
        seen: dict[tuple, list[str]] = {}
        times: dict[tuple, float] = {}
        for event in log:
            slot = (event.sid, event.instance, event.resource)
            seen.setdefault(slot, []).append(event.kind)
            assert event.time >= times.get(slot, 0.0)
            times[slot] = event.time
        for slot, kinds in seen.items():
            # Every lifecycle is a prefix of request -> acquire -> release
            # (suffixes are cut off by the horizon, never reordered).
            assert kinds == ["request", "acquire", "release"][: len(kinds)]

    @pytest.mark.parametrize("locking", ["DPCP", "DPCP-p"])
    def test_events_land_on_the_assigned_host(self, locked_system, locking):
        config = LockingConfig(locking)
        assignment = build_assignment(locked_system, config)
        log = _run(locked_system, "RG", config).trace.locks
        assert all(
            event.processor == assignment.host_of(event.resource)
            for event in log
        )

    def test_dpcp_p_uses_more_than_one_host_when_spread(self, locked_system):
        assignment = build_assignment(locked_system, LockingConfig("DPCP"))
        assert len(set(assignment.sync_processor.values())) == 1

    def test_runs_are_deterministic(self, locked_system):
        first = _run(locked_system, "RG", LockingConfig("DPCP"))
        second = _run(locked_system, "RG", LockingConfig("DPCP"))
        assert first.trace.locks.events == second.trace.locks.events
        assert first.trace.completions == second.trace.completions

    def test_exact_timebase_runs_clean(self, locked_system):
        result = _run(
            locked_system, "RG", LockingConfig("DPCP"), timebase="exact"
        )
        assert result.trace.locks is not None
        assert result.trace.locks.counts()["acquire"] > 0
        assert not result.trace.violations


class TestIdleManagerIdentity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("timebase", ["float", "exact"])
    def test_sectionless_system_identical_with_and_without_manager(
        self, protocol, timebase
    ):
        system = generate_system(CONFIG, seed=1)
        assert not system.has_critical_sections
        bounds = analyze_sa_pm(system, timebase=timebase).subtask_bounds

        def run(locking):
            controller = make_controller(protocol, system, bounds=bounds)
            return simulate(
                system,
                controller,
                horizon_periods=3.0,
                locking=locking,
                timebase=timebase,
            )

        bare = run(None)
        idle = run(LockingConfig("DPCP"))
        assert idle.trace.locks is None
        assert idle.trace.releases == bare.trace.releases
        assert idle.trace.completions == bare.trace.completions
