"""The load generator: reproducibility, modes, and the determinism
property -- the same seeded campaign produces the same decisions no
matter how the service is deployed (shards, workers, executor, cache
backend)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.service.frontend import FrontendConfig, TenantQuota
from repro.service.loadgen import (
    LoadgenConfig,
    build_requests,
    decision_digest,
    run_campaign,
)

#: One small campaign reused across the deployment-shape property: big
#: enough to exercise hits, misses and cross-shard routing, small
#: enough to run many deployment shapes in seconds.
SMALL = LoadgenConfig(requests=30, systems=6, seed=11, concurrency=4)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"requests": 0},
            {"systems": 0},
            {"mode": "warp"},
            {"concurrency": 0},
            {"arrival_rate": -1.0},
            {"tenants": ()},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(**kwargs)


class TestRequestPopulation:
    def test_same_seed_same_population(self):
        a = build_requests(SMALL)
        b = build_requests(SMALL)
        assert [r.request_id for r in a] == [r.request_id for r in b]
        assert [r.system.name for r in a] == [r.system.name for r in b]

    def test_different_seed_different_population(self):
        a = build_requests(SMALL)
        b = build_requests(
            LoadgenConfig(requests=30, systems=6, seed=12)
        )
        assert [r.system.name for r in a] != [
            r.system.name for r in b
        ]

    def test_population_size_and_distinct_contents(self):
        requests = build_requests(SMALL)
        assert len(requests) == 30
        assert len({r.system.name for r in requests}) <= 6

    def test_tenants_are_assigned(self):
        config = LoadgenConfig(
            requests=40, systems=4, seed=0, tenants=("a", "b")
        )
        tenants = {r.tenant for r in build_requests(config)}
        assert tenants == {"a", "b"}


class TestCampaigns:
    def test_closed_loop_serves_everything(self):
        report = run_campaign(SMALL, FrontendConfig(shards=2))
        assert report.issued == 30
        assert report.served == 30
        assert report.shed == 0
        assert report.rps > 0
        assert report.latency_p50 <= report.latency_p999
        assert report.admitted + report.rejected == 30

    def test_open_loop_poisson(self):
        config = LoadgenConfig(
            requests=20,
            systems=5,
            seed=3,
            mode="open",
            arrival_rate=5000.0,
        )
        report = run_campaign(config, FrontendConfig(shards=2))
        assert report.served + report.shed == 20

    def test_mixed_mode(self):
        config = LoadgenConfig(
            requests=20,
            systems=5,
            seed=3,
            mode="mixed",
            concurrency=2,
            arrival_rate=5000.0,
        )
        report = run_campaign(config, FrontendConfig(shards=2))
        assert report.served == 20

    def test_quota_sheds_show_up_in_report(self):
        config = LoadgenConfig(
            requests=10, systems=5, seed=0, concurrency=1
        )
        report = run_campaign(
            config,
            FrontendConfig(
                shards=1,
                default_quota=TenantQuota(rate=0.001, burst=3),
            ),
        )
        assert report.shed == 7
        assert report.served == 3

    def test_render_mentions_the_essentials(self):
        report = run_campaign(SMALL, FrontendConfig(shards=1))
        text = report.render()
        assert "issued" in text
        assert "p999" in text
        assert "digest:" in text
        assert "req/s" in text


class TestDeterminismProperty:
    """Same seed + requests => identical decisions, any deployment."""

    REFERENCE = None  # computed once, lazily

    @classmethod
    def _reference_digest(cls) -> str:
        if cls.REFERENCE is None:
            cls.REFERENCE = run_campaign(
                SMALL, FrontendConfig(shards=1)
            ).digest
        return cls.REFERENCE

    @settings(max_examples=10, deadline=None)
    @given(
        shards=st.integers(min_value=1, max_value=5),
        workers=st.integers(min_value=1, max_value=3),
        backend=st.sampled_from(["memory", "sqlite", None]),
        mode=st.sampled_from(["closed", "mixed"]),
    )
    def test_digest_is_deployment_invariant(
        self, shards, workers, backend, mode
    ):
        campaign = LoadgenConfig(
            requests=30,
            systems=6,
            seed=11,
            concurrency=4,
            mode=mode,
            arrival_rate=50000.0,
        )
        report = run_campaign(
            campaign,
            FrontendConfig(
                shards=shards,
                workers_per_shard=workers,
                cache_backend=backend,
            ),
        )
        assert report.shed == 0  # precondition: nothing timing-shed
        assert report.digest == self._reference_digest()

    def test_digest_differs_for_different_campaign(self):
        other = LoadgenConfig(
            requests=30, systems=6, seed=999, concurrency=4
        )
        report = run_campaign(other, FrontendConfig(shards=1))
        assert report.digest != self._reference_digest()

    def test_digest_excludes_sheds(self):
        # A shedding deployment still digests only the served subset;
        # served decisions are the deterministic part.
        config = LoadgenConfig(
            requests=10, systems=5, seed=0, concurrency=1
        )
        quota = run_campaign(
            config,
            FrontendConfig(
                shards=1,
                default_quota=TenantQuota(rate=0.001, burst=3),
            ),
        )
        assert quota.shed > 0
        # Recomputing the digest from the report's own notion matches.
        assert len(quota.digest) == 64

    def test_decision_digest_orders_by_request_id(self):
        requests = build_requests(SMALL)
        from repro.service.engine import compute_decision

        decisions = [compute_decision(r) for r in requests]
        forward = decision_digest(list(decisions))
        backward = decision_digest(list(reversed(decisions)))
        assert forward == backward
