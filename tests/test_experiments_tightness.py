"""Unit tests for the bound-tightness study."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.tightness import measure_tightness
from repro.workload.config import WorkloadConfig

SMALL = WorkloadConfig(
    subtasks_per_task=2, utilization=0.6, tasks=3, processors=2
)


class TestMeasureTightness:
    @pytest.mark.parametrize("protocol", ["DS", "RG"])
    def test_pessimism_at_least_one(self, protocol):
        study = measure_tightness(
            protocol, systems=2, config=SMALL, steps=3, horizon_periods=6.0
        )
        assert study.ratios
        # The searched worst case never exceeds a correct bound.
        assert all(ratio >= 1.0 - 1e-6 for ratio in study.ratios)

    @pytest.mark.slow
    def test_paper_claim_bounds_are_pessimistic(self):
        """Section 3.2: bounds typically exceed the actual worst case.

        The gap widens with chain length and utilization -- it is the
        slack RG's rule 2 exploits.  At (3, 80%) both analyses leave a
        clearly visible gap on a small sample, SA/DS a much larger one
        (the clumping model is coarse).
        """
        heavy = WorkloadConfig(
            subtasks_per_task=3, utilization=0.8, tasks=4, processors=3
        )
        rg = measure_tightness(
            "RG", systems=4, config=heavy, steps=4, horizon_periods=6.0
        )
        ds = measure_tightness(
            "DS", systems=4, config=heavy, steps=4, horizon_periods=6.0
        )
        assert rg.worst > 1.1
        assert ds.worst > 1.5
        # SA/DS is the more pessimistic analysis (Section 4.3).
        assert ds.summary.mean > rg.summary.mean

    def test_algorithms_paired_correctly(self):
        assert (
            measure_tightness("DS", systems=1, config=SMALL, steps=2).algorithm
            == "SA/DS"
        )
        assert (
            measure_tightness("PM", systems=1, config=SMALL, steps=2).algorithm
            == "SA/PM"
        )

    def test_describe_mentions_summary(self):
        study = measure_tightness("DS", systems=1, config=SMALL, steps=2)
        text = study.describe()
        assert "SA/DS under DS" in text
        assert "pessimism" in text

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_tightness("EDF", systems=1, config=SMALL)

    def test_bad_system_count_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_tightness("DS", systems=0, config=SMALL)
