"""Unit tests for the local-deadline assignment strategies."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.model.deadlines import (
    DEADLINE_STRATEGIES,
    deadline_map,
    effective_deadline,
    equal_flexibility_deadline,
    equal_slack_deadline,
    ultimate_deadline,
)
from repro.model.priority import proportional_deadline
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task


@pytest.fixture
def chain() -> System:
    """One three-stage chain: e = (2, 3, 5), D = p = 20 (slack 10)."""
    task = Task(
        period=20.0,
        subtasks=(
            Subtask(2.0, "A"),
            Subtask(3.0, "B"),
            Subtask(5.0, "C"),
        ),
    )
    return System((task,))


class TestStrategies:
    def test_ultimate_deadline(self, chain):
        for j in range(3):
            assert ultimate_deadline(chain, SubtaskId(0, j)) == 20.0

    def test_effective_deadline(self, chain):
        # D minus downstream execution: 20-8, 20-5, 20-0.
        assert effective_deadline(chain, SubtaskId(0, 0)) == pytest.approx(12.0)
        assert effective_deadline(chain, SubtaskId(0, 1)) == pytest.approx(15.0)
        assert effective_deadline(chain, SubtaskId(0, 2)) == pytest.approx(20.0)

    def test_equal_slack(self, chain):
        # Slack 10 split into thirds: e + 10/3.
        assert equal_slack_deadline(chain, SubtaskId(0, 0)) == pytest.approx(
            2.0 + 10.0 / 3.0
        )
        assert equal_slack_deadline(chain, SubtaskId(0, 2)) == pytest.approx(
            5.0 + 10.0 / 3.0
        )

    def test_equal_flexibility_equals_proportional(self, chain):
        for j in range(3):
            sid = SubtaskId(0, j)
            assert equal_flexibility_deadline(chain, sid) == pytest.approx(
                proportional_deadline(chain, sid)
            )

    def test_slices_sum_to_deadline_for_pd_eqs_eqf(self, chain):
        for name in ("pd", "eqs", "eqf"):
            total = sum(deadline_map(chain, name).values())
            assert total == pytest.approx(20.0)

    def test_every_strategy_allows_execution(self, chain):
        for name in DEADLINE_STRATEGIES:
            for sid, deadline in deadline_map(chain, name).items():
                assert deadline >= chain.subtask(sid).execution_time - 1e-9

    def test_single_stage_all_strategies_agree(self):
        task = Task(period=10.0, subtasks=(Subtask(4.0, "A"),))
        system = System((task,))
        values = {
            name: deadline_map(system, name)[SubtaskId(0, 0)]
            for name in DEADLINE_STRATEGIES
        }
        assert all(v == pytest.approx(10.0) for v in values.values())


class TestDeadlineMap:
    def test_accepts_callable(self, chain):
        mapping = deadline_map(chain, lambda s, sid: 7.0)
        assert set(mapping.values()) == {7.0}

    def test_unknown_name_rejected(self, chain):
        with pytest.raises(ModelError, match="unknown deadline strategy"):
            deadline_map(chain, "random")

    def test_covers_all_subtasks(self, chain):
        assert set(deadline_map(chain, "ud")) == set(chain.subtask_ids)


class TestIntegration:
    def test_slicing_analysis_with_eqs(self, example2):
        from repro.core.analysis.local_deadline import analyze_local_deadline

        result = analyze_local_deadline(example2, equal_slack_deadline)
        # T1 single stage: slice = deadline 4 >= response 2.
        assert result.is_task_schedulable(0)

    def test_opa_with_effective_deadlines(self, example2):
        from repro.core.analysis.opa import audsley_assignment

        # ED slices are generous; an assignment exists.
        assert audsley_assignment(example2, effective_deadline) is not None

    def test_priority_assignment_by_strategy(self, chain):
        from repro.model.priority import assign_by_key

        assigned = assign_by_key(chain, equal_slack_deadline)
        # Single chain -- each stage alone on its processor, priority 0.
        for sid in assigned.subtask_ids:
            assert assigned.subtask(sid).priority == 0
