"""Integration scenarios exercising protocol machinery end to end."""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.core.protocols.release_guard import ReleaseGuard
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task
from repro.sim.engine import Kernel
from repro.sim.network import FixedLatency
from repro.sim.simulator import simulate
from repro.sim.variation import UniformReleaseJitter, UniformScaledExecution


class TestRgHeldQueue:
    """A backlogged predecessor clumps three completions; RG meters the
    successor out one period apart, holding two releases at once."""

    def _system(self) -> System:
        blocker = Task(
            period=50.0,
            name="blocker",
            subtasks=(Subtask(25.0, "A", priority=0),),
        )
        chain = Task(
            period=10.0,
            name="chain",
            subtasks=(
                Subtask(1.0, "A", priority=1),
                Subtask(0.05, "B", priority=1),
            ),
        )
        # The hog keeps B continuously busy over [10, 40], so no idle
        # point can reset the successor's guard in the window of
        # interest and the held releases must wait for their timers.
        hog = Task(
            period=50.0,
            phase=10.0,
            name="hog",
            subtasks=(Subtask(30.0, "B", priority=0),),
        )
        return System((blocker, chain, hog))

    def test_completions_clump_and_guard_meters(self):
        system = self._system()
        result = run_protocol(system, "RG", horizon=49.0)
        stage1 = SubtaskId(1, 0)
        stage2 = SubtaskId(1, 1)
        # Blocker holds A for 25 units: chain stage 1 instances 0..2
        # complete back-to-back at 26, 27, 28.
        assert result.trace.completion_time(stage1, 0) == pytest.approx(26.0)
        assert result.trace.completion_time(stage1, 1) == pytest.approx(27.0)
        assert result.trace.completion_time(stage1, 2) == pytest.approx(28.0)
        # RG releases the successor at 26 and holds the rest: instance 1
        # goes at its guard timer (36; B still busy, so no rule 2), and
        # instance 2 goes at the idle point reached once the hog ends
        # and instances 0-1 drain (40.1) -- earlier than its guard (46).
        assert result.trace.release_time(stage2, 0) == pytest.approx(26.0)
        assert result.trace.release_time(stage2, 1) == pytest.approx(36.0)
        assert result.trace.release_time(stage2, 2) == pytest.approx(40.1)

    def test_two_releases_held_simultaneously(self):
        system = self._system()
        controller = ReleaseGuard()
        kernel = Kernel(system, controller, 30.0)
        kernel.run()
        # At t=30: signals for instances 1 and 2 (27, 28) are both held
        # behind the guard of stage 2 (36).
        assert controller.held_count(SubtaskId(1, 1)) == 2

    def test_ds_would_clump_instead(self):
        system = self._system()
        result = run_protocol(system, "DS", horizon=49.0)
        stage2 = SubtaskId(1, 1)
        releases = [result.trace.release_time(stage2, m) for m in range(3)]
        assert releases == pytest.approx([26.0, 27.0, 28.0])


class TestSingleStageDegeneracy:
    """With no chains there is nothing to synchronize: all four
    protocols must produce the *same* schedule (only first subtasks
    exist, and those are environment-released everywhere)."""

    def _system(self) -> System:
        return System(
            (
                Task(period=5.0, subtasks=(Subtask(2.0, "A", priority=0),)),
                Task(period=8.0, subtasks=(Subtask(3.0, "A", priority=1),)),
                Task(period=6.0, subtasks=(Subtask(2.5, "B", priority=0),)),
            )
        )

    @pytest.mark.parametrize("protocol", ["PM", "MPM", "RG"])
    def test_identical_to_ds(self, protocol):
        system = self._system()
        ds = run_protocol(system, "DS", horizon=120.0)
        other = run_protocol(system, protocol, horizon=120.0)
        assert other.trace.releases == ds.trace.releases
        assert other.trace.completions == ds.trace.completions

    def test_analyses_agree_without_chains(self):
        from repro.core.analysis.sa_ds import analyze_sa_ds
        from repro.core.analysis.sa_pm import analyze_sa_pm

        system = self._system()
        sa_pm = analyze_sa_pm(system)
        sa_ds = analyze_sa_ds(system)
        for a, b in zip(sa_ds.task_bounds, sa_pm.task_bounds):
            assert a == pytest.approx(b)


class TestDeadlineBoundaryMetrics:
    def test_eer_exactly_at_deadline_is_met(self):
        """Completion exactly at the deadline counts as meeting it."""
        task = Task(period=5.0, subtasks=(Subtask(5.0, "A", priority=0),))
        result = run_protocol(System((task,)), "DS", horizon=20.0)
        assert result.metrics.task(0).max_eer == pytest.approx(5.0)
        assert result.metrics.task(0).deadline_misses == 0


class TestDeterminism:
    @pytest.mark.parametrize("protocol", ["DS", "PM", "MPM", "RG"])
    def test_identical_runs_produce_identical_traces(
        self, small_system, protocol
    ):
        first = run_protocol(small_system, protocol, horizon_periods=5.0)
        second = run_protocol(small_system, protocol, horizon_periods=5.0)
        assert first.trace.releases == second.trace.releases
        assert first.trace.completions == second.trace.completions
        assert first.events_processed == second.events_processed

    def test_seeded_variation_is_reproducible(self, small_system):
        def run():
            return simulate(
                small_system,
                __import__(
                    "repro.core.protocols", fromlist=["make_controller"]
                ).make_controller("RG", small_system),
                horizon_periods=5.0,
                execution_model=UniformScaledExecution(0.4, 1.0, seed=5),
                jitter_model=UniformReleaseJitter(50.0, seed=6),
            )

        assert run().trace.completions == run().trace.completions


class TestCombinedPerturbations:
    """Latency + execution variation + sporadic releases, all at once --
    the completion-triggered protocols must still never violate
    precedence, and the simulator must stay consistent."""

    @pytest.mark.parametrize("protocol", ["DS", "RG"])
    def test_kitchen_sink_stays_consistent(self, small_system, protocol):
        from repro.core.protocols import make_controller

        result = simulate(
            small_system,
            make_controller(protocol, small_system),
            horizon_periods=6.0,
            execution_model=UniformScaledExecution(0.3, 1.0, seed=7),
            jitter_model=UniformReleaseJitter(100.0, seed=8),
            latency_model=FixedLatency(1.0),
            strict_precedence=True,
            record_segments=True,
        )
        assert result.metrics.precedence_violations == 0
        # Segment accounting still closes.
        totals: dict = {}
        for segment in result.trace.segments:
            key = (segment.sid, segment.instance)
            totals[key] = totals.get(key, 0.0) + segment.length
        for key in result.trace.completions:
            assert totals[key] > 0

    def test_latency_delays_rg_guard_interactions(self, example2):
        """With a signalling latency, RG's signal for T2,2#1 lands at 9
        (not 8) -- exactly the idle point -- and the instance still goes
        at 9."""
        result = run_protocol(
            example2,
            "RG",
            horizon=30.0,
            latency_model=FixedLatency(1.0),
        )
        assert result.trace.release_time(SubtaskId(1, 1), 1) == pytest.approx(
            9.0
        )

    def test_protocol_ranking_stable_under_variation(self, small_system):
        from repro.core.protocols import make_controller

        averages = {}
        for protocol in ("DS", "PM", "RG"):
            result = simulate(
                small_system,
                make_controller(protocol, small_system),
                horizon_periods=8.0,
                execution_model=UniformScaledExecution(0.5, 1.0, seed=3),
            )
            averages[protocol] = sum(
                result.metrics.task(i).average_eer
                for i in range(len(small_system.tasks))
            )
        assert averages["DS"] <= averages["RG"] + 1e-6
        assert averages["RG"] <= averages["PM"] + 1e-6
