"""Unit tests for the analysis extensions: blocking terms,
overhead-aware analysis, and the local-deadline baseline."""

from __future__ import annotations

import math

import pytest

from repro.core.analysis.busy_period import analyze_subtask
from repro.core.analysis.local_deadline import analyze_local_deadline
from repro.core.analysis.overheads import (
    analyze_with_overhead,
    inflate_for_overhead,
)
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.errors import AnalysisError, ConfigurationError
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task


class TestBlocking:
    def _pair(self) -> System:
        t1 = Task(period=4.0, subtasks=(Subtask(2.0, "P1", priority=0),))
        t2 = Task(period=6.0, subtasks=(Subtask(2.0, "P1", priority=1),))
        return System((t1, t2))

    def test_blocking_adds_to_highest_priority_bound(self):
        system = self._pair()
        record = analyze_subtask(system, SubtaskId(0, 0), blocking=1.0)
        # t = 2 + 1 = 3 with no interference: bound 3.
        assert record.bound == pytest.approx(3.0)

    def test_blocking_flows_through_interference(self):
        system = self._pair()
        plain = analyze_subtask(system, SubtaskId(1, 0))
        blocked = analyze_subtask(system, SubtaskId(1, 0), blocking=1.0)
        assert blocked.bound > plain.bound

    def test_negative_blocking_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_subtask(self._pair(), SubtaskId(0, 0), blocking=-1.0)

    def test_sa_pm_accepts_blocking_map(self, example2):
        plain = analyze_sa_pm(example2)
        blocked = analyze_sa_pm(
            example2, blocking={SubtaskId(2, 0): 1.0}
        )
        assert blocked.task_bounds[2] > plain.task_bounds[2]
        # Untouched tasks keep their bounds.
        assert blocked.task_bounds[0] == plain.task_bounds[0]

    def test_blocking_monotone(self):
        system = self._pair()
        bounds = [
            analyze_subtask(system, SubtaskId(1, 0), blocking=b).bound
            for b in (0.0, 0.5, 1.0, 1.9)
        ]
        assert bounds == sorted(bounds)


class TestOverheadAwareAnalysis:
    def test_inflation_adds_overhead_to_every_stage(self, example2):
        inflated = inflate_for_overhead(
            example2, "RG", interrupt_cost=0.05, context_switch_cost=0.05
        )
        # RG: 2 interrupts + 2 context switches = 0.2 per instance.
        for sid in example2.subtask_ids:
            assert inflated.subtask(sid).execution_time == pytest.approx(
                example2.subtask(sid).execution_time + 0.2
            )

    def test_zero_cost_is_identity(self, example2):
        inflated = inflate_for_overhead(
            example2, "DS", interrupt_cost=0.0, context_switch_cost=0.0
        )
        assert inflated.tasks == example2.tasks

    def test_overhead_can_overload(self, example2):
        # Example 2's processors run at 5/6 utilization; large overheads
        # push them past 1.
        with pytest.raises(ConfigurationError, match="overloads"):
            inflate_for_overhead(
                example2, "RG", interrupt_cost=0.3, context_switch_cost=0.3
            )

    def test_overhead_raises_bounds(self, example2):
        plain = analyze_sa_pm(example2)
        costed = analyze_with_overhead(
            example2, "RG", interrupt_cost=0.02, context_switch_cost=0.02
        )
        for i in range(len(example2.tasks)):
            assert costed.task_bounds[i] > plain.task_bounds[i]

    def test_ds_overhead_uses_sa_ds(self, example2):
        result = analyze_with_overhead(
            example2, "DS", interrupt_cost=0.01, context_switch_cost=0.01
        )
        assert result.algorithm == "SA/DS"

    def test_cheaper_protocol_cheaper_bounds(self, example2):
        """DS charges one interrupt per instance, RG two: with the same
        platform costs the DS-inflated system carries less load."""
        ds_system = inflate_for_overhead(
            example2, "DS", interrupt_cost=0.1, context_switch_cost=0.0
        )
        rg_system = inflate_for_overhead(
            example2, "RG", interrupt_cost=0.1, context_switch_cost=0.0
        )
        assert ds_system.max_utilization < rg_system.max_utilization


class TestLocalDeadlineBaseline:
    def test_verdict_on_example2(self, example2):
        result = analyze_local_deadline(example2)
        assert result.algorithm == "local-deadline"
        # T1: single stage, PD = deadline = 4 >= response 2: holds.
        assert result.is_task_schedulable(0)
        # T2: PD_2,1 = 2/5*6 = 2.4 < response bound 4: slice fails.
        assert math.isinf(result.task_bounds[1])

    def test_sa_pm_at_least_as_precise(self):
        """Whenever slicing accepts a task, SA/PM accepts it too -- and
        SA/PM accepts chains the slicing method rejects."""
        # A chain whose first stage overruns its slice but whose chain
        # comfortably meets the end-to-end deadline.
        hog = Task(period=10.0, subtasks=(Subtask(4.0, "A", priority=0),))
        chain = Task(
            period=20.0,
            subtasks=(Subtask(2.0, "A", priority=1),
                      Subtask(2.0, "B", priority=0)),
        )
        system = System((hog, chain))
        sliced = analyze_local_deadline(system)
        sa_pm = analyze_sa_pm(system)
        # Slicing: PD_chain,1 = 10, response = 2+4(+4) = fits? response
        # of chain stage 1 under hog: busy period gives 4+2=6 <= 10: ok;
        # choose numbers so the point is the implication, checked below.
        for i in range(len(system.tasks)):
            if sliced.is_task_schedulable(i):
                assert sa_pm.is_task_schedulable(i)

    def test_slicing_rejects_what_sa_pm_accepts(self):
        # Stage 1 is cheap (so its proportional slice is tiny: PD =
        # 0.5/10 * 20 = 1) but suffers heavy interference (response
        # bound 3.5): its slice fails.  The chain's EER bound 3.5 + 9.5
        # = 13 still fits the end-to-end deadline 20 comfortably.
        hog = Task(period=6.0, subtasks=(Subtask(3.0, "A", priority=0),))
        chain = Task(
            period=20.0,
            subtasks=(Subtask(0.5, "A", priority=1),
                      Subtask(9.5, "B", priority=0)),
        )
        system = System((hog, chain))
        sliced = analyze_local_deadline(system)
        sa_pm = analyze_sa_pm(system)
        assert sa_pm.is_task_schedulable(1)
        assert not sliced.is_task_schedulable(1)

    def test_subtask_bounds_are_slices_when_holding(self, example2):
        from repro.model.priority import proportional_deadline

        result = analyze_local_deadline(example2)
        sid = SubtaskId(0, 0)
        assert result.subtask_bounds[sid] == pytest.approx(
            proportional_deadline(example2, sid)
        )
