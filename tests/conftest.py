"""Shared fixtures, hypothesis profiles and the test-tier gate.

Test tiers
----------
**Tier 1 (default)** is everything ``pytest -q`` collects: unit and
integration tests plus the scaled-down study and conformance suites,
budgeted to stay around a minute on a laptop.  Simulation-heavy
fixtures inside this tier (the paper-reproduction corners, the scaled
expectation suite) run on the batch engine, whose metric identity with
the reference kernel is itself enforced in the tier by
``test_batch_conformance.py`` and ``test_batch_properties.py``.

**Tier 2 (``--runslow``)** adds tests marked ``@pytest.mark.slow``:
multi-minute fuzz campaigns, exhaustive phase-space searches and the
full-size tightness study.  CI's fuzz job runs this tier (with
``HYPOTHESIS_PROFILE=ci`` for a derandomized, replayable example
stream) alongside the budgeted fuzz campaigns.

**Benchmarks** live outside ``testpaths`` under ``benchmarks/`` and
carry their own gates (figure shapes, batch-engine speedup floors);
run them explicitly with ``pytest benchmarks/``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.model.system import System
from repro.model.task import Subtask, Task
from repro.workload.config import WorkloadConfig
from repro.workload.examples import example_two, monitor_task_example
from repro.workload.generator import generate_system

# Property tests draw whole systems, so example generation dominates
# runtime; the "ci" profile additionally derandomizes so every CI run
# executes the identical example stream and failures print a replayable
# blob.  Select with HYPOTHESIS_PROFILE=ci (default: "default").
settings.register_profile("default", deadline=None)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (fuzz campaigns, exhaustive search)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def example2() -> System:
    """The paper's Example 2 (Figs. 2, 3, 5, 7)."""
    return example_two()


@pytest.fixture
def monitor() -> System:
    """The paper's Example 1 (the monitor task of Fig. 1)."""
    return monitor_task_example()


@pytest.fixture
def single_task_system() -> System:
    """One single-subtask task on one processor."""
    return System(
        (
            Task(
                period=10.0,
                subtasks=(Subtask(3.0, "P1", priority=0),),
                name="solo",
            ),
        ),
        name="single",
    )


@pytest.fixture
def two_stage_pipeline() -> System:
    """One two-stage chain across two processors, no interference."""
    return System(
        (
            Task(
                period=10.0,
                subtasks=(
                    Subtask(2.0, "P1", priority=0),
                    Subtask(3.0, "P2", priority=0),
                ),
                name="pipe",
            ),
        ),
        name="pipeline",
    )


@pytest.fixture
def small_config() -> WorkloadConfig:
    """A light synthetic configuration for fast generator-based tests."""
    return WorkloadConfig(
        subtasks_per_task=3,
        utilization=0.6,
        tasks=4,
        processors=3,
    )


@pytest.fixture
def small_system(small_config) -> System:
    """One deterministic synthetic system from ``small_config``."""
    return generate_system(small_config, seed=42)
