"""Shared fixtures: canonical systems used across the test suite."""

from __future__ import annotations

import pytest

from repro.model.system import System
from repro.model.task import Subtask, Task
from repro.workload.config import WorkloadConfig
from repro.workload.examples import example_two, monitor_task_example
from repro.workload.generator import generate_system


@pytest.fixture
def example2() -> System:
    """The paper's Example 2 (Figs. 2, 3, 5, 7)."""
    return example_two()


@pytest.fixture
def monitor() -> System:
    """The paper's Example 1 (the monitor task of Fig. 1)."""
    return monitor_task_example()


@pytest.fixture
def single_task_system() -> System:
    """One single-subtask task on one processor."""
    return System(
        (
            Task(
                period=10.0,
                subtasks=(Subtask(3.0, "P1", priority=0),),
                name="solo",
            ),
        ),
        name="single",
    )


@pytest.fixture
def two_stage_pipeline() -> System:
    """One two-stage chain across two processors, no interference."""
    return System(
        (
            Task(
                period=10.0,
                subtasks=(
                    Subtask(2.0, "P1", priority=0),
                    Subtask(3.0, "P2", priority=0),
                ),
                name="pipe",
            ),
        ),
        name="pipeline",
    )


@pytest.fixture
def small_config() -> WorkloadConfig:
    """A light synthetic configuration for fast generator-based tests."""
    return WorkloadConfig(
        subtasks_per_task=3,
        utilization=0.6,
        tasks=4,
        processors=3,
    )


@pytest.fixture
def small_system(small_config) -> System:
    """One deterministic synthetic system from ``small_config``."""
    return generate_system(small_config, seed=42)
