"""Unit tests for the parallel sweep and the expectation checker."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.expectations import (
    PAPER_EXPECTATIONS,
    check_suite,
    render_report,
)
from repro.experiments.parallel import parallel_sweep_grid
from repro.experiments.runner import run_suite, sweep_grid
from repro.workload.config import WorkloadConfig

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=4, processors=3
)


class TestParallelSweep:
    def test_matches_serial_sweep(self):
        serial = sweep_grid(
            [LIGHT], 3, run_simulations=False
        )
        parallel = parallel_sweep_grid(
            [LIGHT], 3, workers=2, run_simulations=False
        )
        for config in serial:
            for a, b in zip(serial[config], parallel[config]):
                assert a.seed == b.seed
                assert a.sa_pm_task_bounds == b.sa_pm_task_bounds
                assert a.sa_ds_task_bounds == b.sa_ds_task_bounds

    def test_single_worker_path(self):
        records = parallel_sweep_grid(
            [LIGHT], 2, workers=1, run_simulations=False
        )
        assert len(records[LIGHT]) == 2

    def test_progress_reported_on_every_completion(self):
        lines: list[str] = []
        parallel_sweep_grid(
            [LIGHT],
            2,
            workers=1,
            run_simulations=False,
            progress=lines.append,
        )
        assert lines == [
            "1/2 systems evaluated",
            "2/2 systems evaluated",
        ]

    def test_progress_not_gated_by_system_count(self):
        # Regression: with many systems per config the callback used to
        # fire only every `systems` completions -- i.e. once per config.
        lines: list[str] = []
        parallel_sweep_grid(
            [LIGHT],
            5,
            workers=2,
            run_simulations=False,
            progress=lines.append,
        )
        assert len(lines) == 5
        assert lines[0] == "1/5 systems evaluated"

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_sweep_grid([], 1)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_sweep_grid([LIGHT], 1, workers=0)

    def test_bad_system_count_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_sweep_grid([LIGHT], 0)


class TestExpectations:
    @pytest.fixture(scope="class")
    def suite(self):
        # The Figure 14 magnitude claims are tied to the paper's 12-task
        # workloads, so the suite keeps that parameter and scales down
        # only the grid and the sample.
        # engine="batch": metric-identical on these workloads (enforced
        # by tests/test_batch_conformance.py) and keeps the scaled suite
        # inside the fast tier.
        return run_suite(
            systems=3,
            subtask_counts=(2, 5, 8),
            utilizations=(0.5, 0.9),
            horizon_periods=6.0,
            engine="batch",
        )

    def test_paper_expectations_hold_on_scaled_suite(self, suite):
        results = check_suite(suite)
        failed = [e.claim for e, held in results if not held]
        assert not failed, failed

    def test_report_renders(self, suite):
        text = render_report(check_suite(suite))
        assert "PASS" in text
        assert f"{len(PAPER_EXPECTATIONS)}/{len(PAPER_EXPECTATIONS)}" in text

    def test_expectations_cover_all_five_figures(self):
        figures = {e.figure for e in PAPER_EXPECTATIONS}
        assert figures == {
            "Figure 12",
            "Figure 13",
            "Figure 14",
            "Figure 15",
            "Figure 16",
        }
