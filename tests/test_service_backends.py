"""The sqlite cache backend: interface parity with DecisionCache."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.backends import (
    CACHE_BACKENDS,
    SqliteDecisionCache,
    make_cache,
)
from repro.service.cache import DecisionCache
from repro.service.engine import compute_decision
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)


def _decision(seed: int):
    request = AdmissionRequest(
        system=generate_system(LIGHT, seed), request_id=str(seed)
    )
    return compute_decision(request)


@pytest.fixture(params=["memory", "sqlite"])
def cache(request):
    built = make_cache(request.param, capacity=8)
    yield built
    if isinstance(built, SqliteDecisionCache):
        built.close()


class TestInterfaceParity:
    """Both backends honour the same contract, parametrized."""

    def test_round_trip(self, cache):
        decision = _decision(1)
        cache.put(decision.key, decision)
        assert decision.key in cache
        assert len(cache) == 1
        assert cache.get(decision.key) == decision

    def test_miss_returns_none_and_counts(self, cache):
        assert cache.get("0" * 64) is None
        assert cache.stats().misses == 1

    def test_lru_eviction_order(self, cache):
        decisions = [_decision(seed) for seed in range(10)]
        for decision in decisions:
            cache.put(decision.key, decision)
        assert len(cache) == 8  # capacity
        # The two oldest fell out.
        assert decisions[0].key not in cache
        assert decisions[1].key not in cache
        assert cache.stats().evictions == 2

    def test_get_refreshes_recency(self, cache):
        decisions = [_decision(seed) for seed in range(8)]
        for decision in decisions:
            cache.put(decision.key, decision)
        cache.get(decisions[0].key)  # touch the LRU entry
        cache.put(_decision(100).key, _decision(100))
        assert decisions[0].key in cache  # survived: it was refreshed
        assert decisions[1].key not in cache  # evicted instead

    def test_clear(self, cache):
        decision = _decision(2)
        cache.put(decision.key, decision)
        cache.clear()
        assert len(cache) == 0
        assert decision.key not in cache

    def test_keys_lru_first(self, cache):
        a, b = _decision(1), _decision(2)
        cache.put(a.key, a)
        cache.put(b.key, b)
        cache.get(a.key)  # a becomes most recent
        assert cache.keys() == (b.key, a.key)

    def test_has_single_flight_table(self, cache):
        leader, _ = cache.flights.begin("k")
        assert leader
        cache.flights.finish("k", None)


class TestPersistenceInterop:
    """Sqlite exports/imports the DecisionCache JSONL format."""

    def test_sqlite_save_memory_load(self, tmp_path):
        sqlite_cache = SqliteDecisionCache(capacity=8)
        decisions = [_decision(seed) for seed in range(3)]
        for decision in decisions:
            sqlite_cache.put(decision.key, decision)
        exported = sqlite_cache.save(tmp_path / "cache.jsonl")

        memory = DecisionCache(capacity=8)
        assert memory.load(exported) == 3
        for decision in decisions:
            assert memory.get(decision.key) == decision
        sqlite_cache.close()

    def test_memory_save_sqlite_load(self, tmp_path):
        memory = DecisionCache(capacity=8)
        decisions = [_decision(seed) for seed in range(3)]
        for decision in decisions:
            memory.put(decision.key, decision)
        memory.save(tmp_path / "cache.jsonl")

        sqlite_cache = SqliteDecisionCache(capacity=8)
        assert sqlite_cache.load(tmp_path / "cache.jsonl") == 3
        for decision in decisions:
            assert sqlite_cache.get(decision.key) == decision
        sqlite_cache.close()

    def test_file_backed_store_survives_reopen(self, tmp_path):
        db = tmp_path / "decisions.db"
        first = SqliteDecisionCache(capacity=8, db_path=db)
        decision = _decision(5)
        first.put(decision.key, decision)
        first.close()

        second = SqliteDecisionCache(capacity=8, db_path=db)
        assert second.get(decision.key) == decision
        second.close()

    def test_two_handles_share_one_file(self, tmp_path):
        db = tmp_path / "shared.db"
        writer = SqliteDecisionCache(capacity=8, db_path=db)
        reader = SqliteDecisionCache(capacity=8, db_path=db)
        decision = _decision(6)
        writer.put(decision.key, decision)
        assert reader.get(decision.key) == decision
        writer.close()
        reader.close()


class TestFactory:
    def test_known_backends(self):
        assert CACHE_BACKENDS == ("memory", "sqlite")
        assert isinstance(make_cache("memory"), DecisionCache)
        assert isinstance(make_cache("sqlite"), SqliteDecisionCache)

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ConfigurationError):
            make_cache("redis")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SqliteDecisionCache(capacity=0)
