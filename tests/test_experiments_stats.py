"""Unit tests for experiment statistics helpers."""

from __future__ import annotations

import math

import pytest

from repro.experiments.stats import finite, mean_with_ci


class TestFinite:
    def test_drops_nan_and_inf(self):
        assert finite([1.0, math.nan, 2.0, math.inf, -math.inf]) == [1.0, 2.0]

    def test_empty(self):
        assert finite([]) == []


class TestMeanWithCI:
    def test_empty_sample(self):
        result = mean_with_ci([])
        assert result.count == 0
        assert math.isnan(result.mean)
        assert str(result) == "n/a"

    def test_singleton_has_zero_half_width(self):
        result = mean_with_ci([3.0])
        assert result.mean == 3.0
        assert result.half_width == 0.0
        assert result.count == 1

    def test_mean_and_interval(self):
        result = mean_with_ci([1.0, 2.0, 3.0, 4.0])
        assert result.mean == pytest.approx(2.5)
        # s^2 = 5/3, half = 1.645 * sqrt(5/3/4).
        assert result.half_width == pytest.approx(
            1.6448536269514722 * math.sqrt((5 / 3) / 4)
        )
        assert result.low == pytest.approx(result.mean - result.half_width)
        assert result.high == pytest.approx(result.mean + result.half_width)

    def test_constant_sample_has_zero_width(self):
        result = mean_with_ci([2.0] * 10)
        assert result.half_width == 0.0

    def test_nonfinite_values_ignored(self):
        result = mean_with_ci([1.0, math.inf, 3.0, math.nan])
        assert result.mean == pytest.approx(2.0)
        assert result.count == 2

    def test_interval_shrinks_with_sample_size(self):
        small = mean_with_ci([1.0, 3.0] * 5)
        large = mean_with_ci([1.0, 3.0] * 500)
        assert large.half_width < small.half_width

    def test_str_format(self):
        text = str(mean_with_ci([1.0, 2.0, 3.0]))
        assert "±" in text
