"""Kernel-level fault injection and recovery, protocol by protocol.

Every scenario uses rate-1.0 (or otherwise pinned) fault streams on the
two-stage pipeline fixture, so the expected behaviour is deterministic
and readable: stage 1 runs on P1, stage 2 on P2, and every stage-2
release rides one cross-processor synchronization signal.
"""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.faults import FaultConfig
from repro.model.task import SubtaskId
from repro.sim.trace_validation import validate_trace

STAGE1 = SubtaskId(0, 0)
STAGE2 = SubtaskId(0, 1)
PERIODS = 10.0


def _run(system, protocol, faults, **kwargs):
    kwargs.setdefault("horizon_periods", PERIODS)
    kwargs.setdefault("record_segments", True)
    return run_protocol(system, protocol, faults=faults, **kwargs)


def _released(trace, sid):
    return sorted(m for (s, m) in trace.releases if s == sid)


class TestSignalFaults:
    def test_drop_starves_ds_successor(self, two_stage_pipeline):
        result = _run(
            two_stage_pipeline, "DS", FaultConfig(drop_rate=1.0)
        )
        assert _released(result.trace, STAGE2) == []
        log = result.trace.faults
        assert log.counts()["signal-drop"] == 10
        assert log.recovered_count() == 0
        assert log.unrecovered_violations() == 10
        assert result.metrics.unrecovered_violation_count == 10

    def test_watchdog_recovers_dropped_signals(self, two_stage_pipeline):
        result = _run(
            two_stage_pipeline,
            "DS",
            FaultConfig(
                drop_rate=0.4,
                watchdog=True,
                ack_timeout=0.5,
                max_retransmits=10,
                seed=3,
            ),
        )
        log = result.trace.faults
        drops = log.events_of("signal-drop")
        assert drops, "seed must actually drop something"
        assert all(event.recovered for event in drops)
        assert _released(result.trace, STAGE2) == list(range(10))
        assert log.unrecovered_violations() == 0
        # Recovery is not free: each recovered drop waited at least one
        # ack timeout.
        assert all(lat >= 0.5 for lat in log.recovery_latencies())

    def test_duplicate_release_stands_without_suppression(
        self, two_stage_pipeline
    ):
        result = _run(
            two_stage_pipeline, "DS", FaultConfig(duplicate_rate=1.0)
        )
        doubles = result.trace.faults.events_of("duplicate-release")
        assert len(doubles) == 10
        assert not any(event.recovered for event in doubles)

    def test_suppression_absorbs_duplicates(self, two_stage_pipeline):
        result = _run(
            two_stage_pipeline,
            "DS",
            FaultConfig(duplicate_rate=1.0, suppress_duplicates=True),
        )
        doubles = result.trace.faults.events_of("duplicate-release")
        assert len(doubles) == 10
        assert all(event.recovered for event in doubles)
        assert result.trace.faults.unrecovered_violations() == 0
        assert _released(result.trace, STAGE2) == list(range(10))

    def test_rg_guard_makes_reordered_delivery_safe(
        self, two_stage_pipeline
    ):
        result = _run(
            two_stage_pipeline,
            "RG",
            FaultConfig(reorder_rate=1.0, reorder_delay=2.0),
        )
        assert _released(result.trace, STAGE2) == list(range(10))
        assert not result.trace.violations


class TestTimerFaults:
    def test_timer_loss_kills_the_pm_release_chain(
        self, two_stage_pipeline
    ):
        result = _run(
            two_stage_pipeline, "PM", FaultConfig(timer_loss_rate=1.0)
        )
        assert _released(result.trace, STAGE2) == []
        chains = result.trace.faults.lost_release_chains()
        assert chains.get(STAGE2) == 0

    def test_timer_loss_kills_mpm_relays_per_instance(
        self, two_stage_pipeline
    ):
        result = _run(
            two_stage_pipeline, "MPM", FaultConfig(timer_loss_rate=1.0)
        )
        assert _released(result.trace, STAGE2) == []
        losses = result.trace.faults.events_of("timer-loss")
        # One relay per released stage-1 instance (a final one may be
        # armed for the instance straddling the horizon).
        assert len(losses) >= 10
        assert {event.sid for event in losses} == {STAGE1}

    def test_rg_self_heals_lost_guard_timers(self, two_stage_pipeline):
        result = _run(
            two_stage_pipeline, "RG", FaultConfig(timer_loss_rate=1.0)
        )
        # Signals arriving at the idle successor processor release
        # directly (rule 2), so RG never needed the lost wake-ups here.
        assert _released(result.trace, STAGE2) == list(range(10))

    def test_rg_survives_idle_point_loss(self, two_stage_pipeline):
        result = _run(
            two_stage_pipeline,
            "RG",
            FaultConfig(lose_idle_points=True),
        )
        # Rule-1-only degradation: releases ride guard timers instead of
        # idle points, but nothing is lost.
        assert _released(result.trace, STAGE2) == list(range(10))
        assert not result.trace.violations


class TestCrashRestart:
    CONFIG = FaultConfig(
        crash_start=13.0, crash_duration=8.0, crash_processor=1
    )

    @staticmethod
    def _system():
        # The pipeline plus a lower-priority competitor on P2: the
        # crash destroys an in-flight stage-2 instance, after which the
        # competitor runs while the corpse still looks "ready" -- the
        # exact anomaly only the fault log can explain.
        from repro.model.system import System
        from repro.model.task import Subtask, Task

        return System(
            tasks=(
                Task(
                    period=10.0,
                    subtasks=(
                        Subtask(2.0, "P1", 0),
                        Subtask(3.0, "P2", 0),
                    ),
                    name="pipe",
                ),
                Task(
                    period=10.0,
                    subtasks=(Subtask(2.0, "P2", 1),),
                    name="background",
                ),
            ),
            name="crashy",
        )

    def test_crash_window_loses_and_defers(self):
        result = _run(self._system(), "DS", self.CONFIG)
        log = result.trace.faults
        assert log.counts()["crash"] == 1
        assert log.counts().get("restart", 0) == 1
        # The stage-2 instance in flight at 13.0 is destroyed; the
        # signal arriving during the dark window is replayed at 21.0.
        assert log.counts()["crash-loss"] == 1
        assert log.counts()["crash-defer"] == 1

    def test_validator_accepts_the_crash_with_its_log(self):
        result = _run(self._system(), "DS", self.CONFIG)
        assert validate_trace(result.trace) == []

    def test_validator_rejects_the_crash_without_its_log(self):
        # Without the log, the destroyed instance looks like a ready
        # higher-priority job being starved by the competitor.
        result = _run(self._system(), "DS", self.CONFIG)
        bare = validate_trace(result.trace, fault_log=None)
        assert bare
        assert all("higher-priority" in issue for issue in bare)


class TestOverrunPolicing:
    FAULTS = dict(overrun_rate=1.0, overrun_factor=1.5)

    def test_policy_off_records_unrecovered_overruns(
        self, two_stage_pipeline
    ):
        result = _run(
            two_stage_pipeline,
            "DS",
            FaultConfig(**self.FAULTS, overrun_policy="off"),
        )
        log = result.trace.faults
        assert log.counts()["overrun"] > 0
        assert log.unrecovered_violations() > 0
        # Fault-aware validation excuses exactly the documented
        # overruns; with no log the WCET-conservation check fires.
        assert validate_trace(result.trace) == []
        bare = validate_trace(result.trace, fault_log=None)
        assert any("WCET" in issue for issue in bare)

    def test_policy_throttle_caps_demand(self, two_stage_pipeline):
        result = _run(
            two_stage_pipeline,
            "DS",
            FaultConfig(**self.FAULTS, overrun_policy="throttle"),
        )
        log = result.trace.faults
        assert log.events_of("overrun")
        assert all(e.recovered for e in log.events_of("overrun"))
        assert log.unrecovered_violations() == 0
        # Throttled demand fits the budget: the plain validator (no
        # exclusions) is already satisfied.
        assert validate_trace(result.trace, fault_log=None) == []

    def test_policy_abort_kills_the_instance(self, two_stage_pipeline):
        result = _run(
            two_stage_pipeline,
            "DS",
            FaultConfig(**self.FAULTS, overrun_policy="abort"),
        )
        # Every stage-1 instance overruns and is destroyed at its
        # budget, so nothing ever completes or signals downstream.
        assert result.trace.completions == {}
        assert _released(result.trace, STAGE2) == []
        assert result.trace.faults.events_of("overrun-abort")
        assert validate_trace(result.trace) == []


class TestDeterminismAndIdentity:
    CHAOS = FaultConfig(
        drop_rate=0.2,
        duplicate_rate=0.2,
        reorder_rate=0.1,
        timer_loss_rate=0.1,
        watchdog=True,
        suppress_duplicates=True,
        seed=11,
    )

    @pytest.mark.parametrize("timebase", ["float", "exact"])
    def test_same_seed_same_trace(self, two_stage_pipeline, timebase):
        first = _run(
            two_stage_pipeline, "RG", self.CHAOS, timebase=timebase
        )
        second = _run(
            two_stage_pipeline, "RG", self.CHAOS, timebase=timebase
        )
        assert first.trace.releases == second.trace.releases
        assert first.trace.completions == second.trace.completions
        assert first.trace.faults.counts() == second.trace.faults.counts()

    def test_different_seed_different_decisions(self, two_stage_pipeline):
        from dataclasses import replace

        first = _run(two_stage_pipeline, "RG", self.CHAOS)
        second = _run(
            two_stage_pipeline, "RG", replace(self.CHAOS, seed=12)
        )
        assert (
            first.trace.faults.counts() != second.trace.faults.counts()
            or first.trace.releases != second.trace.releases
        )

    @pytest.mark.parametrize("timebase", ["float", "exact"])
    def test_null_plane_is_byte_identical(
        self, two_stage_pipeline, timebase
    ):
        armed = _run(
            two_stage_pipeline, "DS", FaultConfig(), timebase=timebase
        )
        bare = _run(two_stage_pipeline, "DS", None, timebase=timebase)
        assert armed.trace.releases == bare.trace.releases
        assert armed.trace.completions == bare.trace.completions
        assert armed.trace.faults is not None
        assert armed.trace.faults.counts() == {}

    def test_metrics_carry_the_fault_summary(self, two_stage_pipeline):
        result = _run(
            two_stage_pipeline, "DS", FaultConfig(drop_rate=1.0)
        )
        summary = result.metrics.faults
        assert summary is not None
        assert summary.total_injected == 10
        assert summary.counts == {"signal-drop": 10}
        assert summary.unrecovered_violations == 10
        bare = _run(two_stage_pipeline, "DS", None)
        assert bare.metrics.faults is None
        assert bare.metrics.unrecovered_violation_count == 0
