"""Unit tests for batch admission (ordering, dedup, worker counts)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.batch import admit_batch
from repro.service.cache import DecisionCache
from repro.service.engine import compute_decision
from repro.service.metrics import ServiceMetrics
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)


def _requests(count: int, tag: str = "") -> list[AdmissionRequest]:
    return [
        AdmissionRequest(
            system=generate_system(LIGHT, seed),
            request_id=f"{tag}{seed}",
        )
        for seed in range(count)
    ]


class TestAdmitBatch:
    def test_matches_individual_decisions(self):
        requests = _requests(4)
        batch = admit_batch(requests, workers=1)
        assert batch == [compute_decision(r) for r in requests]

    def test_order_is_request_order(self):
        batch = admit_batch(_requests(5), workers=1)
        assert [d.request_id for d in batch] == [str(i) for i in range(5)]

    def test_pool_matches_serial(self):
        requests = _requests(5)
        assert admit_batch(requests, workers=2) == admit_batch(
            requests, workers=1
        )

    def test_empty_batch(self):
        assert admit_batch([], workers=1) == []

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            admit_batch(_requests(1), workers=0)

    def test_duplicates_computed_once(self):
        base = _requests(2)
        requests = base + [
            r.with_request_id(f"dup-{r.request_id}") for r in base
        ]
        metrics = ServiceMetrics()
        batch = admit_batch(requests, metrics=metrics, workers=1)
        snap = metrics.snapshot()
        assert snap["cache_misses"] == 2  # one per distinct system
        assert snap["cache_hits"] == 2  # in-batch duplicates ride along
        assert batch[0].key == batch[2].key
        assert batch[2].request_id == "dup-0"

    def test_cache_on_off_identical(self):
        requests = _requests(4)
        cached = admit_batch(requests, cache=DecisionCache(), workers=1)
        uncached = admit_batch(requests, cache=None, workers=1)
        assert cached == uncached

    def test_warm_cache_serves_without_computing(self):
        requests = _requests(3)
        cache = DecisionCache()
        metrics = ServiceMetrics()
        first = admit_batch(requests, cache=cache, workers=1)
        second = admit_batch(
            requests, cache=cache, metrics=metrics, workers=1
        )
        assert first == second
        assert metrics.snapshot()["cache_misses"] == 0
        assert cache.stats().hits == 3

    def test_progress_fires_per_computed_decision(self):
        lines: list[str] = []
        admit_batch(_requests(3), workers=1, progress=lines.append)
        assert lines == [
            "1/3 admission decisions computed",
            "2/3 admission decisions computed",
            "3/3 admission decisions computed",
        ]

    def test_progress_silent_on_full_hit(self):
        requests = _requests(2)
        cache = DecisionCache()
        admit_batch(requests, cache=cache, workers=1)
        lines: list[str] = []
        admit_batch(
            requests, cache=cache, workers=1, progress=lines.append
        )
        assert lines == []

    def test_partial_warm_batch(self):
        cache = DecisionCache()
        admit_batch(_requests(2), cache=cache, workers=1)
        mixed = _requests(4)  # seeds 0,1 cached; 2,3 cold
        decisions = admit_batch(mixed, cache=cache, workers=1)
        assert [d.request_id for d in decisions] == ["0", "1", "2", "3"]
        assert decisions == [compute_decision(r) for r in mixed]
