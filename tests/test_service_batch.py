"""Unit tests for batch admission (ordering, dedup, worker counts)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.batch import admit_batch
from repro.service.cache import DecisionCache
from repro.service.engine import compute_decision
from repro.service.metrics import ServiceMetrics
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)


def _requests(count: int, tag: str = "") -> list[AdmissionRequest]:
    return [
        AdmissionRequest(
            system=generate_system(LIGHT, seed),
            request_id=f"{tag}{seed}",
        )
        for seed in range(count)
    ]


class TestAdmitBatch:
    def test_matches_individual_decisions(self):
        requests = _requests(4)
        batch = admit_batch(requests, workers=1)
        assert batch == [compute_decision(r) for r in requests]

    def test_order_is_request_order(self):
        batch = admit_batch(_requests(5), workers=1)
        assert [d.request_id for d in batch] == [str(i) for i in range(5)]

    def test_pool_matches_serial(self):
        requests = _requests(5)
        assert admit_batch(requests, workers=2) == admit_batch(
            requests, workers=1
        )

    def test_empty_batch(self):
        assert admit_batch([], workers=1) == []

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            admit_batch(_requests(1), workers=0)

    def test_duplicates_computed_once(self):
        base = _requests(2)
        requests = base + [
            r.with_request_id(f"dup-{r.request_id}") for r in base
        ]
        metrics = ServiceMetrics()
        batch = admit_batch(requests, metrics=metrics, workers=1)
        snap = metrics.snapshot()
        assert snap["cache_misses"] == 2  # one per distinct system
        assert snap["cache_hits"] == 2  # in-batch duplicates ride along
        assert batch[0].key == batch[2].key
        assert batch[2].request_id == "dup-0"

    def test_cache_on_off_identical(self):
        requests = _requests(4)
        cached = admit_batch(requests, cache=DecisionCache(), workers=1)
        uncached = admit_batch(requests, cache=None, workers=1)
        assert cached == uncached

    def test_warm_cache_serves_without_computing(self):
        requests = _requests(3)
        cache = DecisionCache()
        metrics = ServiceMetrics()
        first = admit_batch(requests, cache=cache, workers=1)
        second = admit_batch(
            requests, cache=cache, metrics=metrics, workers=1
        )
        assert first == second
        assert metrics.snapshot()["cache_misses"] == 0
        assert cache.stats().hits == 3

    def test_progress_fires_per_computed_decision(self):
        lines: list[str] = []
        admit_batch(_requests(3), workers=1, progress=lines.append)
        assert lines == [
            "1/3 admission decisions computed",
            "2/3 admission decisions computed",
            "3/3 admission decisions computed",
        ]

    def test_progress_silent_on_full_hit(self):
        requests = _requests(2)
        cache = DecisionCache()
        admit_batch(requests, cache=cache, workers=1)
        lines: list[str] = []
        admit_batch(
            requests, cache=cache, workers=1, progress=lines.append
        )
        assert lines == []

    def test_partial_warm_batch(self):
        cache = DecisionCache()
        admit_batch(_requests(2), cache=cache, workers=1)
        mixed = _requests(4)  # seeds 0,1 cached; 2,3 cold
        decisions = admit_batch(mixed, cache=cache, workers=1)
        assert [d.request_id for d in decisions] == ["0", "1", "2", "3"]
        assert decisions == [compute_decision(r) for r in mixed]


class TestNextWakeup:
    """Scheduler wakeup arithmetic (regression for the oversleep bug).

    Pre-fix, the pool scheduler computed its wait timeout from queued
    backoff instants *strictly in the future* -- an instant that
    expired between the submission scan and the timeout computation
    vanished from the wakeup set, and the scheduler overslept until
    the next unrelated event.  `_next_wakeup` keeps expired instants
    (clamped to zero) and ignores queue deadlines only when no
    submission slot is free (when acting on them is impossible and
    honouring them would busy-spin).
    """

    def _queue(self, *instants):
        from collections import deque

        return deque(
            (f"k{i}", 0, instant) for i, instant in enumerate(instants)
        )

    def test_expired_deadline_wakes_immediately(self):
        from repro.service.batch import _next_wakeup

        # One expired instant, one far future: pre-fix code returned
        # 5.0 (the future one); the fix returns 0.0.
        timeout = _next_wakeup(
            self._queue(99.9, 105.0), {}, None, now=100.0, capacity=1
        )
        assert timeout == 0.0

    def test_future_deadline_is_the_exact_delta(self):
        from repro.service.batch import _next_wakeup

        timeout = _next_wakeup(
            self._queue(100.25), {}, None, now=100.0, capacity=1
        )
        assert timeout == pytest.approx(0.25)

    def test_idle_scheduler_sleeps_forever(self):
        from collections import deque

        from repro.service.batch import _next_wakeup

        assert (
            _next_wakeup(deque(), {}, None, now=0.0, capacity=2) is None
        )

    def test_full_window_ignores_unactionable_queue_deadlines(self):
        from repro.service.batch import _next_wakeup

        # No capacity: the expired backoff instant cannot be acted on,
        # so it must not force a zero-timeout spin; with no job timeout
        # the scheduler just blocks on completions.
        timeout = _next_wakeup(
            self._queue(99.0),
            {"future": ("k", 0, 98.0)},
            None,
            now=100.0,
            capacity=0,
        )
        assert timeout is None

    def test_full_window_still_honours_job_timeouts(self):
        from repro.service.batch import _next_wakeup

        # Submitted at 98.0 with a 3 s budget: wake at 101.0.
        timeout = _next_wakeup(
            self._queue(99.0),
            {"future": ("k", 0, 98.0)},
            3.0,
            now=100.0,
            capacity=0,
        )
        assert timeout == pytest.approx(1.0)

    def test_earliest_of_queue_and_timeout_wins(self):
        from repro.service.batch import _next_wakeup

        timeout = _next_wakeup(
            self._queue(100.5),
            {"future": ("k", 0, 98.0)},
            3.0,  # in-flight deadline at 101.0
            now=100.0,
            capacity=1,
        )
        assert timeout == pytest.approx(0.5)
