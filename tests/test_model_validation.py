"""Unit tests for system validation checks."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task
from repro.model.validation import (
    check_consecutive_placement,
    require_feasible_utilization,
    validate_system,
)


def _overloaded() -> System:
    return System(
        (
            Task(period=4.0, subtasks=(Subtask(3.0, "A", priority=0),)),
            Task(period=4.0, subtasks=(Subtask(3.0, "A", priority=1),)),
        )
    )


class TestUtilizationCheck:
    def test_feasible_passes(self, example2):
        require_feasible_utilization(example2)

    def test_overloaded_raises(self):
        with pytest.raises(ModelError, match="overloaded"):
            require_feasible_utilization(_overloaded())

    def test_exactly_one_allowed(self):
        system = System(
            (Task(period=4.0, subtasks=(Subtask(4.0, "A"),)),)
        )
        require_feasible_utilization(system)


class TestConsecutivePlacement:
    def test_clean_chain(self, monitor):
        assert check_consecutive_placement(monitor) == []

    def test_flags_colocated_consecutive_stages(self):
        task = Task(
            period=10.0,
            subtasks=(
                Subtask(1.0, "A"),
                Subtask(1.0, "A"),
                Subtask(1.0, "B"),
            ),
        )
        offenders = check_consecutive_placement(System((task,)))
        assert offenders == [SubtaskId(0, 0)]

    def test_nonconsecutive_revisit_allowed(self):
        task = Task(
            period=10.0,
            subtasks=(
                Subtask(1.0, "A"),
                Subtask(1.0, "B"),
                Subtask(1.0, "A"),
            ),
        )
        assert check_consecutive_placement(System((task,))) == []


class TestValidateSystem:
    def test_clean_system_ok(self, example2):
        report = validate_system(example2)
        assert report.ok
        assert report.warnings == []
        report.raise_if_failed()

    def test_overload_is_error(self):
        report = validate_system(_overloaded())
        assert not report.ok
        with pytest.raises(ModelError):
            report.raise_if_failed()

    def test_duplicate_priorities_warned(self):
        system = System(
            (
                Task(period=8.0, subtasks=(Subtask(1.0, "A", priority=0),)),
                Task(period=8.0, subtasks=(Subtask(1.0, "A", priority=0),)),
            )
        )
        report = validate_system(system)
        assert report.ok
        assert any("share priority" in w for w in report.warnings)

    def test_colocated_consecutive_warned(self):
        task = Task(
            period=10.0,
            subtasks=(Subtask(1.0, "A", priority=0),
                      Subtask(1.0, "A", priority=1)),
        )
        report = validate_system(System((task,)))
        assert any("share processor" in w for w in report.warnings)

    def test_impossible_deadline_warned(self):
        task = Task(
            period=10.0,
            deadline=2.0,
            subtasks=(Subtask(1.5, "A"), Subtask(1.5, "B")),
        )
        report = validate_system(System((task,)))
        assert any("cannot meet its deadline" in w for w in report.warnings)

    def test_generated_systems_validate(self, small_system):
        report = validate_system(small_system)
        assert report.ok
        # Generator forbids consecutive co-location and duplicates.
        assert not any("share processor" in w for w in report.warnings)
        assert not any("share priority" in w for w in report.warnings)
