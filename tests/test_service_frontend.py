"""The sharded asyncio frontend: routing, backpressure, degradation.

No pytest-asyncio in the toolchain: each test drives its own event
loop with ``asyncio.run``.  Slow/failing computations are staged by
patching ``repro.service.frontend._shard_compute`` (resolved by module
global at call time, so thread executors see the patch).
"""

from __future__ import annotations

import asyncio
import gc
import json
import threading
import time
import warnings

import pytest

import repro.service.frontend as frontend_module
from repro.errors import ConfigurationError
from repro.service.backends import SqliteDecisionCache
from repro.service.engine import compute_decision
from repro.service.frontend import (
    AdmissionFrontend,
    FrontendConfig,
    TenantQuota,
    serve_frontend,
)
from repro.service.requests import (
    AdmissionRequest,
    request_to_dict,
)
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)

_real_shard_compute = frontend_module._shard_compute


def _request(seed: int, request_id: str = "", tenant: str = "") -> AdmissionRequest:
    return AdmissionRequest(
        system=generate_system(LIGHT, seed),
        request_id=request_id or f"r{seed}",
        tenant=tenant,
    )


def _admit_all(config: FrontendConfig, requests, **frontend_kwargs):
    async def run():
        async with AdmissionFrontend(config, **frontend_kwargs) as fe:
            return [await fe.admit(r) for r in requests], fe.snapshot()

    return asyncio.run(run())


class TestDecisions:
    def test_matches_direct_computation(self):
        requests = [_request(seed) for seed in range(4)]
        decisions, _ = _admit_all(FrontendConfig(shards=2), requests)
        assert decisions == [compute_decision(r) for r in requests]

    def test_request_id_is_restored_on_hits(self):
        requests = [_request(1, "a"), _request(1, "b")]
        decisions, snapshot = _admit_all(
            FrontendConfig(shards=1), requests
        )
        assert decisions[0].request_id == "a"
        assert decisions[1].request_id == "b"
        assert decisions[0].key == decisions[1].key
        assert snapshot["aggregate"]["cache_hits"] == 1

    def test_identical_content_lands_on_one_shard(self):
        requests = [_request(3, f"dup{i}") for i in range(6)]
        _, snapshot = _admit_all(
            FrontendConfig(shards=4, cache_backend=None), requests
        )
        active = [
            s for s in snapshot["shards"] if s["requests"] > 0
        ]
        assert len(active) == 1
        assert active[0]["requests"] == 6

    def test_uncached_frontend_still_decides(self):
        requests = [_request(seed) for seed in range(3)]
        decisions, snapshot = _admit_all(
            FrontendConfig(shards=2, cache_backend=None), requests
        )
        assert decisions == [compute_decision(r) for r in requests]
        assert "cache" not in snapshot

    def test_sqlite_backend_through_config(self, tmp_path):
        config = FrontendConfig(
            shards=2,
            cache_backend="sqlite",
            cache_path=tmp_path / "fe.db",
        )
        requests = [_request(1, "a"), _request(1, "b")]
        decisions, snapshot = _admit_all(config, requests)
        assert decisions[0].admitted == decisions[1].admitted
        assert snapshot["cache"]["hits"] >= 1

    def test_shared_cache_instance_warms_across_frontends(self):
        shared = SqliteDecisionCache(capacity=64)
        requests = [_request(seed) for seed in range(3)]
        _admit_all(FrontendConfig(shards=1), requests, cache=shared)
        _, snapshot = _admit_all(
            FrontendConfig(shards=3), requests, cache=shared
        )
        assert snapshot["aggregate"]["cache_hits"] == 3
        shared.close()


class TestBackpressure:
    def test_quota_exhaustion_sheds_explicitly(self):
        config = FrontendConfig(
            shards=1,
            default_quota=TenantQuota(rate=0.001, burst=2),
        )
        requests = [_request(seed) for seed in range(5)]
        decisions, snapshot = _admit_all(config, requests)
        sheds = [
            d
            for d in decisions
            if d.rationale.startswith("service shed:")
        ]
        assert len(sheds) == 3  # burst of 2, negligible refill
        assert all(not d.admitted for d in sheds)
        assert "quota exceeded" in sheds[0].rationale
        assert snapshot["aggregate"]["shed"] == 3
        # Sheds are not served requests.
        assert snapshot["aggregate"]["requests"] == 2

    def test_named_tenant_quota_only_limits_that_tenant(self):
        config = FrontendConfig(
            shards=1,
            tenant_quotas={
                "limited": TenantQuota(rate=0.001, burst=1)
            },
        )
        requests = [
            _request(seed, f"lim{seed}", tenant="limited")
            for seed in range(3)
        ] + [
            _request(seed, f"free{seed}", tenant="other")
            for seed in range(3)
        ]
        decisions, _ = _admit_all(config, requests)
        limited = [d for d in decisions if d.request_id.startswith("lim")]
        free = [d for d in decisions if d.request_id.startswith("free")]
        assert (
            sum(
                1
                for d in limited
                if d.rationale.startswith("service shed:")
            )
            == 2
        )
        assert all(
            not d.rationale.startswith("service shed:") for d in free
        )

    def test_full_queue_sheds_with_shard_attribution(self, monkeypatch):
        release = None

        def stalling(payload):
            release.wait()
            return _real_shard_compute(payload)

        monkeypatch.setattr(
            frontend_module, "_shard_compute", stalling
        )

        async def run():
            nonlocal release
            import threading

            release = threading.Event()
            config = FrontendConfig(
                shards=1, queue_capacity=2, cache_backend=None
            )
            async with AdmissionFrontend(config) as fe:
                # Stall the worker on one request, then fill the queue
                # to capacity; the next arrival must shed.
                first = asyncio.ensure_future(fe.admit(_request(0)))
                for _ in range(200):  # until the worker dequeued it
                    await asyncio.sleep(0.005)
                    if fe.queue_depths() == [0]:
                        break
                fillers = [
                    asyncio.ensure_future(fe.admit(_request(seed)))
                    for seed in (1, 2)
                ]
                await asyncio.sleep(0.05)
                assert fe.queue_depths() == [2]
                shed = await fe.admit(_request(99))
                release.set()
                served = await asyncio.gather(first, *fillers)
                return shed, served, fe.metrics.snapshot()

        shed, served, snapshot = asyncio.run(run())
        assert shed.rationale.startswith("service shed:")
        assert "shard 0 queue full" in shed.rationale
        assert all(
            not d.rationale.startswith("service shed:") for d in served
        )
        assert snapshot["shed"] == 1

    def test_sheds_are_never_cached(self):
        config = FrontendConfig(
            shards=1, default_quota=TenantQuota(rate=0.001, burst=1)
        )

        async def run():
            async with AdmissionFrontend(config) as fe:
                first = await fe.admit(_request(1, "a"))
                shed = await fe.admit(_request(2, "b"))
                return first, shed, len(fe.cache)

        first, shed, cached = asyncio.run(run())
        assert not first.rationale.startswith("service shed:")
        assert shed.rationale.startswith("service shed:")
        assert cached == 1  # only the served decision


class TestDegradation:
    def test_failing_compute_degrades_after_ladder(self, monkeypatch):
        calls = []

        def always_raises(payload):
            calls.append(payload[0])
            raise RuntimeError("staged analysis crash")

        monkeypatch.setattr(
            frontend_module, "_shard_compute", always_raises
        )
        config = FrontendConfig(
            shards=1, max_retries=2, retry_backoff=0.0
        )
        decisions, snapshot = _admit_all(config, [_request(1)])
        assert decisions[0].rationale.startswith("service degraded:")
        assert "staged analysis crash" in decisions[0].rationale
        assert len(calls) == 3  # initial + 2 retries
        assert snapshot["aggregate"]["retries"] == 2
        assert snapshot["aggregate"]["degraded"] == 1

    def test_degraded_decisions_are_not_cached(self, monkeypatch):
        def always_raises(payload):
            raise RuntimeError("nope")

        monkeypatch.setattr(
            frontend_module, "_shard_compute", always_raises
        )

        async def run():
            config = FrontendConfig(
                shards=1, max_retries=0, retry_backoff=0.0
            )
            async with AdmissionFrontend(config) as fe:
                decision = await fe.admit(_request(1))
                return decision, len(fe.cache)

        decision, cached = asyncio.run(run())
        assert decision.rationale.startswith("service degraded:")
        assert cached == 0

    def test_timeout_degrades_that_request_only(self, monkeypatch):
        def slow_for_r0(payload):
            key, request = payload
            if request.request_id == "r0":
                time.sleep(2.0)
            return _real_shard_compute(payload)

        monkeypatch.setattr(
            frontend_module, "_shard_compute", slow_for_r0
        )
        config = FrontendConfig(
            shards=1,
            workers_per_shard=2,
            job_timeout=0.3,
            max_retries=0,
        )
        decisions, snapshot = _admit_all(
            config, [_request(seed) for seed in range(3)]
        )
        by_id = {d.request_id: d for d in decisions}
        assert by_id["r0"].rationale.startswith("service degraded:")
        assert "timed out" in by_id["r0"].rationale
        for rid in ("r1", "r2"):
            assert not by_id[rid].rationale.startswith(
                "service degraded:"
            )
        assert snapshot["aggregate"]["timeouts"] == 1


class TestLifecycleAndValidation:
    def test_admit_before_start_is_an_error(self):
        frontend = AdmissionFrontend(FrontendConfig())
        with pytest.raises(ConfigurationError):
            asyncio.run(frontend.admit(_request(1)))

    def test_double_start_is_an_error(self):
        async def run():
            frontend = AdmissionFrontend(FrontendConfig())
            await frontend.start()
            try:
                with pytest.raises(ConfigurationError):
                    await frontend.start()
            finally:
                await frontend.stop()

        asyncio.run(run())

    def test_stop_drains_pending_work(self):
        async def run():
            config = FrontendConfig(shards=2)
            frontend = AdmissionFrontend(config)
            await frontend.start()
            pending = [
                asyncio.ensure_future(frontend.admit(_request(seed)))
                for seed in range(6)
            ]
            await asyncio.sleep(0)  # let every admit reach its queue
            await frontend.stop()
            return await asyncio.gather(*pending)

        decisions = asyncio.run(run())
        assert len(decisions) == 6
        assert all(d is not None for d in decisions)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"queue_capacity": 0},
            {"executor": "fiber"},
            {"workers_per_shard": 0},
            {"cache_backend": "redis"},
            {"job_timeout": 0.0},
            {"max_retries": -1},
            {"retry_backoff": -0.1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FrontendConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [{"rate": 0.0}, {"rate": -1.0}, {"rate": 1.0, "burst": 0.0}],
    )
    def test_bad_quota_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantQuota(**{"burst": 8.0, **kwargs})


class TestSupervision:
    def test_breaker_opens_and_reroutes(self, monkeypatch):
        def crash_on_shard_zero(payload):
            if threading.current_thread().name.startswith(
                "repro-shard-0_"
            ):
                raise RuntimeError("injected shard fault")
            return _real_shard_compute(payload)

        monkeypatch.setattr(
            frontend_module, "_shard_compute", crash_on_shard_zero
        )
        config = FrontendConfig(
            shards=3,
            cache_backend=None,
            max_retries=0,
            breaker_failures=2,
            breaker_recovery=60.0,  # stays open for the whole test
        )
        requests = [_request(seed, f"s{seed}") for seed in range(24)]
        decisions, snapshot = _admit_all(config, requests)
        aggregate = snapshot["aggregate"]
        assert aggregate["breaker_opens"] >= 1
        assert aggregate["rerouted"] >= 1
        # Exactly the pre-trip shard-0 computations degraded; every
        # rerouted request was served normally by a healthy shard.
        degraded = [
            d
            for d in decisions
            if d.rationale.startswith("service degraded:")
        ]
        assert len(degraded) == config.breaker_failures
        assert (
            snapshot["breakers"][0]["state"] == "open"
        )

    def test_half_open_probe_restores_the_shard(self, monkeypatch):
        armed = {"on": True}

        def crash_while_armed(payload):
            if armed["on"] and threading.current_thread().name.startswith(
                "repro-shard-0_"
            ):
                raise RuntimeError("injected shard fault")
            return _real_shard_compute(payload)

        monkeypatch.setattr(
            frontend_module, "_shard_compute", crash_while_armed
        )
        config = FrontendConfig(
            shards=2,
            cache_backend=None,
            max_retries=0,
            breaker_failures=1,
            breaker_recovery=0.05,
        )

        async def run():
            async with AdmissionFrontend(config) as fe:
                ring = fe.ring
                shard0 = [
                    r
                    for r in (
                        _request(seed, f"p{seed}") for seed in range(40)
                    )
                    if ring.shard_for(
                        frontend_module.request_key(r)
                    ) == 0
                ]
                assert len(shard0) >= 2
                await fe.admit(shard0[0])  # degrades, opens breaker
                assert fe._shards[0].breaker.state == "open"
                armed["on"] = False
                await asyncio.sleep(0.08)  # past the cooldown
                probe = await fe.admit(shard0[1])
                assert not probe.rationale.startswith(
                    "service degraded:"
                )
                return (
                    fe._shards[0].breaker.state,
                    fe.metrics.snapshot(),
                )

        state, aggregate = asyncio.run(run())
        assert state == "closed"
        assert aggregate["breaker_half_opens"] >= 1
        assert aggregate["breaker_restores"] >= 1

    def test_all_open_falls_back_to_primary(self):
        # Liveness: supervision is advisory -- with every breaker open
        # the primary still takes the request rather than refusing all.
        config = FrontendConfig(
            shards=2,
            cache_backend=None,
            breaker_failures=1,
            breaker_recovery=60.0,
        )

        async def run():
            async with AdmissionFrontend(config) as fe:
                for shard in fe._shards:
                    shard.breaker.record_failure()
                assert all(
                    s.breaker.state == "open" for s in fe._shards
                )
                return await fe.admit(_request(5))

        decision = asyncio.run(run())
        assert decision == compute_decision(_request(5))

    def test_supervision_disabled_with_zero_failures(self):
        _, snapshot = _admit_all(
            FrontendConfig(shards=2, breaker_failures=0), [_request(1)]
        )
        assert snapshot["breakers"] == [None, None]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"breaker_failures": -1},
            {"breaker_recovery": 0.0},
            {"breaker_probes": 0},
            {"drain": "hang-up"},
            {"fsync": "sometimes"},
        ],
    )
    def test_bad_supervision_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FrontendConfig(**kwargs)


class TestDrainAndTeardown:
    def test_shed_drain_resolves_queued_jobs(self):
        async def run():
            config = FrontendConfig(shards=1, drain="shed")
            frontend = AdmissionFrontend(config)
            await frontend.start()
            pending = [
                asyncio.ensure_future(frontend.admit(_request(seed)))
                for seed in range(6)
            ]
            await asyncio.sleep(0)  # let every admit reach its queue
            await frontend.stop()
            decisions = await asyncio.gather(*pending)
            return decisions, frontend.metrics.snapshot()

        decisions, aggregate = asyncio.run(run())
        assert len(decisions) == 6
        shed = [
            d
            for d in decisions
            if d.rationale.startswith("service shed:")
        ]
        # At least the never-dequeued tail was shed, and explicitly so.
        assert shed
        assert all("drain" in d.rationale for d in shed)
        assert aggregate["drain_shed"] == len(shed)
        assert aggregate["shed"] == len(shed)

    def test_flush_drain_counts_flushed_jobs(self):
        async def run():
            frontend = AdmissionFrontend(FrontendConfig(shards=1))
            await frontend.start()
            pending = [
                asyncio.ensure_future(frontend.admit(_request(seed)))
                for seed in range(4)
            ]
            await asyncio.sleep(0)
            await frontend.stop(drain="flush")
            decisions = await asyncio.gather(*pending)
            return decisions, frontend.metrics.snapshot()

        decisions, aggregate = asyncio.run(run())
        assert all(
            not d.rationale.startswith("service shed:")
            for d in decisions
        )
        assert aggregate["drain_flushed"] >= 1
        assert aggregate["drain_shed"] == 0

    def test_stop_rejects_unknown_drain_mode(self):
        async def run():
            frontend = AdmissionFrontend(FrontendConfig())
            await frontend.start()
            try:
                with pytest.raises(ConfigurationError, match="drain"):
                    await frontend.stop(drain="hang-up")
            finally:
                await frontend.stop()

        asyncio.run(run())

    def test_owned_sqlite_backend_closed_after_exception(self, tmp_path):
        """Satellite regression: no locked WAL, no leaked handle,
        even when the context body raises."""
        db = tmp_path / "cache.sqlite"
        config = FrontendConfig(
            shards=1, cache_backend="sqlite", cache_path=db
        )

        async def run():
            async with AdmissionFrontend(config) as fe:
                await fe.admit(_request(1))
                raise RuntimeError("boom")

        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            with pytest.raises(RuntimeError, match="boom"):
                asyncio.run(run())
            gc.collect()
        # The database is immediately writable by a fresh connection:
        # a still-open WAL handle would block this.
        fresh = SqliteDecisionCache(capacity=8, db_path=db)
        try:
            assert len(fresh) == 1  # the decision survived the crash
            decision = compute_decision(_request(2))
            fresh.put(decision.key, decision)
            assert len(fresh) == 2
        finally:
            fresh.close()

    def test_owned_memory_cache_flushed_on_stop(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        config = FrontendConfig(
            shards=1, cache_backend="memory", cache_path=path
        )
        _admit_all(config, [_request(1)])
        assert path.exists()  # stop() snapshotted the owned cache

    def test_caller_passed_cache_is_not_closed(self, tmp_path):
        db = tmp_path / "shared.sqlite"
        shared = SqliteDecisionCache(capacity=8, db_path=db)
        try:
            _admit_all(
                FrontendConfig(shards=1), [_request(1)], cache=shared
            )
            # Still usable: the frontend must not close what it was
            # handed (the caller owns its lifetime).
            decision = compute_decision(_request(2))
            shared.put(decision.key, decision)
            assert len(shared) == 2
        finally:
            shared.close()

    def test_admit_after_stop_raises(self):
        async def run():
            frontend = AdmissionFrontend(FrontendConfig())
            await frontend.start()
            await frontend.stop()
            with pytest.raises(ConfigurationError, match="not started"):
                await frontend.admit(_request(1))

        asyncio.run(run())


class TestObservability:
    def test_describe_includes_every_shard(self):
        requests = [_request(seed) for seed in range(4)]

        async def run():
            async with AdmissionFrontend(
                FrontendConfig(shards=3)
            ) as fe:
                for request in requests:
                    await fe.admit(request)
                return fe.describe(), fe.queue_depths()

        description, depths = asyncio.run(run())
        for index in range(3):
            assert f"shard {index}:" in description
        assert depths == [0, 0, 0]

    def test_snapshot_shape(self):
        decisions, snapshot = _admit_all(
            FrontendConfig(shards=2), [_request(1)]
        )
        assert set(snapshot) == {
            "aggregate",
            "shards",
            "queue_depths",
            "cache",
            "breakers",
        }
        assert len(snapshot["shards"]) == 2
        assert len(snapshot["breakers"]) == 2
        assert "latency_p999" in snapshot["aggregate"]


class TestTcpServer:
    def test_round_trip_and_error_lines(self):
        async def run():
            async with AdmissionFrontend(
                FrontendConfig(shards=2)
            ) as fe:
                server = await serve_frontend(fe, port=0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                request = _request(1, "tcp-1")
                writer.write(
                    (json.dumps(request_to_dict(request)) + "\n").encode()
                )
                writer.write(b"this is not json\n")
                writer.write(b"\n")  # blank lines are skipped
                writer.write(
                    (json.dumps(request_to_dict(request)) + "\n").encode()
                )
                await writer.drain()
                lines = [await reader.readline() for _ in range(3)]
                writer.close()
                server.close()
                await server.wait_closed()
                return [json.loads(line) for line in lines]

        decision_doc, error_doc, second_doc = asyncio.run(run())
        assert decision_doc["request_id"] == "tcp-1"
        assert decision_doc["admitted"] == compute_decision(
            _request(1, "tcp-1")
        ).admitted
        assert "error" in error_doc
        assert second_doc["key"] == decision_doc["key"]
