"""Unit tests for the fixed-priority preemptive scheduler.

These exercise single-processor scheduling semantics through the kernel
with the DS protocol (which adds no release shaping on one-stage tasks).
"""

from __future__ import annotations

import pytest

from repro.core.protocols.direct import DirectSynchronization
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task
from repro.sim.engine import Kernel


def _run(system: System, horizon: float):
    kernel = Kernel(
        system, DirectSynchronization(), horizon, record_segments=True
    )
    return kernel.run()


class TestPreemption:
    def test_high_priority_preempts_immediately(self):
        low = Task(period=20.0, subtasks=(Subtask(6.0, "A", priority=1),))
        high = Task(
            period=20.0, phase=2.0, subtasks=(Subtask(2.0, "A", priority=0),)
        )
        trace = _run(System((low, high)), 19.0)
        # Low runs 0-2, preempted, high runs 2-4, low resumes 4-8.
        assert trace.completion_time(SubtaskId(1, 0), 0) == pytest.approx(4.0)
        assert trace.completion_time(SubtaskId(0, 0), 0) == pytest.approx(8.0)
        segments = trace.segments_on("A")
        assert [(s.start, s.end) for s in segments] == [
            (0.0, 2.0),
            (2.0, 4.0),
            (4.0, 8.0),
        ]

    def test_equal_priority_does_not_preempt(self):
        first = Task(period=20.0, subtasks=(Subtask(5.0, "A", priority=0),))
        second = Task(
            period=20.0, phase=1.0, subtasks=(Subtask(2.0, "A", priority=0),)
        )
        trace = _run(System((first, second)), 19.0)
        assert trace.completion_time(SubtaskId(0, 0), 0) == pytest.approx(5.0)
        assert trace.completion_time(SubtaskId(1, 0), 0) == pytest.approx(7.0)

    def test_lower_priority_waits(self):
        high = Task(period=10.0, subtasks=(Subtask(3.0, "A", priority=0),))
        low = Task(period=10.0, subtasks=(Subtask(2.0, "A", priority=1),))
        trace = _run(System((high, low)), 9.0)
        assert trace.completion_time(SubtaskId(1, 0), 0) == pytest.approx(5.0)

    def test_preemption_resumes_with_remaining_time(self):
        low = Task(period=30.0, subtasks=(Subtask(10.0, "A", priority=2),))
        mid = Task(
            period=30.0, phase=3.0, subtasks=(Subtask(4.0, "A", priority=1),)
        )
        high = Task(
            period=30.0, phase=5.0, subtasks=(Subtask(1.0, "A", priority=0),)
        )
        trace = _run(System((low, mid, high)), 29.0)
        # low 0-3, mid 3-5, high 5-6, mid 6-8, low 8-15.
        assert trace.completion_time(SubtaskId(2, 0), 0) == pytest.approx(6.0)
        assert trace.completion_time(SubtaskId(1, 0), 0) == pytest.approx(8.0)
        assert trace.completion_time(SubtaskId(0, 0), 0) == pytest.approx(15.0)

    def test_release_at_exact_completion_instant_no_preemption_glitch(self):
        # Running instance completes exactly when a higher-priority one is
        # released: the completion must win, no zero-length preemption.
        low = Task(period=20.0, subtasks=(Subtask(4.0, "A", priority=1),))
        high = Task(
            period=20.0, phase=4.0, subtasks=(Subtask(2.0, "A", priority=0),)
        )
        trace = _run(System((low, high)), 19.0)
        assert trace.completion_time(SubtaskId(0, 0), 0) == pytest.approx(4.0)
        assert trace.completion_time(SubtaskId(1, 0), 0) == pytest.approx(6.0)
        assert trace.violations == []


class TestFifoWithinPriority:
    def test_same_subtask_instances_run_in_release_order(self):
        # Backlogged task: two releases queue up; they must finish in order.
        task = Task(period=3.0, subtasks=(Subtask(2.0, "A", priority=1),))
        blocker = Task(
            period=100.0, subtasks=(Subtask(5.0, "A", priority=0),)
        )
        trace = _run(System((task, blocker)), 20.0)
        c0 = trace.completion_time(SubtaskId(0, 0), 0)
        c1 = trace.completion_time(SubtaskId(0, 0), 1)
        assert c0 < c1
        # blocker runs 0-5, then the two queued instances: 5-7 and 7-9.
        assert c0 == pytest.approx(7.0)
        assert c1 == pytest.approx(9.0)


class TestSegments:
    def test_segments_cover_execution_time(self):
        low = Task(period=30.0, subtasks=(Subtask(10.0, "A", priority=1),))
        high = Task(
            period=7.0, phase=1.0, subtasks=(Subtask(2.0, "A", priority=0),)
        )
        trace = _run(System((low, high)), 29.0)
        total = sum(
            seg.length
            for seg in trace.segments
            if seg.sid == SubtaskId(0, 0) and seg.instance == 0
        )
        assert total == pytest.approx(10.0)

    def test_segments_never_overlap_on_processor(self, example2):
        from repro.api import run_protocol

        result = run_protocol(example2, "DS", horizon=60.0, record_segments=True)
        for processor in example2.processors:
            segments = result.trace.segments_on(processor)
            for earlier, later in zip(segments, segments[1:]):
                assert earlier.end <= later.start + 1e-9

    def test_busy_processor_has_no_gaps_while_backlogged(self):
        t1 = Task(period=10.0, subtasks=(Subtask(5.0, "A", priority=0),))
        t2 = Task(period=10.0, subtasks=(Subtask(3.0, "A", priority=1),))
        trace = _run(System((t1, t2)), 9.0)
        segments = trace.segments_on("A")
        assert segments[0].start == 0.0
        for earlier, later in zip(segments, segments[1:]):
            assert later.start == pytest.approx(earlier.end)
