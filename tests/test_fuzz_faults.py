"""Tests for the fuzzer's fault environment dimension."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultConfig
from repro.fuzz.campaign import FAULT_ROTATIONS, fuzz_one, run_campaign
from repro.fuzz.oracles import check_case
from repro.fuzz.runner import build_case
from repro.fuzz.skew import DEFAULT_SKEW_CONFIG
from repro.workload.generator import generate_system

RECOVERED_SIGNALS = FaultConfig(
    drop_rate=0.15,
    duplicate_rate=0.1,
    watchdog=True,
    suppress_duplicates=True,
)


@pytest.fixture(scope="module")
def system():
    return generate_system(DEFAULT_SKEW_CONFIG, seed=1)


class TestBuildCaseEnvironment:
    def test_null_fault_config_case(self, system):
        case = build_case(system, faults=FaultConfig())
        assert case.faults_null
        assert case.ideal  # recovery knobs alone leave the case ideal
        failures, checked = check_case(case)
        assert not failures
        assert "fault-free-identity" in checked

    def test_recovered_signal_faults_keep_precedence_checkable(
        self, system
    ):
        case = build_case(system, faults=RECOVERED_SIGNALS)
        assert not case.faults_null
        assert not case.ideal
        failures, checked = check_case(case)
        assert not failures
        assert "rg-recovery-soundness" in checked
        assert "precedence" in checked
        # Ideal-conditions analyses say nothing about a faulty run.
        assert "sa-ds-soundness" not in checked
        assert "pm-mpm-identity" not in checked
        assert "fault-free-identity" not in checked

    def test_unrecovered_faults_gate_precedence_out(self, system):
        case = build_case(
            system, faults=FaultConfig(drop_rate=0.3, seed=4)
        )
        failures, checked = check_case(case)
        assert "precedence" not in checked
        # Structural invariants still apply no matter the chaos.
        assert "trace-invariants" in checked
        assert not failures

    def test_label_carries_the_fault_config(self, system):
        case = build_case(system, faults=RECOVERED_SIGNALS)
        assert "drop(0.15)" in case.label
        assert "wd" in case.label


class TestCampaignRotation:
    def test_chaos_rotation_runs_clean(self):
        report = run_campaign(
            runs=5,
            base_seed=0,
            workers=1,
            faults="chaos",
            shrink=False,
        )
        assert report.ok
        assert report.runs == 5

    def test_unknown_rotation_name_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(runs=1, workers=1, faults="no-such-rotation")

    def test_empty_rotation_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(runs=1, workers=1, faults=())

    def test_chaos_rotation_contents(self):
        rotation = FAULT_ROTATIONS["chaos"]
        # The rotation must include a no-plumbing case, an explicitly
        # null config (the identity oracle's food), a signal-fault
        # config with full recovery (the recovery oracle's food) and at
        # least one timer fault.
        assert None in rotation
        assert any(f is not None and f.is_null for f in rotation)
        assert any(
            f is not None
            and f.signal_faults_only
            and f.full_signal_recovery
            for f in rotation
        )
        assert any(
            f is not None and f.timer_loss_rate > 0 for f in rotation
        )

    def test_fuzz_one_substitutes_the_case_seed(self):
        outcome = fuzz_one(
            DEFAULT_SKEW_CONFIG,
            9,
            faults=FaultConfig(drop_rate=0.2, seed=0),
        )
        assert outcome.faults is not None
        assert outcome.faults.seed == 9
        assert "drop(0.2)" in outcome.environment_label
