"""Unit tests for canonical admission-request hashing."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.model.system import System
from repro.model.task import Subtask, Task
from repro.service.hashing import canonical_payload, request_key, system_key
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system


def _pipeline(name: str = "pipeline") -> System:
    return System(
        (
            Task(
                period=10.0,
                subtasks=(
                    Subtask(2.0, "P1", priority=0),
                    Subtask(3.0, "P2", priority=0),
                ),
                name="pipe",
            ),
        ),
        name=name,
    )


class TestRequestKey:
    def test_equal_content_equal_key(self):
        a = AdmissionRequest(system=_pipeline())
        b = AdmissionRequest(system=_pipeline())
        assert a.system is not b.system
        assert request_key(a) == request_key(b)

    def test_key_is_hex_sha256(self):
        key = request_key(AdmissionRequest(system=_pipeline()))
        assert len(key) == 64
        int(key, 16)

    def test_request_id_excluded(self):
        a = AdmissionRequest(system=_pipeline(), request_id="alpha")
        b = AdmissionRequest(system=_pipeline(), request_id="beta")
        assert request_key(a) == request_key(b)

    def test_execution_time_changes_key(self):
        base = _pipeline()
        tweaked = System(
            (
                base.tasks[0].with_subtasks(
                    (
                        Subtask(2.0, "P1", priority=0),
                        Subtask(3.0000001, "P2", priority=0),
                    )
                ),
            ),
            name=base.name,
        )
        assert system_key(base) != system_key(tweaked)

    def test_options_change_key(self):
        system = _pipeline()
        assert system_key(system) != system_key(system, jitter_sensitive=True)
        assert system_key(system) != system_key(system, protocols=("DS",))
        assert system_key(system) != system_key(
            system, sa_ds_max_iterations=10
        )

    def test_protocol_order_is_canonicalized(self):
        system = _pipeline()
        assert system_key(system, protocols=("RG", "DS")) == system_key(
            system, protocols=("DS", "RG")
        )

    def test_name_is_content(self):
        assert system_key(_pipeline("a")) != system_key(_pipeline("b"))

    def test_clock_fields_change_key(self):
        base = AdmissionRequest(system=_pipeline())
        variants = (
            AdmissionRequest(system=_pipeline(), synchronized_clocks=False),
            AdmissionRequest(system=_pipeline(), clock_rate_bound=1e-4),
            AdmissionRequest(system=_pipeline(), clock_jump_bound=1.0),
        )
        keys = {request_key(base)} | {request_key(v) for v in variants}
        assert len(keys) == 4  # all distinct

    def test_payload_version_tag_is_v2(self):
        # v2 added the clock fields; stale persisted v1 caches must miss.
        payload = canonical_payload(AdmissionRequest(system=_pipeline()))
        assert payload["format"] == "repro-admission-key-v2"
        assert "synchronized_clocks" in payload
        assert "clock_rate_bound" in payload
        assert "clock_jump_bound" in payload

    def test_payload_has_no_request_id(self):
        payload = canonical_payload(
            AdmissionRequest(system=_pipeline(), request_id="x")
        )
        assert "request_id" not in payload

    def test_stable_across_processes(self):
        """sha256 over canonical JSON must not depend on hash salting."""
        config = WorkloadConfig(
            subtasks_per_task=3, utilization=0.6, tasks=4, processors=3
        )
        here = system_key(generate_system(config, seed=7))
        script = (
            "from repro.service.hashing import system_key\n"
            "from repro.workload.config import WorkloadConfig\n"
            "from repro.workload.generator import generate_system\n"
            "config = WorkloadConfig(subtasks_per_task=3, utilization=0.6,"
            " tasks=4, processors=3)\n"
            "print(system_key(generate_system(config, seed=7)))\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"
        there = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.strip()
        assert there == here
