"""Unit tests for service metrics (counters, percentiles)."""

from __future__ import annotations

import threading

import pytest

from repro.service.metrics import ServiceMetrics, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([3.0], 0.5) == 3.0
        assert percentile([3.0], 0.99) == 3.0

    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.90) == 90.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile(samples, 1.00) == 100.0

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestServiceMetrics:
    def test_counters(self):
        metrics = ServiceMetrics()
        metrics.record(admitted=True, cache_hit=False, latency=0.5)
        metrics.record(admitted=False, cache_hit=True, latency=0.1)
        snap = metrics.snapshot()
        assert snap["requests"] == 2
        assert snap["admitted"] == 1
        assert snap["rejected"] == 1
        assert snap["cache_hits"] == 1
        assert snap["cache_misses"] == 1
        assert snap["hit_rate"] == pytest.approx(0.5)

    def test_latency_stats(self):
        metrics = ServiceMetrics()
        for ms in (1.0, 2.0, 3.0, 4.0):
            metrics.record(admitted=True, cache_hit=False, latency=ms)
        snap = metrics.snapshot()
        assert snap["latency_p50"] == 2.0
        assert snap["latency_max"] == 4.0
        assert snap["latency_mean"] == pytest.approx(2.5)

    def test_empty_snapshot_renders(self):
        snap = ServiceMetrics().snapshot()
        assert snap["requests"] == 0
        assert snap["hit_rate"] == 0.0
        assert snap["latency_p99"] == 0.0
        assert "admissions: 0 requests" in ServiceMetrics().describe()

    def test_reservoir_is_bounded(self):
        metrics = ServiceMetrics(reservoir=8)
        for i in range(100):
            metrics.record(
                admitted=True, cache_hit=False, latency=float(i)
            )
        snap = metrics.snapshot()
        assert snap["requests"] == 100
        assert snap["latency_max"] <= 99.0

    def test_reservoir_validation(self):
        with pytest.raises(ValueError):
            ServiceMetrics(reservoir=0)

    def test_thread_safe_recording(self):
        metrics = ServiceMetrics()

        def worker() -> None:
            for _ in range(500):
                metrics.record(
                    admitted=True, cache_hit=True, latency=0.001
                )

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.snapshot()["requests"] == 2000

    def test_describe_mentions_latency_units(self):
        metrics = ServiceMetrics()
        metrics.record(admitted=True, cache_hit=False, latency=0.002)
        assert "ms" in metrics.describe()


class TestServiceCounters:
    """The frontend-era counters: shed, coalesced, pool rebuilds, p999."""

    def test_shed_is_not_a_served_request(self):
        metrics = ServiceMetrics()
        metrics.record(admitted=True, cache_hit=False, latency=0.001)
        metrics.record_shed()
        metrics.record_shed()
        snap = metrics.snapshot()
        assert snap["requests"] == 1
        assert snap["shed"] == 2

    def test_coalesced_and_pool_rebuild_counters(self):
        metrics = ServiceMetrics()
        metrics.record_coalesced()
        metrics.record_pool_rebuild()
        snap = metrics.snapshot()
        assert snap["coalesced"] == 1
        assert snap["pool_rebuilds"] == 1

    def test_p999_present_and_ordered(self):
        metrics = ServiceMetrics()
        for i in range(1000):
            metrics.record(
                admitted=True, cache_hit=False, latency=i / 1000.0
            )
        snap = metrics.snapshot()
        assert (
            snap["latency_p50"]
            <= snap["latency_p99"]
            <= snap["latency_p999"]
            <= snap["latency_max"]
        )
        assert "p999" in metrics.describe()

    def test_describe_backpressure_line_only_when_active(self):
        quiet = ServiceMetrics()
        quiet.record(admitted=True, cache_hit=False, latency=0.001)
        assert "backpressure" not in quiet.describe()
        busy = ServiceMetrics()
        busy.record_shed()
        assert "backpressure: 1 shed" in busy.describe()

    def test_describe_robustness_line_includes_rebuilds(self):
        metrics = ServiceMetrics()
        metrics.record_pool_rebuild()
        assert "1 pool rebuild(s)" in metrics.describe()
