"""Unit tests for the Phase Modification protocol."""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.core.protocols.factory import pm_bounds_for
from repro.core.protocols.phase_modification import (
    PhaseModification,
    compute_modified_phases,
)
from repro.errors import ConfigurationError
from repro.model.task import SubtaskId
from repro.sim.simulator import simulate
from repro.sim.variation import UniformReleaseJitter


class TestPhaseComputation:
    def test_phases_accumulate_bounds(self, example2):
        bounds = pm_bounds_for(example2)
        phases = compute_modified_phases(example2, bounds)
        assert phases[SubtaskId(1, 0)] == pytest.approx(0.0)
        # f_2,2 = f_2 + R_2,1 = 0 + 4 (Figure 5).
        assert phases[SubtaskId(1, 1)] == pytest.approx(4.0)

    def test_first_subtask_phase_is_task_phase(self, example2):
        phases = compute_modified_phases(example2, pm_bounds_for(example2))
        assert phases[SubtaskId(2, 0)] == pytest.approx(4.0)  # T3's phase

    def test_monitor_chain_phases(self, monitor):
        bounds = pm_bounds_for(monitor)
        phases = compute_modified_phases(monitor, bounds)
        task = monitor.tasks[0]
        # No interference: R_1,j = e_1,j, so phases are partial sums.
        assert phases[SubtaskId(0, 1)] == pytest.approx(
            task.subtasks[0].execution_time
        )
        assert phases[SubtaskId(0, 2)] == pytest.approx(
            task.subtasks[0].execution_time + task.subtasks[1].execution_time
        )

    def test_missing_bound_rejected(self, example2):
        with pytest.raises(ConfigurationError, match="needs a response-time"):
            compute_modified_phases(example2, {})

    def test_infinite_bound_rejected(self, example2):
        bounds = dict(pm_bounds_for(example2))
        bounds[SubtaskId(1, 0)] = float("inf")
        with pytest.raises(ConfigurationError, match="finite"):
            compute_modified_phases(example2, bounds)


class TestFigureFive:
    """The PM schedule of Example 2 (Figure 5)."""

    def test_t22_released_strictly_periodically(self, example2):
        result = run_protocol(example2, "PM", horizon=30.0)
        t22 = SubtaskId(1, 1)
        releases = [result.trace.release_time(t22, m) for m in range(4)]
        assert releases == [4.0, 10.0, 16.0, 22.0]

    def test_t3_meets_deadline(self, example2):
        result = run_protocol(example2, "PM", horizon=30.0)
        assert result.metrics.task(2).deadline_misses == 0
        # First instance completes by 9 at the latest (bound 5).
        assert result.trace.eer_time(2, 0) <= 5.0 + 1e-9

    def test_no_precedence_violations(self, example2):
        result = run_protocol(example2, "PM", horizon=60.0)
        assert result.metrics.precedence_violations == 0


class TestPeriodicityInvariant:
    def test_every_subtask_release_is_periodic(self, small_system):
        result = run_protocol(small_system, "PM", horizon_periods=8.0)
        for sid in small_system.subtask_ids:
            period = small_system.period_of(sid)
            releases = sorted(
                time
                for (s, _m), time in result.trace.releases.items()
                if s == sid
            )
            for earlier, later in zip(releases, releases[1:]):
                assert later - earlier == pytest.approx(period)


class TestEerEnvelope:
    def test_eer_between_paper_bounds(self, example2):
        """Paper: PM's EER is between sum(R) - R_last + e_last and sum(R)."""
        bounds = pm_bounds_for(example2)
        result = run_protocol(example2, "PM", horizon=120.0)
        task_index = 1  # T2 is the only multi-stage task
        task = example2.tasks[task_index]
        upper = sum(
            bounds[SubtaskId(task_index, j)] for j in range(task.chain_length)
        )
        lower = (
            sum(
                bounds[SubtaskId(task_index, j)]
                for j in range(task.chain_length - 1)
            )
            + task.subtasks[-1].execution_time
        )
        for m in result.trace.completed_task_instances(task_index):
            eer = result.trace.eer_time(task_index, m)
            assert lower - 1e-9 <= eer <= upper + 1e-9

    def test_output_jitter_bounded_by_last_stage_bound(self, example2):
        bounds = pm_bounds_for(example2)
        result = run_protocol(example2, "PM", horizon=120.0)
        for task_index, task in enumerate(example2.tasks):
            last = SubtaskId(task_index, task.chain_length - 1)
            jitter = result.metrics.task(task_index).output_jitter
            assert jitter <= bounds[last] + 1e-9


class TestDocumentedLimitations:
    def test_release_jitter_breaks_pm(self, example2):
        """Section 3.1: if first releases are not strictly periodic, PM can
        violate precedence -- the timer fires although the predecessor has
        not completed."""
        controller = PhaseModification(pm_bounds_for(example2))
        result = simulate(
            example2,
            controller,
            horizon=240.0,
            jitter_model=UniformReleaseJitter(5.0, seed=9),
        )
        assert result.metrics.precedence_violations > 0

    def test_understated_bounds_break_pm(self, example2):
        """Feeding PM bounds below the true response times produces
        precedence violations."""
        bounds = {sid: 0.5 for sid in example2.subtask_ids}
        result = run_protocol(
            example2, "PM", bounds=bounds, horizon=60.0
        )
        assert result.metrics.precedence_violations > 0
