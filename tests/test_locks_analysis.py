"""Tests for the blocking-aware analyses (`repro.locks.analysis`).

The contract under test, per docs/locking.md: remote-blocking terms
from the agent-demand fixpoint, agent pseudo-task interference, and
suspension-as-jitter deferrals resolved jointly -- with an *exact*
reduction to the base analyses whenever the system declares no critical
sections.
"""

from __future__ import annotations

import math

import pytest

from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.locks import (
    LockingConfig,
    agent_augmented_system,
    analyze_sa_ds_blocking,
    analyze_sa_pm_blocking,
    blocking_terms,
    inject_critical_sections,
)
from repro.locks.analysis import resolved_blocking_terms
from repro.model import CriticalSection, Subtask, SubtaskId, System, Task
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

CONFIG = WorkloadConfig(
    subtasks_per_task=3, utilization=0.5, tasks=4, processors=3
)


def _toy() -> System:
    """Same shape as tests/test_locks_model.py: hand-checkable terms."""
    t1 = Task(
        period=10.0,
        subtasks=(
            Subtask(
                2.0,
                "P1",
                priority=0,
                critical_sections=(CriticalSection("R1", 0.5, 1.0),),
            ),
            Subtask(2.0, "P2", priority=1),
        ),
    )
    t2 = Task(
        period=20.0,
        subtasks=(
            Subtask(
                3.0,
                "P2",
                priority=2,
                critical_sections=(
                    CriticalSection("R1", 1.0, 0.5),
                    CriticalSection("R2", 2.0, 0.5),
                ),
            ),
            Subtask(2.0, "P3", priority=3),
        ),
    )
    return System((t1, t2), name="toy")


def _overloaded() -> System:
    """Two requesters whose agent demand saturates the DPCP host."""
    t1 = Task(
        period=10.0,
        subtasks=(
            Subtask(
                6.0,
                "P1",
                priority=0,
                critical_sections=(CriticalSection("R1", 0.0, 5.0),),
            ),
        ),
    )
    t2 = Task(
        period=10.0,
        subtasks=(
            Subtask(
                6.0,
                "P2",
                priority=1,
                critical_sections=(CriticalSection("R1", 0.0, 5.0),),
            ),
        ),
    )
    return System((t1, t2), name="overloaded")


class TestBlockingTerms:
    def test_dpcp_terms_match_hand_computation(self):
        # DPCP funnels R1 and R2 onto P1.  For T1,1 (section d=1.0) the
        # only other requester is T2,1 with c=1.0, p=20:
        #   W = 1 + (floor(W/20)+1)*1 = 2, so B = W - d = 1.
        # For T2,1 each of its two 0.5-sections sees T1,1 (c=1, p=10):
        #   W = 0.5 + (floor(W/10)+1)*1 = 1.5, contributing 1.0 each.
        terms = blocking_terms(_toy(), LockingConfig("DPCP"))
        assert terms == {SubtaskId(0, 0): 1.0, SubtaskId(1, 0): 2.0}

    def test_dpcp_p_terms_match_hand_computation(self):
        # DPCP-p hosts R1 on P1 (top accessor T1,1) and R2 on P2.  T1,1
        # now waits only for T2,1's R1 agent (c=0.5); T2,1's R2 section
        # has no contender at all.
        terms = blocking_terms(_toy(), LockingConfig("DPCP-p"))
        assert terms == {SubtaskId(0, 0): 0.5, SubtaskId(1, 0): 1.0}

    def test_sectionless_subtasks_absent(self):
        assert SubtaskId(0, 1) not in blocking_terms(_toy())

    def test_sectionless_system_has_no_terms(self):
        assert blocking_terms(generate_system(CONFIG, seed=0)) == {}

    def test_deferral_widens_the_arrival_window(self):
        # A 19-unit suspension jitter on T2,1 lets a second R1 agent
        # arrive inside T1,1's wait: W = 1 + (floor((W+19)/20)+1) = 3.
        terms = blocking_terms(
            _toy(),
            LockingConfig("DPCP"),
            deferral={SubtaskId(1, 0): 19.0},
        )
        assert terms[SubtaskId(0, 0)] == 2.0

    def test_infinite_deferral_poisons_the_term(self):
        terms = blocking_terms(
            _toy(),
            LockingConfig("DPCP"),
            deferral={SubtaskId(1, 0): math.inf},
        )
        assert math.isinf(terms[SubtaskId(0, 0)])
        # The deferred subtask's own term never counts its own jitter.
        assert math.isfinite(terms[SubtaskId(1, 0)])

    def test_saturated_host_yields_infinite_terms(self):
        terms = blocking_terms(_overloaded(), LockingConfig("DPCP"))
        assert all(math.isinf(term) for term in terms.values())

    def test_exact_timebase_agrees_with_float(self):
        float_terms = blocking_terms(_toy(), LockingConfig("DPCP"))
        exact_terms = blocking_terms(
            _toy(), LockingConfig("DPCP"), timebase="exact"
        )
        assert {s: float(t) for s, t in exact_terms.items()} == float_terms


class TestAgentAugmentedSystem:
    def test_one_pseudo_task_per_section(self):
        system = _toy()
        augmented = agent_augmented_system(system, LockingConfig("DPCP"))
        assert len(augmented.tasks) == len(system.tasks) + 3
        assert augmented.name == "toy+agents"

    def test_real_tasks_come_first_unchanged(self):
        system = _toy()
        augmented = agent_augmented_system(system)
        assert augmented.tasks[: len(system.tasks)] == system.tasks

    def test_agents_carry_host_priority_and_owner_period(self):
        system = _toy()
        augmented = agent_augmented_system(system, LockingConfig("DPCP-p"))
        agents = augmented.tasks[len(system.tasks) :]
        assert [t.name for t in agents] == [
            "agent:T1,1:0",
            "agent:T2,1:0",
            "agent:T2,1:1",
        ]
        r2_agent = agents[2].subtasks[0]
        assert r2_agent.processor == "P2"  # DPCP-p hosts R2 at home
        assert r2_agent.execution_time == 0.5
        assert agents[2].period == 20.0
        # Boosted below every normal priority (numerically smaller).
        assert all(
            t.subtasks[0].priority < 0 for t in agents
        )


class TestExactReduction:
    def test_sa_pm_reduces_to_base_on_sectionless_systems(self):
        system = generate_system(CONFIG, seed=2)
        blocking_aware = analyze_sa_pm_blocking(system)
        base = analyze_sa_pm(system)
        assert blocking_aware.algorithm == "SA/PM"
        assert blocking_aware.subtask_bounds == base.subtask_bounds
        assert blocking_aware.task_bounds == base.task_bounds

    def test_sa_ds_reduces_to_base_on_sectionless_systems(self):
        system = generate_system(CONFIG, seed=2)
        blocking_aware = analyze_sa_ds_blocking(system)
        base = analyze_sa_ds(system)
        assert blocking_aware.algorithm == "SA/DS"
        assert blocking_aware.subtask_bounds == base.subtask_bounds
        assert blocking_aware.task_bounds == base.task_bounds

    def test_resolved_terms_empty_on_sectionless_systems(self):
        assert resolved_blocking_terms(generate_system(CONFIG, seed=2)) == {}


class TestBlockingAwareAnalyses:
    @pytest.fixture(scope="class")
    def locked(self):
        system = generate_system(CONFIG, seed=0)
        return inject_critical_sections(
            system, ratio=0.2, resources=2, participation=1.0, seed=0
        )

    @pytest.mark.parametrize("protocol", ["DPCP", "DPCP-p"])
    def test_sa_pm_labels_and_projects_onto_real_system(
        self, locked, protocol
    ):
        result = analyze_sa_pm_blocking(
            locked, locking=LockingConfig(protocol)
        )
        assert result.algorithm == f"SA/PM+{protocol}"
        assert result.system is locked
        assert set(result.subtask_bounds) == set(locked.subtask_ids)
        assert len(result.task_bounds) == len(locked.tasks)

    def test_sa_pm_bounds_dominate_the_blocking_unaware_bounds(self, locked):
        base = analyze_sa_pm(locked)
        aware = analyze_sa_pm_blocking(locked, locking=LockingConfig("DPCP"))
        for sid, bound in base.subtask_bounds.items():
            assert aware.subtask_bounds[sid] >= bound

    def test_sa_ds_bounds_dominate_the_blocking_unaware_bounds(self, locked):
        base = analyze_sa_ds(locked)
        aware = analyze_sa_ds_blocking(locked, locking=LockingConfig("DPCP"))
        assert aware.algorithm == "SA/DS+DPCP"
        for sid, bound in aware.subtask_bounds.items():
            if math.isinf(bound):
                continue
            assert bound >= base.subtask_bounds[sid] - 1e-9

    def test_resolved_terms_dominate_the_zero_deferral_terms(self, locked):
        config = LockingConfig("DPCP")
        plain = blocking_terms(locked, config)
        resolved = resolved_blocking_terms(locked, config)
        assert set(resolved) == set(plain)
        for sid, term in plain.items():
            assert resolved[sid] >= term

    def test_toy_resolved_terms_match_float_and_exact(self):
        config = LockingConfig("DPCP")
        float_terms = resolved_blocking_terms(_toy(), config)
        exact_terms = resolved_blocking_terms(
            _toy(), config, timebase="exact"
        )
        assert set(float_terms) == set(exact_terms)
        for sid, term in float_terms.items():
            assert float(exact_terms[sid]) == pytest.approx(term)

    def test_exact_and_float_bounds_agree_on_the_toy(self):
        float_result = analyze_sa_pm_blocking(
            _toy(), locking=LockingConfig("DPCP")
        )
        exact_result = analyze_sa_pm_blocking(
            _toy(), locking=LockingConfig("DPCP"), timebase="exact"
        )
        for sid, bound in float_result.subtask_bounds.items():
            assert float(exact_result.subtask_bounds[sid]) == pytest.approx(
                bound
            )

    def test_saturated_host_fails_the_resourceful_bounds(self):
        result = analyze_sa_pm_blocking(
            _overloaded(), locking=LockingConfig("DPCP")
        )
        assert result.failed
        assert math.isinf(result.subtask_bounds[SubtaskId(0, 0)])
        assert math.isinf(result.subtask_bounds[SubtaskId(1, 0)])

    def test_default_locking_is_dpcp(self):
        explicit = analyze_sa_pm_blocking(
            _toy(), locking=LockingConfig("DPCP")
        )
        defaulted = analyze_sa_pm_blocking(_toy())
        assert defaulted.algorithm == explicit.algorithm
        assert defaulted.subtask_bounds == explicit.subtask_bounds
