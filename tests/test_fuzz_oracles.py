"""Unit tests for the fuzz oracle registry and case builder."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fuzz import (
    ORACLES,
    CheckedReleaseGuard,
    build_case,
    check_case,
    oracle_names,
)
from repro.fuzz.runner import CASE_PROTOCOLS
from repro.model.system import System
from repro.model.task import Subtask, Task


class TestRegistry:
    def test_every_oracle_documents_its_paper_claim(self):
        for oracle in ORACLES.values():
            assert oracle.reference
            assert oracle.description
            assert oracle.name == oracle.name.lower()

    def test_registry_order_is_stable(self):
        assert oracle_names() == tuple(ORACLES)
        assert "trace-invariants" in oracle_names()
        assert "exhaustive-vs-bounds" in oracle_names()

    def test_unknown_oracle_name_raises(self, example2):
        case = build_case(example2, horizon_periods=3.0)
        with pytest.raises(ConfigurationError, match="unknown oracle"):
            check_case(case, ("no-such-oracle",))


class TestBuildCase:
    def test_example2_runs_all_four_protocols(self, example2):
        case = build_case(example2, horizon_periods=3.0)
        assert set(case.results) == set(CASE_PROTOCOLS)
        assert case.skipped == {}
        assert isinstance(case.controllers["RG"], CheckedReleaseGuard)
        for result in case.results.values():
            assert result.trace.record_segments

    def test_example2_passes_every_applicable_oracle(self, example2):
        case = build_case(example2, horizon_periods=3.0)
        failures, checked = check_case(case)
        assert failures == {}
        # Example 2 has three tasks, so the exhaustive oracle is gated
        # out, but all protocol-relational oracles apply.
        assert "exhaustive-vs-bounds" not in checked
        for name in ("trace-invariants", "sa-pm-soundness",
                     "sa-ds-soundness", "pm-mpm-identity", "rg-guard",
                     "rg-separation", "analysis-dominance"):
            assert name in checked

    def test_exhaustive_oracle_applies_to_tiny_systems(
        self, two_stage_pipeline
    ):
        case = build_case(two_stage_pipeline, horizon_periods=3.0)
        failures, checked = check_case(case)
        assert failures == {}
        assert "exhaustive-vs-bounds" in checked

    def test_overloaded_system_skips_timer_protocols(self):
        # P1 is at 120% utilization: the SA/PM busy period diverges for
        # the non-last subtasks, so PM/MPM cannot place releases.  That
        # must surface as a *skip* with a reason, never as a failure.
        system = System(
            (
                Task(
                    period=10.0,
                    subtasks=(
                        Subtask(6.0, "P1", priority=0),
                        Subtask(1.0, "P2", priority=0),
                    ),
                    name="A",
                ),
                Task(
                    period=10.0,
                    subtasks=(
                        Subtask(6.0, "P1", priority=1),
                        Subtask(1.0, "P2", priority=1),
                    ),
                    name="B",
                ),
            ),
            name="overloaded",
        )
        case = build_case(system, horizon_periods=3.0)
        assert "PM" in case.skipped and "MPM" in case.skipped
        assert "DS" in case.results and "RG" in case.results
        failures, checked = check_case(case)
        assert failures == {}
        assert "pm-mpm-identity" not in checked
        # SA/DS diverged on the overloaded processor, so its bounds are
        # under-converged and the soundness oracle must not apply.
        assert case.sa_ds.failed
        assert "sa-ds-soundness" not in checked

    def test_restricting_oracles_restricts_checks(self, example2):
        case = build_case(example2, horizon_periods=3.0)
        failures, checked = check_case(case, ("rg-separation",))
        assert failures == {}
        assert checked == ("rg-separation",)
