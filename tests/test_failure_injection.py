"""Failure-injection tests: the paper's robustness claims, exercised.

Section 6 flags execution-time variation and release jitter as the open
threats to these protocols.  These tests pin down exactly which protocol
survives which perturbation:

* execution times below WCET: every protocol stays precedence-correct
  and every analysis bound still holds;
* sporadic (late) first releases: DS, MPM and RG survive; PM violates
  precedence (Section 3.1's documented limitation);
* execution overruns beyond the analyzed WCET: completion-triggered
  protocols (DS, RG) still never violate precedence; timer-triggered
  ones (PM, MPM) do.
"""

from __future__ import annotations

import math

import pytest

from repro.api import run_protocol
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.protocols.factory import make_controller
from repro.model.task import SubtaskId
from repro.sim.simulator import simulate
from repro.sim.variation import (
    OverrunInjection,
    TruncatedNormalExecution,
    UniformReleaseJitter,
    UniformScaledExecution,
)
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

CONFIG = WorkloadConfig(
    subtasks_per_task=3, utilization=0.6, tasks=4, processors=3
)


@pytest.fixture(scope="module")
def system():
    return generate_system(CONFIG, seed=7)


class TestExecutionVariationBelowWcet:
    @pytest.mark.parametrize("protocol", ["DS", "PM", "MPM", "RG"])
    def test_no_violations(self, system, protocol):
        controller = make_controller(protocol, system)
        result = simulate(
            system,
            controller,
            horizon_periods=6.0,
            execution_model=UniformScaledExecution(0.3, 1.0, seed=1),
            strict_precedence=True,
        )
        assert result.metrics.precedence_violations == 0

    @pytest.mark.parametrize("protocol", ["PM", "MPM", "RG"])
    def test_sa_pm_bounds_still_hold(self, system, protocol):
        bounds = analyze_sa_pm(system)
        controller = make_controller(protocol, system)
        result = simulate(
            system,
            controller,
            horizon_periods=6.0,
            execution_model=TruncatedNormalExecution(0.6, 0.2, seed=2),
        )
        for i in range(len(system.tasks)):
            observed = result.metrics.task(i).max_eer
            if not math.isnan(observed):
                assert observed <= bounds.task_bounds[i] + 1e-6

    def test_shorter_executions_shorten_average_eer_under_ds(self, system):
        full = run_protocol(system, "DS", horizon_periods=6.0)
        scaled = simulate(
            system,
            make_controller("DS", system),
            horizon_periods=6.0,
            execution_model=UniformScaledExecution(0.3, 0.6, seed=3),
        )
        for i in range(len(system.tasks)):
            assert (
                scaled.metrics.task(i).average_eer
                < full.metrics.task(i).average_eer
            )


class TestSporadicReleases:
    JITTER = UniformReleaseJitter

    @pytest.mark.parametrize("protocol", ["DS", "MPM", "RG"])
    def test_completion_or_relative_timer_protocols_survive(
        self, system, protocol
    ):
        controller = make_controller(protocol, system)
        result = simulate(
            system,
            controller,
            horizon_periods=6.0,
            jitter_model=self.JITTER(200.0, seed=4),
            strict_precedence=True,
        )
        assert result.metrics.precedence_violations == 0

    def test_pm_violates_precedence(self, system):
        controller = make_controller("PM", system)
        result = simulate(
            system,
            controller,
            horizon_periods=6.0,
            jitter_model=self.JITTER(200.0, seed=4),
        )
        assert result.metrics.precedence_violations > 0

    def test_first_releases_keep_minimum_separation(self, system):
        result = simulate(
            system,
            make_controller("DS", system),
            horizon_periods=6.0,
            jitter_model=self.JITTER(500.0, seed=5),
        )
        for task_index, task in enumerate(system.tasks):
            times = [
                time
                for (idx, _m), time in sorted(result.trace.env_releases.items())
                if idx == task_index
            ]
            for earlier, later in zip(times, times[1:]):
                assert later - earlier >= task.period - 1e-9


class TestOverruns:
    def _overrun(self, system) -> OverrunInjection:
        target = SubtaskId(0, 0)
        return OverrunInjection(target, factor=4.0, every=2)

    @pytest.mark.parametrize("protocol", ["DS", "RG"])
    def test_completion_triggered_protocols_never_violate(
        self, system, protocol
    ):
        controller = make_controller(protocol, system)
        result = simulate(
            system,
            controller,
            horizon_periods=6.0,
            execution_model=self._overrun(system),
            strict_precedence=True,
        )
        assert result.metrics.precedence_violations == 0

    @pytest.mark.parametrize("protocol", ["PM", "MPM"])
    def test_timer_triggered_protocols_violate(self, system, protocol):
        controller = make_controller(protocol, system)
        result = simulate(
            system,
            controller,
            horizon_periods=6.0,
            execution_model=self._overrun(system),
        )
        assert result.metrics.precedence_violations > 0

    def test_overruns_can_break_analysis_bounds(self, system):
        """Bounds are only as good as the WCETs: overruns can push
        observed EER past the SA/PM bound (demonstrating why the paper
        assumes execution-time variations are small)."""
        bounds = analyze_sa_pm(system)
        result = simulate(
            system,
            make_controller("RG", system),
            horizon_periods=6.0,
            execution_model=OverrunInjection(
                SubtaskId(0, 0), factor=8.0, every=1
            ),
        )
        exceeded = any(
            not math.isnan(result.metrics.task(i).max_eer)
            and result.metrics.task(i).max_eer > bounds.task_bounds[i] + 1e-9
            for i in range(len(system.tasks))
        )
        assert exceeded
