"""Timebase behaviour through the simulator and the fuzz differential.

Covers the satellite regressions of the exact-timebase change:

* the unified past-timer guard (raise beyond the float window, clamp
  with a trace note inside it, no window at all under exact);
* the deterministic class order at one instant -- completions, timers,
  environment releases, then signals -- including zero-latency signals,
  which now always travel through the queue;
* the float-vs-exact differential checker;
* a Hypothesis property: both backends agree on every observable, and
  under exact arithmetic PM and MPM coincide *identically*.
"""

from __future__ import annotations

import dataclasses
import math
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.protocols.direct import DirectSynchronization
from repro.errors import SimulationError
from repro.fuzz.campaign import PROFILES
from repro.fuzz.differential import compare_backends
from repro.fuzz.runner import build_case
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task
from repro.sim.engine import (
    EVENT_COMPLETION,
    EVENT_ENV,
    EVENT_SIGNAL,
    EVENT_TIMER,
    EventQueue,
    Kernel,
)
from repro.timebase import REL_EPS
from repro.workload.generator import generate_system

_TINY = PROFILES["tiny"][0]


def _kernel(timebase):
    system = System(
        (Task(period=10.0, subtasks=(Subtask(3.0, "P1"),), name="T1"),)
    )
    return Kernel(system, DirectSynchronization(), 2000.0, timebase=timebase)


class TestTimerBoundary:
    """Satellites 1 and 3: one guard, observable clamping."""

    def test_float_timer_far_in_past_raises(self):
        kernel = _kernel("float")
        kernel.now = 1000.0
        with pytest.raises(SimulationError, match="timer scheduled in the past"):
            kernel.schedule_timer(1000.0 - 1e-3, lambda now: None)

    def test_float_timer_inside_window_clamps_and_notes(self):
        kernel = _kernel("float")
        kernel.now = 1000.0
        requested = 1000.0 - REL_EPS * 100  # inside the 1e-6 guard window
        handle = kernel.schedule_timer(requested, lambda now: None)
        assert handle[0] == 1000.0  # clamped to now
        assert kernel.trace.timer_clamps == [(requested, 1000.0)]

    def test_float_timer_at_now_is_clean(self):
        kernel = _kernel("float")
        kernel.now = 1000.0
        kernel.schedule_timer(1000.0, lambda now: None)
        assert kernel.trace.timer_clamps == []

    def test_exact_backend_has_no_window(self):
        kernel = _kernel("exact")
        kernel.now = 1000
        # One part in 10^9 below now: the float backend would clamp this;
        # exact arithmetic has no tolerance window, so it is simply past.
        with pytest.raises(SimulationError, match="timer scheduled in the past"):
            kernel.schedule_timer(1000 - Fraction(1, 10**9), lambda now: None)
        kernel.schedule_timer(1000, lambda now: None)
        assert kernel.trace.timer_clamps == []


class TestSameInstantClassOrder:
    """Satellite 2: one total order at a shared instant, queued signals."""

    def test_queue_orders_by_class_then_fifo(self):
        queue = EventQueue()
        order = []
        queue.push(5.0, EVENT_SIGNAL, lambda now: order.append("signal"))
        queue.push(5.0, EVENT_ENV, lambda now: order.append("env"))
        queue.push(5.0, EVENT_TIMER, lambda now: order.append("timer-a"))
        queue.push(5.0, EVENT_COMPLETION, lambda now: order.append("done"))
        queue.push(5.0, EVENT_TIMER, lambda now: order.append("timer-b"))
        while (handle := queue.pop()) is not None:
            handle[3](handle[0])
        assert order == ["done", "timer-a", "timer-b", "env", "signal"]

    @pytest.mark.parametrize("timebase", ["float", "exact"])
    def test_kernel_interleaves_classes_at_one_instant(self, timebase):
        # Stage 1 of T1 completes at t=2; T2's phase puts an environment
        # release at t=2; the controller arms a timer at t=2; and the
        # completion's zero-latency signal is due at t=2.  All four event
        # classes collide at one instant and must run in class order.
        system = System(
            (
                Task(
                    period=10.0,
                    subtasks=(Subtask(2.0, "P1"), Subtask(3.0, "P2")),
                    name="T1",
                ),
                Task(
                    period=10.0,
                    phase=2.0,
                    subtasks=(Subtask(1.0, "P2", priority=1),),
                    name="T2",
                ),
            )
        )
        log = []

        class Recording(DirectSynchronization):
            def start(self):
                self.kernel.schedule_timer(
                    2.0, lambda now: log.append(("timer", now))
                )

            def on_completion(self, sid, instance, now):
                log.append(("completion", now))
                super().on_completion(sid, instance, now)
                if sid == SubtaskId(0, 0):
                    # Queued, not synchronous: the successor must not be
                    # released while the completion event is still running.
                    released = (SubtaskId(0, 1), 0) in self.kernel.trace.releases
                    log.append(("successor-released-inside-hook", released))

            def on_env_release(self, sid, instance, now):
                log.append(("env", now))
                super().on_env_release(sid, instance, now)

            def on_signal(self, sid, instance, now):
                log.append(("signal", now))
                super().on_signal(sid, instance, now)

        kernel = Kernel(system, Recording(), 10.0, timebase=timebase)
        trace = kernel.run()

        assert ("successor-released-inside-hook", False) in log
        at_two = [kind for kind, value in log if value == 2.0 or value == 2]
        assert at_two == ["completion", "timer", "env", "signal"]
        # The signal still lands at the same simulated instant.
        assert trace.releases[(SubtaskId(0, 1), 0)] == 2.0


class TestDifferentialChecker:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_backends_agree_on_generated_systems(self, seed):
        system = generate_system(_TINY, seed)
        float_case = build_case(system, seed=seed, config=_TINY)
        exact_case = build_case(
            system, seed=seed, config=_TINY, timebase="exact"
        )
        assert compare_backends(float_case, exact_case) == []

    def test_verdict_flip_is_reported(self):
        system = generate_system(_TINY, 0)
        float_case = build_case(system, seed=0, config=_TINY)
        exact_case = build_case(system, seed=0, config=_TINY, timebase="exact")
        # Force every SA/PM bound to infinity on one side only: both the
        # schedulability and the failure verdict now flip.
        doctored = dataclasses.replace(
            exact_case,
            sa_pm=dataclasses.replace(
                exact_case.sa_pm,
                task_bounds=tuple(
                    math.inf for _ in exact_case.sa_pm.task_bounds
                ),
            ),
        )
        issues = compare_backends(float_case, doctored)
        assert any("SA/PM schedulability flips" in issue for issue in issues)
        assert any("SA/PM failure flag flips" in issue for issue in issues)

    def test_exact_pm_and_mpm_are_identical(self):
        # Under rational arithmetic the PM/MPM identity is exact: same
        # releases, same completions, compared with ==, no tolerance.
        found = False
        for seed in range(6):
            system = generate_system(_TINY, seed)
            case = build_case(system, seed=seed, config=_TINY, timebase="exact")
            if "PM" not in case.results or "MPM" not in case.results:
                continue
            found = True
            pm, mpm = case.results["PM"].trace, case.results["MPM"].trace
            assert pm.releases == mpm.releases
            assert pm.completions == mpm.completions
        assert found, "no seed in range produced both PM and MPM runs"


@given(seed=st.integers(min_value=0, max_value=2**20))
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_float_and_exact_agree(seed):
    """Satellite 4: on any generated system, the two backends agree on
    analysis verdicts and on every (non-horizon-band) simulated event,
    and exact PM == exact MPM with no tolerance at all."""
    system = generate_system(_TINY, seed)
    float_case = build_case(system, seed=seed, config=_TINY)
    exact_case = build_case(system, seed=seed, config=_TINY, timebase="exact")

    assert compare_backends(float_case, exact_case) == []
    assert float_case.sa_pm.schedulable == exact_case.sa_pm.schedulable
    assert float_case.sa_ds.schedulable == exact_case.sa_ds.schedulable
    assert set(float_case.results) == set(exact_case.results)

    if "PM" in exact_case.results and "MPM" in exact_case.results:
        pm = exact_case.results["PM"].trace
        mpm = exact_case.results["MPM"].trace
        assert pm.completions == mpm.completions
