"""Unit tests for processor-level statistics."""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.errors import SimulationError
from repro.model.system import System
from repro.model.task import Subtask, Task
from repro.sim.processor_stats import processor_statistics
from repro.sim.tracing import Trace


class TestProcessorStatistics:
    def test_single_task_busy_fraction(self):
        system = System(
            (Task(period=10.0, subtasks=(Subtask(3.0, "A", priority=0),)),)
        )
        result = run_protocol(
            system, "DS", horizon=30.0, record_segments=True
        )
        stats = processor_statistics(result.trace, "A")
        assert stats.busy_time == pytest.approx(9.0)
        assert stats.busy_fraction == pytest.approx(0.3)
        assert stats.busy_intervals == 3
        assert stats.longest_busy_interval == pytest.approx(3.0)
        assert stats.mean_busy_interval == pytest.approx(3.0)

    def test_preempted_segments_merge_into_one_interval(self):
        low = Task(period=30.0, subtasks=(Subtask(6.0, "A", priority=1),))
        high = Task(
            period=30.0, phase=2.0, subtasks=(Subtask(2.0, "A", priority=0),)
        )
        result = run_protocol(
            System((low, high)), "DS", horizon=29.0, record_segments=True
        )
        stats = processor_statistics(result.trace, "A")
        # Segments 0-2, 2-4, 4-8 form one contiguous busy interval.
        assert stats.busy_intervals == 1
        assert stats.longest_busy_interval == pytest.approx(8.0)

    def test_idle_point_rate_decreases_with_utilization(self):
        """The Figure 15 mechanism: busier processors drain less often."""
        from repro.workload.config import WorkloadConfig
        from repro.workload.generator import generate_system

        rates = {}
        for utilization in (0.5, 0.9):
            config = WorkloadConfig(
                subtasks_per_task=3,
                utilization=utilization,
                tasks=6,
                processors=3,
            )
            system = generate_system(config, seed=1)
            result = run_protocol(
                system, "RG", horizon_periods=6.0, record_segments=True
            )
            rates[utilization] = sum(
                processor_statistics(result.trace, p).idle_points_per_time
                for p in system.processors
            )
        assert rates[0.9] < rates[0.5]

    def test_requires_segments(self, example2):
        trace = Trace(example2, horizon=10.0, record_segments=False)
        with pytest.raises(SimulationError, match="record_segments"):
            processor_statistics(trace, "P1")

    def test_empty_processor(self, example2):
        result = run_protocol(
            example2, "DS", horizon=1.0, record_segments=True
        )
        # P2 sees no execution in the first time unit.
        stats = processor_statistics(result.trace, "P2")
        assert stats.busy_time == 0.0
        assert stats.busy_intervals == 0
        assert stats.mean_busy_interval == 0.0
        assert stats.busy_fraction == 0.0
