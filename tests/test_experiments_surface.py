"""Unit tests for the (N, U) surface container and its rendering."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.stats import mean_with_ci
from repro.experiments.surface import Surface


@pytest.fixture
def surface() -> Surface:
    s = Surface("demo")
    s.put(2, 50, 1.0, sample_count=3)
    s.put(2, 90, 2.0, ci_half_width=0.5, sample_count=3)
    s.put(8, 50, 3.0, sample_count=3)
    s.put(8, 90, 4.0, sample_count=3)
    return s


class TestStorage:
    def test_value_lookup(self, surface):
        assert surface.value(8, 90) == 4.0

    def test_missing_cell_raises(self, surface):
        with pytest.raises(ConfigurationError, match="no cell"):
            surface.value(5, 50)

    def test_axes_sorted(self, surface):
        assert surface.subtask_axis == [2, 8]
        assert surface.utilization_axis == [50, 90]

    def test_put_overwrites(self, surface):
        surface.put(2, 50, 9.0)
        assert surface.value(2, 50) == 9.0

    def test_put_mean(self, surface):
        surface.put_mean(3, 70, mean_with_ci([1.0, 2.0, 3.0]))
        cell = surface.cells[(3, 70)]
        assert cell.value == pytest.approx(2.0)
        assert cell.sample_count == 3

    def test_iter_in_key_order(self, surface):
        keys = [cell.key for cell in surface]
        assert keys == sorted(keys)

    def test_cell_accessors(self, surface):
        cell = surface.cells[(2, 90)]
        assert cell.subtasks == 2
        assert cell.utilization_percent == 90

    def test_map_values(self, surface):
        doubled = surface.map_values(lambda v: v * 2, "doubled")
        assert doubled.value(8, 90) == 8.0
        assert surface.value(8, 90) == 4.0  # original untouched
        assert doubled.name == "doubled"


class TestRendering:
    def test_render_contains_axes_and_values(self, surface):
        text = surface.render()
        assert "demo" in text
        assert "50%" in text and "90%" in text
        assert "4.00" in text

    def test_render_missing_cells_dashed(self, surface):
        surface.put(5, 50, 1.5)
        text = surface.render()
        assert "-" in text  # (5, 90) missing

    def test_render_nan_dashed(self, surface):
        surface.put(2, 50, math.nan)
        assert "-" in surface.render()

    def test_render_with_ci(self, surface):
        text = surface.render(show_ci=True)
        assert "±0.50" in text

    def test_render_precision(self, surface):
        text = surface.render(precision=1)
        assert "4.0" in text
