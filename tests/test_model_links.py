"""Unit tests for link-processor insertion (Section 2 modelling)."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.model.links import insert_link_stages, uniform_link
from repro.model.priority import proportional_deadline_monotonic
from repro.model.system import System
from repro.model.task import Subtask, Task


@pytest.fixture
def plant() -> System:
    chain = Task(
        period=30.0,
        name="chain",
        subtasks=(
            Subtask(2.0, "A", name="produce"),
            Subtask(3.0, "B", name="consume"),
        ),
    )
    local = Task(
        period=10.0,
        name="local",
        subtasks=(Subtask(1.0, "A", name="tick"),),
    )
    return System((chain, local), name="plant")


class TestUniformLink:
    def test_cross_processor_hop_mapped(self):
        plan = uniform_link("bus", 0.5)
        assert plan("A", "B") == ("bus", 0.5)

    def test_local_hop_free(self):
        plan = uniform_link("bus", 0.5)
        assert plan("A", "A") is None

    def test_bad_transmission_time(self):
        with pytest.raises(ModelError):
            uniform_link("bus", 0.0)


class TestInsertLinkStages:
    def test_message_stage_spliced_in(self, plant):
        wired = insert_link_stages(plant, uniform_link("bus", 0.5))
        chain = wired.tasks[0]
        assert chain.chain_length == 3
        assert chain.processors() == ("A", "bus", "B")
        assert chain.subtasks[1].execution_time == 0.5
        assert chain.subtasks[1].name == "chain-msg1"

    def test_single_stage_task_untouched(self, plant):
        wired = insert_link_stages(plant, uniform_link("bus", 0.5))
        assert wired.tasks[1].chain_length == 1

    def test_same_processor_hop_gets_no_message(self):
        task = Task(
            period=10.0,
            subtasks=(Subtask(1.0, "A"), Subtask(1.0, "A")),
        )
        wired = insert_link_stages(
            System((task,)), uniform_link("bus", 0.5)
        )
        assert wired.tasks[0].chain_length == 2

    def test_link_utilization_accounted(self, plant):
        wired = insert_link_stages(plant, uniform_link("bus", 0.6))
        assert wired.processor_utilization("bus") == pytest.approx(0.6 / 30.0)

    def test_periods_phases_deadlines_preserved(self, plant):
        wired = insert_link_stages(plant, uniform_link("bus", 0.5))
        for before, after in zip(plant.tasks, wired.tasks):
            assert after.period == before.period
            assert after.phase == before.phase
            assert after.relative_deadline == before.relative_deadline

    def test_custom_plan_with_per_hop_links(self):
        task = Task(
            period=20.0,
            name="t",
            subtasks=(Subtask(1.0, "A"), Subtask(1.0, "B"),
                      Subtask(1.0, "C")),
        )

        def plan(src, dst):
            return (f"link-{src}{dst}", 0.25)

        wired = insert_link_stages(System((task,)), plan)
        assert wired.tasks[0].processors() == (
            "A", "link-AB", "B", "link-BC", "C"
        )

    def test_plan_returning_bad_time_rejected(self, plant):
        with pytest.raises(ModelError, match="transmission time"):
            insert_link_stages(plant, lambda s, d: ("bus", -1.0))

    def test_wired_system_analyzable_end_to_end(self, plant):
        from repro.core.analysis.sa_pm import analyze_sa_pm

        wired = proportional_deadline_monotonic(
            insert_link_stages(plant, uniform_link("bus", 0.5))
        )
        result = analyze_sa_pm(wired)
        assert result.all_finite
        # The message stage's latency is now part of the EER bound.
        plain = analyze_sa_pm(proportional_deadline_monotonic(plant))
        assert result.task_bounds[0] > plain.task_bounds[0]

    def test_wired_system_simulates_under_every_protocol(self, plant):
        from repro.api import run_protocol

        wired = proportional_deadline_monotonic(
            insert_link_stages(plant, uniform_link("bus", 0.5))
        )
        for protocol in ("DS", "PM", "MPM", "RG"):
            result = run_protocol(wired, protocol, horizon=120.0)
            assert result.metrics.precedence_violations == 0
            assert result.metrics.task(0).completed_instances > 0
