"""Unit tests for breakdown-scaling sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.analysis.sensitivity import (
    breakdown_scaling,
    scale_execution_times,
)
from repro.errors import ConfigurationError
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task


class TestScaleExecutionTimes:
    def test_scales_every_stage(self, example2):
        scaled = scale_execution_times(example2, 0.5)
        for sid in example2.subtask_ids:
            assert scaled.subtask(sid).execution_time == pytest.approx(
                example2.subtask(sid).execution_time * 0.5
            )

    def test_preserves_everything_else(self, example2):
        scaled = scale_execution_times(example2, 2.0)
        assert [t.period for t in scaled.tasks] == [
            t.period for t in example2.tasks
        ]
        assert scaled.subtask(SubtaskId(1, 0)).priority == example2.subtask(
            SubtaskId(1, 0)
        ).priority

    def test_bounds_scale_linearly(self, example2):
        base = analyze_sa_pm(example2)
        scaled = analyze_sa_pm(scale_execution_times(example2, 0.5))
        for a, b in zip(scaled.task_bounds, base.task_bounds):
            assert a == pytest.approx(b * 0.5)

    def test_bad_factor(self, example2):
        with pytest.raises(ConfigurationError):
            scale_execution_times(example2, 0.0)


class TestBreakdownScaling:
    def test_example2_is_overloaded_for_certification(self, example2):
        """T2's SA/PM bound (7) already exceeds its deadline (6): the
        breakdown factor is below 1 but well above 0."""
        factor = breakdown_scaling(example2, "SA/PM")
        assert 0.5 < factor < 1.0
        # At the found factor the system is certifiable...
        assert analyze_sa_pm(
            scale_execution_times(example2, factor)
        ).schedulable
        # ...and just above it, not.
        assert not analyze_sa_pm(
            scale_execution_times(example2, factor + 0.01)
        ).schedulable

    def test_sa_ds_needs_more_capacity_than_sa_pm(self, example2):
        pm_factor = breakdown_scaling(example2, "SA/PM")
        ds_factor = breakdown_scaling(example2, "SA/DS")
        assert ds_factor <= pm_factor + 1e-9

    def test_headroom_reported_above_one(self, monitor):
        factor = breakdown_scaling(monitor, "SA/PM")
        assert factor > 1.0

    def test_max_factor_cap(self, monitor):
        assert breakdown_scaling(monitor, "SA/PM", max_factor=2.0) == 2.0

    def test_hopeless_system_returns_zero(self):
        # Total execution beyond the deadline at every positive scale?
        # Impossible -- scaling down always helps -- so "hopeless" means
        # only: below the tolerance.  Use a tolerance coarser than the
        # feasible region.
        t1 = Task(period=1.0, subtasks=(Subtask(100.0, "A", priority=0),))
        factor = breakdown_scaling(
            System((t1,)), "SA/PM", tolerance=0.02
        )
        assert factor <= 0.01

    def test_invalid_analysis_rejected(self, example2):
        with pytest.raises(ConfigurationError):
            breakdown_scaling(example2, "holistic")

    def test_invalid_tolerance_rejected(self, example2):
        with pytest.raises(ConfigurationError):
            breakdown_scaling(example2, "SA/PM", tolerance=0.0)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_generated_systems_bracketed(self, seed):
        from repro.workload.config import WorkloadConfig
        from repro.workload.generator import generate_system

        config = WorkloadConfig(
            subtasks_per_task=3, utilization=0.6, tasks=4, processors=3
        )
        system = generate_system(config, seed)
        factor = breakdown_scaling(system, "SA/PM", tolerance=5e-3)
        if factor > 0:
            assert analyze_sa_pm(
                scale_execution_times(system, factor)
            ).schedulable

class TestSectionedScaling:
    """Regression: lock-aware systems must scale their critical sections.

    ``scale_execution_times`` used to shrink only the execution times,
    leaving sections at their original offsets -- a downscale could
    leave a section poking past its subtask's new execution time
    (invalid model) and an upscale silently under-priced blocking.
    """

    def _sectioned(self) -> System:
        from repro.model.task import CriticalSection

        return System(
            (
                Task(
                    period=20.0,
                    subtasks=(
                        Subtask(
                            4.0,
                            "P1",
                            priority=0,
                            critical_sections=(
                                CriticalSection("R1", 1.0, 2.0),
                            ),
                        ),
                    ),
                ),
                Task(
                    period=40.0,
                    subtasks=(
                        Subtask(
                            8.0,
                            "P1",
                            priority=1,
                            critical_sections=(
                                CriticalSection("R1", 6.0, 2.0),
                            ),
                        ),
                    ),
                ),
            ),
            name="sectioned-scaling",
        )

    def test_downscale_keeps_sections_inside_execution(self):
        scaled = scale_execution_times(self._sectioned(), 0.25)
        for sid in scaled.subtask_ids:
            stage = scaled.subtask(sid)
            for section in stage.critical_sections:
                assert (
                    section.start + section.duration
                    <= stage.execution_time + 1e-12
                )

    def test_sections_scale_proportionally(self):
        scaled = scale_execution_times(self._sectioned(), 0.5)
        section = scaled.subtask(SubtaskId(0, 0)).critical_sections[0]
        assert section.start == pytest.approx(0.5)
        assert section.duration == pytest.approx(1.0)

    def test_breakdown_uses_blocking_aware_analyses(self):
        """The sectioned breakdown must price blocking: a lock-free
        twin of the same system scales strictly further."""
        system = self._sectioned()
        lock_free = system.with_tasks(
            task.with_subtasks(
                tuple(
                    Subtask(
                        stage.execution_time,
                        stage.processor,
                        priority=stage.priority,
                        name=stage.name,
                    )
                    for stage in task.subtasks
                )
            )
            for task in system.tasks
        )
        sectioned_factor = breakdown_scaling(system, "SA/PM")
        free_factor = breakdown_scaling(lock_free, "SA/PM")
        assert 0 < sectioned_factor <= free_factor

    def test_breakdown_factor_is_verified_for_sectioned_system(self):
        from repro.locks import analyze_sa_pm_blocking

        system = self._sectioned()
        factor = breakdown_scaling(system, "SA/PM", tolerance=1e-3)
        assert factor > 0
        assert analyze_sa_pm_blocking(
            scale_execution_times(system, factor)
        ).schedulable
