"""Unit tests for the LRU decision cache (eviction order, persistence)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.service.cache import DecisionCache
from repro.service.requests import AdmissionDecision


def _decision(tag: str, admitted: bool = True) -> AdmissionDecision:
    return AdmissionDecision(
        admitted=admitted,
        protocol="RG" if admitted else None,
        rationale=f"decision {tag}",
        schedulable={"DS": False, "RG": admitted},
        task_bounds={
            "SA/PM": (1.0, 2.5),
            "SA/DS": (1.0, float("inf")),
        },
        worst_bound_ratio=float("inf"),
        key=f"key-{tag}",
        system_name=f"system-{tag}",
    )


class TestLru:
    def test_get_put_round_trip(self):
        cache = DecisionCache(capacity=4)
        cache.put("a", _decision("a"))
        assert cache.get("a") == _decision("a")
        assert cache.get("missing") is None

    def test_eviction_is_least_recently_used(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", _decision("a"))
        cache.put("b", _decision("b"))
        assert cache.get("a") is not None  # refresh "a"; "b" is now LRU
        cache.put("c", _decision("c"))
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_put_refreshes_recency(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", _decision("a"))
        cache.put("b", _decision("b"))
        cache.put("a", _decision("a"))  # re-store refreshes "a"
        cache.put("c", _decision("c"))
        assert cache.keys() == ("a", "c")

    def test_eviction_order_across_many(self):
        cache = DecisionCache(capacity=3)
        for tag in "abcde":
            cache.put(tag, _decision(tag))
        assert cache.keys() == ("c", "d", "e")
        assert cache.stats().evictions == 2

    def test_contains_does_not_touch_stats_or_recency(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", _decision("a"))
        cache.put("b", _decision("b"))
        assert "a" in cache  # not a use
        cache.put("c", _decision("c"))
        assert "a" not in cache  # "a" was still LRU
        assert cache.stats().lookups == 0

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            DecisionCache(capacity=0)

    def test_clear_keeps_counters(self):
        cache = DecisionCache(capacity=2)
        cache.put("a", _decision("a"))
        cache.get("a")
        cache.get("b")
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert stats.hits == 1 and stats.misses == 1

    def test_stats_hit_rate(self):
        cache = DecisionCache(capacity=2)
        assert cache.stats().hit_rate == 0.0
        cache.put("a", _decision("a"))
        cache.get("a")
        cache.get("a")
        cache.get("nope")
        stats = cache.stats()
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert "rate" in stats.describe()


class TestPersistence:
    def test_disk_round_trip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = DecisionCache(capacity=8)
        for tag in "abc":
            cache.put(tag, _decision(tag, admitted=(tag != "b")))
        cache.save(path)

        reloaded = DecisionCache(capacity=8, path=path)
        assert len(reloaded) == 3
        for tag in "abc":
            assert reloaded.get(tag) == cache.get(tag)

    def test_round_trip_preserves_recency_order(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = DecisionCache(capacity=8)
        for tag in "abc":
            cache.put(tag, _decision(tag))
        cache.get("a")  # now order is b, c, a
        cache.save(path)
        reloaded = DecisionCache(capacity=8, path=path)
        assert reloaded.keys() == ("b", "c", "a")

    def test_smaller_reload_keeps_hottest(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = DecisionCache(capacity=8)
        for tag in "abcd":
            cache.put(tag, _decision(tag))
        cache.save(path)
        small = DecisionCache(capacity=2, path=path)
        assert small.keys() == ("c", "d")

    def test_infinite_bounds_survive_round_trip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = DecisionCache()
        cache.put("a", _decision("a", admitted=False))
        cache.save(path)
        loaded = DecisionCache(path=path).get("a")
        assert loaded.task_bounds["SA/DS"][1] == float("inf")
        assert loaded.worst_bound_ratio == float("inf")

    def test_missing_file_starts_empty(self, tmp_path):
        cache = DecisionCache(path=tmp_path / "absent.jsonl")
        assert len(cache) == 0

    def test_save_without_path_rejected(self):
        with pytest.raises(ConfigurationError):
            DecisionCache().save()

    def test_corrupt_line_rejected(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ConfigurationError):
            DecisionCache(path=path)


class TestThreadSafety:
    def test_concurrent_mixed_use(self):
        cache = DecisionCache(capacity=32)
        errors: list[BaseException] = []

        def worker(offset: int) -> None:
            try:
                for i in range(200):
                    tag = str((offset * 7 + i) % 48)
                    cache.put(tag, _decision(tag))
                    cache.get(str(i % 48))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats.lookups == 4 * 200
