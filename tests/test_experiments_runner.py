"""Integration tests for the suite runner (scaled-down grid)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_suite, sweep_grid
from repro.workload.config import WorkloadConfig


@pytest.fixture(scope="module")
def suite():
    """A tiny but complete suite run: 2x2 grid, small systems."""
    return run_suite(
        systems=2,
        subtask_counts=(2, 3),
        utilizations=(0.5, 0.7),
        horizon_periods=5.0,
        grid_overrides={"tasks": 4, "processors": 3},
    )


class TestRunSuite:
    def test_all_surfaces_present(self, suite):
        assert suite.failure_rate.subtask_axis == [2, 3]
        assert suite.bound_ratio.utilization_axis == [50, 70]
        assert suite.pm_ds_ratio.cells
        assert suite.rg_ds_ratio.cells
        assert suite.pm_rg_ratio.cells

    def test_systems_per_config(self, suite):
        assert suite.systems_per_config == 2

    def test_pm_ds_ratio_at_least_one(self, suite):
        for cell in suite.pm_ds_ratio:
            assert cell.value >= 1.0 - 1e-9

    def test_rg_between_ds_and_pm_on_average(self, suite):
        for key, cell in suite.rg_ds_ratio.cells.items():
            pm_ds = suite.pm_ds_ratio.cells[key].value
            assert 1.0 - 1e-9 <= cell.value <= pm_ds + 1e-9

    def test_pm_rg_consistent_with_other_ratios(self, suite):
        # PM/RG > 1 wherever PM/DS > RG/DS on average (sanity coupling).
        for cell in suite.pm_rg_ratio:
            assert cell.value >= 1.0 - 1e-6

    def test_render_contains_all_figures(self, suite):
        text = suite.render()
        for number in (12, 13, 14, 15, 16):
            assert f"Figure {number}" in text

    def test_evaluations_reusable(self, suite):
        from repro.experiments.figures import failure_rate_surface

        rebuilt = failure_rate_surface(suite.evaluations)
        for cell in rebuilt:
            assert cell.value == suite.failure_rate.cells[cell.key].value

    def test_schedulability_accessor(self, suite):
        sa_pm = suite.schedulability("SA/PM")
        sa_ds = suite.schedulability("SA/DS")
        for cell in sa_pm:
            assert 0.0 <= cell.value <= 1.0
            assert sa_ds.value(*cell.key) <= cell.value + 1e-9


class TestSweepGrid:
    def test_progress_callback_called(self):
        lines: list[str] = []
        config = WorkloadConfig(
            subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
        )
        sweep_grid(
            [config],
            1,
            progress=lines.append,
            run_simulations=False,
        )
        assert len(lines) == 1
        assert "(2,50)" in lines[0]

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_grid([], 1)
