"""Tests for the fuzzer's locking environment dimension."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultConfig
from repro.fuzz.campaign import LOCK_ROTATIONS, LockScenario, run_campaign
from repro.fuzz.oracles import check_case
from repro.fuzz.runner import build_case
from repro.locks import LockingConfig
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

CONFIG = WorkloadConfig(
    subtasks_per_task=3, utilization=0.5, tasks=4, processors=3
)


@pytest.fixture(scope="module")
def system():
    return generate_system(CONFIG, seed=1)


class TestLockScenario:
    def test_label_and_config(self):
        scenario = LockScenario(ratio=0.25, protocol="dpcpp")
        assert scenario.config == LockingConfig("DPCP-p")
        assert scenario.label == "locks[DPCP-p ratio=0.25]"

    def test_apply_injects_with_the_case_seed(self, system):
        scenario = LockScenario(ratio=0.2, participation=1.0)
        assert scenario.apply(system, 3) == scenario.apply(system, 3)
        assert scenario.apply(system, 3) != scenario.apply(system, 4)

    def test_zero_ratio_apply_is_the_identity(self, system):
        assert LockScenario(ratio=0.0).apply(system, 7) is system

    def test_locks_rotation_contents(self):
        rotation = LOCK_ROTATIONS["locks"]
        # The rotation must include a no-plumbing case, a zero-ratio
        # scenario (the lock-free-identity oracle's food) and both
        # locking protocols under genuine contention.
        assert None in rotation
        assert any(s is not None and s.ratio == 0.0 for s in rotation)
        contended = {
            s.config.protocol
            for s in rotation
            if s is not None and s.ratio > 0
        }
        assert contended == {"DPCP", "DPCP-p"}


class TestBuildCaseEnvironment:
    def test_idle_locking_config_case(self, system):
        case = build_case(system, locking=LockingConfig("DPCP"))
        assert case.locks_free
        assert case.ideal  # nothing to lock: still the ideal envelope
        failures, checked = check_case(case)
        assert not failures
        assert "lock-free-identity" in checked
        assert "blocking-term-soundness" not in checked

    def test_resourceful_case_runs_the_lock_oracles(self, system):
        scenario = LockScenario(ratio=0.2, participation=1.0)
        case = build_case(scenario.apply(system, 1), locking=scenario.config)
        assert not case.locks_free
        assert not case.ideal
        assert case.sa_pm_blocking is not None
        assert case.sa_pm_blocking.algorithm == "SA/PM+DPCP"
        failures, checked = check_case(case)
        assert not failures
        assert "deadlock-freedom" in checked
        # Ideal-only identities stand down on resourceful cases.
        assert "pm-mpm-identity" not in checked
        assert "lock-free-identity" not in checked

    def test_blocking_term_soundness_needs_a_timer_protocol_run(
        self, system
    ):
        scenario = LockScenario(ratio=0.2, participation=1.0)
        case = build_case(scenario.apply(system, 1), locking=scenario.config)
        _, checked = check_case(case)
        ran_timer_protocol = any(p in case.results for p in ("PM", "MPM"))
        assert ("blocking-term-soundness" in checked) == ran_timer_protocol

    def test_deadlock_freedom_stands_down_under_crash_faults(self, system):
        scenario = LockScenario(ratio=0.2, participation=1.0)
        case = build_case(
            scenario.apply(system, 1),
            locking=scenario.config,
            faults=FaultConfig(
                crash_start=5.0, crash_duration=2.0, seed=1
            ),
        )
        _, checked = check_case(case)
        assert "deadlock-freedom" not in checked

    def test_label_carries_the_locking_protocol(self, system):
        scenario = LockScenario(ratio=0.2, protocol="DPCP-p")
        case = build_case(scenario.apply(system, 1), locking=scenario.config)
        assert "locks=DPCP-p" in case.label

    def test_idle_config_stays_out_of_the_label(self, system):
        case = build_case(system, locking=LockingConfig("DPCP"))
        assert "locks=" not in case.label


class TestCampaignRotation:
    def test_locks_rotation_runs_clean(self):
        report = run_campaign(
            runs=5,
            base_seed=0,
            workers=1,
            locks="locks",
            shrink=False,
        )
        assert report.ok
        assert report.runs == 5

    def test_exact_timebase_locks_rotation_runs_clean(self):
        report = run_campaign(
            runs=3,
            base_seed=0,
            workers=1,
            locks="locks",
            timebase="exact",
            shrink=False,
        )
        assert report.ok

    def test_unknown_rotation_name_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(runs=1, workers=1, locks="no-such-rotation")

    def test_empty_rotation_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(runs=1, workers=1, locks=())
