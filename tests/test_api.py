"""Unit tests for the top-level convenience API."""

from __future__ import annotations

import pytest

import repro
from repro.api import analyze, compare_protocols, run_protocol
from repro.errors import ConfigurationError


class TestRunProtocol:
    def test_returns_simulation_result(self, example2):
        result = run_protocol(example2, "DS", horizon=30.0)
        assert result.protocol == "DS"
        assert result.horizon == 30.0
        assert result.events_processed > 0

    def test_average_and_max_accessors(self, example2):
        result = run_protocol(example2, "DS", horizon=60.0)
        assert result.average_eer(0) == pytest.approx(2.0)
        assert result.max_eer(2) == pytest.approx(8.0)

    def test_default_horizon_scales_with_period(self, example2):
        result = run_protocol(example2, "DS", horizon_periods=5.0)
        # max phase 4 + 5 * max period 6 = 34.
        assert result.horizon == pytest.approx(34.0)

    def test_segments_off_by_default(self, example2):
        result = run_protocol(example2, "DS", horizon=30.0)
        assert result.trace.segments == []

    def test_unknown_protocol(self, example2):
        with pytest.raises(ConfigurationError):
            run_protocol(example2, "LST", horizon=10.0)


class TestAnalyze:
    @pytest.mark.parametrize("protocol", ["PM", "MPM", "RG", "pm", "rg"])
    def test_pm_family_uses_sa_pm(self, example2, protocol):
        result = analyze(example2, protocol)
        assert result.algorithm == "SA/PM"

    def test_ds_uses_sa_ds(self, example2):
        assert analyze(example2, "DS").algorithm == "SA/DS"

    def test_unknown_protocol(self, example2):
        with pytest.raises(ConfigurationError):
            analyze(example2, "EDF")


class TestCompareProtocols:
    def test_default_trio(self, example2):
        results = compare_protocols(example2, horizon=30.0)
        assert set(results) == {"DS", "PM", "RG"}

    def test_kwargs_forwarded(self, example2):
        results = compare_protocols(
            example2, ("DS",), horizon=30.0, record_segments=True
        )
        assert results["DS"].trace.segments


class TestPublicSurface:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_runs(self):
        system = repro.example_two()
        verdict = repro.analyze(system, "DS")
        assert not verdict.is_task_schedulable(2)
        result = repro.run_protocol(system, "RG", horizon=60.0)
        assert result.metrics.task(2).deadline_misses == 0


class TestAdmitService:
    def test_decisions_match_admit_many(self):
        from repro.api import admit_many, admit_service
        from repro.workload.config import WorkloadConfig
        from repro.workload.generator import generate_system

        config = WorkloadConfig(
            subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
        )
        systems = [generate_system(config, seed) for seed in range(3)]
        via_batch = admit_many(systems, workers=1)
        via_frontend = admit_service(systems)
        assert [d.admitted for d in via_frontend] == [
            d.admitted for d in via_batch
        ]
        assert [d.key for d in via_frontend] == [
            d.key for d in via_batch
        ]

    def test_frontend_config_is_honoured(self):
        from repro.api import admit_service
        from repro.service.frontend import FrontendConfig
        from repro.workload.config import WorkloadConfig
        from repro.workload.generator import generate_system

        config = WorkloadConfig(
            subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
        )
        systems = [generate_system(config, 1)]
        decisions = admit_service(
            systems,
            frontend_config=FrontendConfig(
                shards=3, cache_backend="sqlite"
            ),
        )
        assert len(decisions) == 1
