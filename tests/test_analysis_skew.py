"""Unit tests for the skew-aware SA/PM analysis."""

from __future__ import annotations

import math

import pytest

from repro.clocks import ClockConfig, ClockMap, ResyncClock
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.analysis.skew import analyze_sa_pm_skewed, skew_terms
from repro.errors import ConfigurationError
from repro.model.task import SubtaskId
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system


@pytest.fixture(scope="module")
def system():
    config = WorkloadConfig(
        subtasks_per_task=3, utilization=0.6, tasks=4, processors=3
    )
    return generate_system(config, seed=0)


class TestReductionToBase:
    @pytest.mark.parametrize("timebase", ["float", "exact"])
    def test_zero_skew_equals_sa_pm_exactly(self, system, timebase):
        base = analyze_sa_pm(system, timebase=timebase)
        skewed = analyze_sa_pm_skewed(system, timebase=timebase)
        assert skewed.subtask_bounds == base.subtask_bounds
        assert skewed.task_bounds == base.task_bounds

    def test_perfect_clock_map_equals_base(self, system):
        base = analyze_sa_pm(system)
        skewed = analyze_sa_pm_skewed(system, clocks=ClockMap.perfect())
        assert skewed.task_bounds == base.task_bounds

    def test_offset_only_clocks_equal_base(self, system):
        # A pure offset cancels for duration-measuring protocols; its
        # rate and jump envelopes are zero, so nothing inflates.
        base = analyze_sa_pm(system)
        skewed = analyze_sa_pm_skewed(
            system, clocks=ClockConfig(kind="offset", offset=500.0)
        )
        assert skewed.task_bounds == base.task_bounds


class TestInflation:
    def test_monotone_in_rate_and_jump(self, system):
        base = analyze_sa_pm_skewed(system)
        small = analyze_sa_pm_skewed(system, rate=1e-5, jump=0.5)
        large = analyze_sa_pm_skewed(system, rate=1e-4, jump=5.0)
        for b, s, big in zip(
            base.task_bounds, small.task_bounds, large.task_bounds
        ):
            assert b <= s <= big
        assert sum(small.task_bounds) > sum(base.task_bounds)

    def test_rate_of_one_makes_everything_infinite(self, system):
        skewed = analyze_sa_pm_skewed(system, rate=1.0)
        assert all(math.isinf(b) for b in skewed.task_bounds)
        assert not skewed.schedulable

    def test_algorithm_name(self, system):
        assert analyze_sa_pm_skewed(system, jump=1.0).algorithm == "SA/PM-skew"

    def test_clock_map_envelope_matches_explicit_numbers(self, system):
        clocks = ClockMap(
            {
                p: ResyncClock(2.0, 100.0, rate=1e-4, seed=i)
                for i, p in enumerate(sorted(system.processors))
            }
        )
        via_map = analyze_sa_pm_skewed(system, clocks=clocks)
        explicit = analyze_sa_pm_skewed(
            system, rate=clocks.max_rate(), jump=clocks.max_jump()
        )
        assert via_map.task_bounds == explicit.task_bounds

    def test_clock_config_envelope(self, system):
        config = ClockConfig(
            kind="resync", precision=2.0, interval=100.0, rate=1e-4
        )
        via_config = analyze_sa_pm_skewed(system, clocks=config)
        explicit = analyze_sa_pm_skewed(
            system, rate=config.rate_bound(), jump=config.jump_bound()
        )
        assert via_config.task_bounds == explicit.task_bounds


class TestSkewTerms:
    def test_first_subtasks_have_zero_jitter(self, system):
        _, jitter = skew_terms(system, rate=1e-4, jump=2.0)
        for task_index in range(len(system.tasks)):
            assert jitter[SubtaskId(task_index, 0)] == 0

    def test_jitter_accumulates_along_chains(self, system):
        _, jitter = skew_terms(system, rate=1e-4, jump=2.0)
        for task_index, task in enumerate(system.tasks):
            values = [
                jitter[SubtaskId(task_index, j)]
                for j in range(task.chain_length)
            ]
            assert values == sorted(values)
            if task.chain_length > 1:
                assert values[1] > 0

    def test_zero_envelope_means_zero_terms(self, system):
        delta, jitter = skew_terms(system, rate=0.0, jump=0.0)
        assert all(v == 0 for v in delta.values())
        assert all(v == 0 for v in jitter.values())

    def test_invalid_envelope_rejected(self, system):
        with pytest.raises(ConfigurationError):
            skew_terms(system, rate=-0.1, jump=0.0)
        with pytest.raises(ConfigurationError):
            skew_terms(system, rate=0.0, jump=math.inf)
