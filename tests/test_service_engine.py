"""Unit tests for the admission engine and its cache integration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.cache import DecisionCache
from repro.service.engine import AdmissionController, compute_decision
from repro.service.hashing import request_key
from repro.service.requests import AdmissionRequest


class TestComputeDecision:
    def test_example_two_rejected_everywhere(self, example2):
        # T2's EER bound (7) exceeds its deadline (6) even under SA/PM,
        # so no protocol can certify the paper's Example 2 outright.
        decision = compute_decision(AdmissionRequest(system=example2))
        assert not decision.admitted
        assert decision.protocol is None
        assert decision.schedulable == {
            "DS": False, "PM": False, "MPM": False, "RG": False
        }
        assert "no requested protocol" in decision.rationale

    def test_pipeline_admitted_under_ds(self, two_stage_pipeline):
        decision = compute_decision(
            AdmissionRequest(system=two_stage_pipeline)
        )
        assert decision.admitted
        assert decision.protocol == "DS"
        assert decision.schedulable == {
            "DS": True, "PM": True, "MPM": True, "RG": True
        }
        assert decision.task_bounds["SA/PM"] == (5.0,)
        assert decision.task_bounds["SA/DS"] == (5.0,)

    def test_jitter_sensitive_prefers_mpm(self, two_stage_pipeline):
        decision = compute_decision(
            AdmissionRequest(
                system=two_stage_pipeline, jitter_sensitive=True
            )
        )
        assert decision.protocol == "MPM"

    def test_fallback_when_advice_not_requested(self, two_stage_pipeline):
        # Advisor would say DS; with DS not on the menu, the strongest
        # certified requested protocol (RG) is deployed instead.
        decision = compute_decision(
            AdmissionRequest(
                system=two_stage_pipeline, protocols=("PM", "RG")
            )
        )
        assert decision.admitted
        assert decision.protocol == "RG"
        assert "falling back to RG" in decision.rationale

    def test_decision_echoes_request_metadata(self, two_stage_pipeline):
        request = AdmissionRequest(
            system=two_stage_pipeline, request_id="abc-1"
        )
        decision = compute_decision(request)
        assert decision.request_id == "abc-1"
        assert decision.system_name == "pipeline"
        assert decision.key == request_key(request)

    def test_determinism(self, small_system):
        request = AdmissionRequest(system=small_system)
        assert compute_decision(request) == compute_decision(request)

    def test_unsynchronized_clocks_exclude_pm(self, two_stage_pipeline):
        decision = compute_decision(
            AdmissionRequest(
                system=two_stage_pipeline, synchronized_clocks=False
            )
        )
        assert decision.admitted
        assert decision.schedulable["PM"] is False
        # The duration-measuring protocols are untouched by the veto.
        assert decision.schedulable["MPM"] is True
        assert decision.schedulable["RG"] is True
        assert decision.schedulable["DS"] is True

    def test_skew_envelope_certifies_via_skewed_bounds(
        self, two_stage_pipeline
    ):
        decision = compute_decision(
            AdmissionRequest(
                system=two_stage_pipeline,
                clock_rate_bound=1e-4,
                clock_jump_bound=0.1,
            )
        )
        # ε-synchronized is not synchronized enough for PM's absolute
        # phases; MPM/RG re-certify against the inflated bounds, and DS
        # (no timers) is unaffected.
        assert decision.schedulable["PM"] is False
        assert decision.schedulable["MPM"] is True
        assert decision.schedulable["RG"] is True
        assert decision.schedulable["DS"] is True
        assert "SA/PM-skew" in decision.task_bounds
        skewed = decision.task_bounds["SA/PM-skew"]
        plain = decision.task_bounds["SA/PM"]
        assert all(s >= p for s, p in zip(skewed, plain))

    def test_no_envelope_means_no_skewed_bounds(self, two_stage_pipeline):
        decision = compute_decision(
            AdmissionRequest(system=two_stage_pipeline)
        )
        assert "SA/PM-skew" not in decision.task_bounds
        assert decision.schedulable["PM"] is True

    def test_unknown_protocol_rejected(self, two_stage_pipeline):
        with pytest.raises(ConfigurationError):
            AdmissionRequest(system=two_stage_pipeline, protocols=("XX",))

    def test_empty_protocols_rejected(self, two_stage_pipeline):
        with pytest.raises(ConfigurationError):
            AdmissionRequest(system=two_stage_pipeline, protocols=())


class TestAdmissionController:
    def test_cached_equals_uncached(self, small_system):
        request = AdmissionRequest(system=small_system)
        controller = AdmissionController()
        uncached = AdmissionController(enable_cache=False)
        first = controller.admit(request)
        second = controller.admit(request)  # served from cache
        assert first == second == uncached.admit(request)
        assert controller.cache.stats().hits == 1
        assert uncached.cache is None

    def test_cache_hit_echoes_new_request_id(self, small_system):
        controller = AdmissionController()
        controller.admit(
            AdmissionRequest(system=small_system, request_id="first")
        )
        hit = controller.admit(
            AdmissionRequest(system=small_system, request_id="second")
        )
        assert hit.request_id == "second"

    def test_metrics_account_hits_and_misses(self, small_system):
        controller = AdmissionController()
        request = AdmissionRequest(system=small_system)
        controller.admit(request)
        controller.admit(request)
        snap = controller.metrics.snapshot()
        assert snap["requests"] == 2
        assert snap["cache_hits"] == 1
        assert snap["cache_misses"] == 1
        assert snap["latency_p50"] >= 0.0

    def test_admit_system_shorthand(self, two_stage_pipeline):
        controller = AdmissionController()
        decision = controller.admit_system(
            two_stage_pipeline, protocols=("RG",)
        )
        assert decision.admitted and decision.protocol == "RG"

    def test_shared_cache_across_controllers(self, small_system):
        cache = DecisionCache()
        a = AdmissionController(cache=cache)
        b = AdmissionController(cache=cache)
        a.admit(AdmissionRequest(system=small_system))
        b.admit(AdmissionRequest(system=small_system))
        assert cache.stats().hits == 1

    def test_describe_mentions_cache_state(self, small_system):
        controller = AdmissionController()
        controller.admit(AdmissionRequest(system=small_system))
        text = controller.describe()
        assert "admissions: 1 requests" in text
        assert "entries" in text
        assert "disabled" in AdmissionController(
            enable_cache=False
        ).describe()
