"""Incremental region maintenance: reuse is never a soundness shortcut.

``update_region`` must return a fully verified region for the *new*
shape no matter how the edit relates to the cached one -- the reuse
heuristics only decide how many probes that costs.  These tests cover
the add-one/remove-one fast paths (fewer probes than a fresh build),
the identity and fallback paths, and re-verify every corner directly.
"""

from __future__ import annotations

import pytest

from repro.model.system import System
from repro.model.task import Subtask, Task
from repro.regions.compute import compute_region, probe_point
from repro.regions.incremental import update_region
from repro.regions.shape import execution_vector, shape_key, system_at
from repro.service.requests import AdmissionRequest
from repro.timebase import get_timebase


def _task(period: float, executions, processor_cycle=("P1", "P2")):
    return Task(
        period=period,
        subtasks=tuple(
            Subtask(e, processor_cycle[i % len(processor_cycle)], priority=i)
            for i, e in enumerate(executions)
        ),
    )


def _base_system() -> System:
    return System(
        (
            _task(20.0, (2.0, 3.0)),
            _task(40.0, (4.0, 2.0)),
            _task(80.0, (5.0,), ("P3",)),
        ),
        name="incremental-base",
    )


def _with_extra_task(system: System) -> System:
    return system.with_tasks(tuple(system.tasks) + (_task(60.0, (3.0,), ("P3",)),))


def _verified(request: AdmissionRequest, region) -> None:
    tb = get_timebase(None)
    assert region.shape_key == shape_key(request)
    for analysis in region.analyses:
        corner = region.corner(analysis)
        if corner is None:
            continue
        assert probe_point(
            request, analysis, system_at(request.system, corner), tb
        ), f"updated corner for {analysis} is not directly schedulable"


class TestAddRemove:
    def test_add_one_task_reuses_and_stays_sound(self):
        old = AdmissionRequest(system=_base_system())
        new = AdmissionRequest(system=_with_extra_task(_base_system()))
        cached = compute_region(old)
        updated = update_region(cached, old, new)
        _verified(new, updated)
        fresh = compute_region(new)
        assert updated.probes < fresh.probes
        # The reused region is no worse than a fresh build at the
        # request's own point.
        e0 = execution_vector(new.system)
        for analysis in fresh.analyses:
            if fresh.covers(analysis, e0):
                assert updated.covers(analysis, e0)

    def test_remove_one_task_reuses_and_stays_sound(self):
        old = AdmissionRequest(system=_with_extra_task(_base_system()))
        new = AdmissionRequest(system=_base_system())
        cached = compute_region(old)
        updated = update_region(cached, old, new)
        _verified(new, updated)
        assert updated.probes < compute_region(new).probes

    def test_untouched_dimensions_inherit_their_boundary(self):
        # The third task lives alone on P3; adding a task on P3 touches
        # only its dimensions, so the P1/P2 boundaries carry over.
        old = AdmissionRequest(system=_base_system())
        new = AdmissionRequest(system=_with_extra_task(_base_system()))
        cached = compute_region(old)
        updated = update_region(cached, old, new)
        old_corner = cached.corner("SA/PM")
        new_corner = updated.corner("SA/PM")
        assert old_corner is not None and new_corner is not None
        # Dimensions 0-3 (tasks on P1/P2) are untouched by the edit.
        for k in range(4):
            assert new_corner[k] == min(old_corner[k], new_corner[k])

    def test_added_dimension_is_grown(self):
        old = AdmissionRequest(system=_base_system())
        new = AdmissionRequest(system=_with_extra_task(_base_system()))
        cached = compute_region(old)
        updated = update_region(cached, old, new)
        corner = updated.corner("SA/PM")
        assert corner is not None
        # The new task's dimension (last) seeds at e0 and then ascends;
        # it must at least reach its own execution time.
        assert corner[-1] >= execution_vector(new.system)[-1]


class TestFallbacks:
    def test_same_shape_returns_the_cached_region(self):
        old = AdmissionRequest(system=_base_system())
        cached = compute_region(old)
        rescaled = AdmissionRequest(
            system=system_at(
                _base_system(),
                tuple(0.5 * e for e in execution_vector(_base_system())),
            )
        )
        assert shape_key(old) == shape_key(rescaled)
        assert update_region(cached, old, rescaled) is cached

    def test_option_change_falls_back_fresh(self):
        old = AdmissionRequest(system=_base_system())
        cached = compute_region(old)
        new = AdmissionRequest(system=_base_system(), protocols=("DS",))
        updated = update_region(cached, old, new)
        _verified(new, updated)
        assert updated.analyses == ("SA/DS",)

    def test_timebase_mismatch_falls_back_fresh(self):
        old = AdmissionRequest(system=_base_system())
        cached = compute_region(old)  # float region
        new = AdmissionRequest(system=_with_extra_task(_base_system()))
        updated = update_region(cached, old, new, timebase="exact")
        assert updated.timebase == "exact"
        assert updated.shape_key == shape_key(new)

    def test_foreign_region_falls_back_fresh(self):
        old = AdmissionRequest(system=_base_system())
        other = AdmissionRequest(system=_with_extra_task(_base_system()))
        cached = compute_region(other)  # not old's region
        new = AdmissionRequest(system=_with_extra_task(_base_system()))
        updated = update_region(cached, old, new)
        _verified(new, updated)

    def test_exact_update_stays_rational(self):
        old = AdmissionRequest(system=_base_system())
        cached = compute_region(old, timebase="exact")
        new = AdmissionRequest(system=_with_extra_task(_base_system()))
        updated = update_region(cached, old, new, timebase="exact")
        _verified_exact = get_timebase("exact")
        for analysis in updated.analyses:
            corner = updated.corner(analysis)
            assert corner is not None
            assert all(not isinstance(v, float) for v in corner)
            assert probe_point(
                new,
                analysis,
                system_at(new.system, corner),
                _verified_exact,
            )
