"""CLI and one-call API tests for the admission-control service."""

from __future__ import annotations

import json

import pytest

from repro.api import admit, admit_many
from repro.cli import main
from repro.io import save_system, system_to_dict
from repro.service import DecisionCache
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)


@pytest.fixture
def batch_jsonl(tmp_path):
    """Six bare-system lines, the minimal batch input format."""
    path = tmp_path / "batch.jsonl"
    lines = [
        json.dumps(system_to_dict(generate_system(LIGHT, seed)))
        for seed in range(6)
    ]
    path.write_text("\n".join(lines) + "\n")
    return path


class TestAdmitSingle:
    def test_admit_saved_system(self, tmp_path, capsys):
        path = tmp_path / "system.json"
        save_system(generate_system(LIGHT, 0), path)
        assert main(["admit", "--load", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ADMIT under" in out or "REJECT" in out
        assert "per-protocol" in out

    def test_requires_exactly_one_input(self, tmp_path, capsys):
        assert main(["admit"]) == 2
        assert "--load FILE or --jsonl FILE" in capsys.readouterr().err
        path = tmp_path / "system.json"
        save_system(generate_system(LIGHT, 0), path)
        assert (
            main(["admit", "--load", str(path), "--jsonl", str(path)]) == 2
        )

    def test_malformed_jsonl_line_names_file_and_line(self, tmp_path):
        from repro.errors import ConfigurationError

        path = tmp_path / "batch.jsonl"
        path.write_text('{"not json\n')
        with pytest.raises(ConfigurationError, match=r"batch\.jsonl:1:"):
            main(["admit", "--jsonl", str(path)])

    def test_protocol_subset_flag(self, tmp_path, capsys):
        path = tmp_path / "system.json"
        save_system(generate_system(LIGHT, 0), path)
        assert (
            main(["admit", "--load", str(path), "--protocols", "RG"]) == 0
        )
        out = capsys.readouterr().out
        assert "RG=" in out and "DS=" not in out


class TestAdmitBatch:
    def test_jsonl_round_trip_deterministic(self, tmp_path, batch_jsonl):
        """ISSUE acceptance: same decisions with cache on, off, and
        after a persisted-cache restart."""
        outs = {name: tmp_path / f"{name}.jsonl" for name in "abc"}
        cache_file = tmp_path / "cache.jsonl"
        assert (
            main(
                [
                    "admit", "--jsonl", str(batch_jsonl),
                    "--out", str(outs["a"]),
                    "--cache-file", str(cache_file),
                    "--workers", "1",
                ]
            )
            == 0
        )
        assert cache_file.exists()
        # warm restart from the persisted cache
        assert (
            main(
                [
                    "admit", "--jsonl", str(batch_jsonl),
                    "--out", str(outs["b"]),
                    "--cache-file", str(cache_file),
                    "--workers", "1",
                ]
            )
            == 0
        )
        # no cache at all
        assert (
            main(
                [
                    "admit", "--jsonl", str(batch_jsonl),
                    "--out", str(outs["c"]),
                    "--no-cache", "--workers", "1",
                ]
            )
            == 0
        )
        texts = [outs[name].read_text() for name in "abc"]
        assert texts[0] == texts[1] == texts[2]
        assert len(texts[0].splitlines()) == 6

    def test_stats_flag_reports_cache(self, batch_jsonl, capsys):
        assert (
            main(
                [
                    "admit", "--jsonl", str(batch_jsonl),
                    "--workers", "1", "--stats",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "admissions: 6 requests" in err
        assert "cache:" in err

    def test_request_documents_carry_their_options(self, tmp_path, capsys):
        from repro.service import AdmissionRequest, request_to_dict

        path = tmp_path / "requests.jsonl"
        request = AdmissionRequest(
            system=generate_system(LIGHT, 0),
            protocols=("RG",),
            request_id="only-rg",
        )
        path.write_text(json.dumps(request_to_dict(request)) + "\n")
        assert main(["admit", "--jsonl", str(path), "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "RG=" in out and "DS=" not in out


class TestAdmitBench:
    def test_reports_speedup(self, capsys):
        assert (
            main(
                [
                    "admit-bench",
                    "--systems", "8",
                    "--tasks", "4",
                    "--processors", "3",
                    "--workers", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cold cache:" in out
        assert "warm cache:" in out
        assert "speedup:" in out


class TestSuiteWorkers:
    COMMON = [
        "--systems", "2",
        "--subtasks", "2",
        "--utilizations", "0.5",
        "--tasks", "3",
        "--processors", "2",
        "--horizon-periods", "4",
    ]

    def test_parallel_suite_matches_serial(self, capsys):
        assert main(["suite", *self.COMMON]) == 0
        serial = capsys.readouterr().out
        assert main(["suite", *self.COMMON, "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert "Figure 12" in serial


class TestOneCallApi:
    def test_admit_single(self):
        decision = admit(generate_system(LIGHT, 0))
        assert decision.admitted
        assert decision.protocol in ("DS", "PM", "MPM", "RG")

    def test_admit_options_pass_through(self):
        decision = admit(generate_system(LIGHT, 0), protocols=("RG",))
        assert set(decision.schedulable) == {"RG"}

    def test_admit_many_matches_singles(self):
        systems = [generate_system(LIGHT, seed) for seed in range(3)]
        batch = admit_many(systems, workers=1)
        assert batch == [admit(system) for system in systems]

    def test_admit_many_reuses_cache(self):
        cache = DecisionCache()
        systems = [generate_system(LIGHT, seed) for seed in range(3)]
        admit_many(systems, workers=1, cache=cache)
        admit_many(systems, workers=1, cache=cache)
        assert cache.stats().hits == 3
