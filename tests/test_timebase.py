"""Unit tests for the pluggable arithmetic timebase layer."""

from __future__ import annotations

import math
import re
from fractions import Fraction
from pathlib import Path

import pytest

from repro.timebase import (
    ABS_EPS,
    EXACT,
    FLOAT,
    REL_EPS,
    ExactTimebase,
    FloatTimebase,
    canonical_number,
    fmt,
    get_timebase,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_timebase("float") is FLOAT
        assert get_timebase("exact") is EXACT

    def test_none_means_float(self):
        assert get_timebase(None) is FLOAT

    def test_instance_passthrough(self):
        assert get_timebase(EXACT) is EXACT

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown timebase"):
            get_timebase("decimal")

    def test_flags(self):
        assert not FLOAT.exact and FLOAT.name == "float"
        assert EXACT.exact and EXACT.name == "exact"


class TestFloatBackend:
    def test_convert_is_float(self):
        assert FloatTimebase().convert(3) == 3.0
        assert isinstance(FLOAT.convert(Fraction(1, 2)), float)

    def test_comparisons_have_relative_guard(self):
        t = 1000.0
        assert FLOAT.eq(t, t + REL_EPS * t / 2)
        assert not FLOAT.lt(t, t + REL_EPS * t / 2)
        assert FLOAT.lt(t, t + 3 * REL_EPS * t)
        assert FLOAT.leq(t + REL_EPS * t / 2, t)

    def test_sign_guards(self):
        assert not FLOAT.is_positive(ABS_EPS / 2)
        assert FLOAT.is_positive(2 * ABS_EPS)
        assert not FLOAT.is_negative(-REL_EPS / 2)
        assert FLOAT.is_negative(-2 * REL_EPS)

    def test_ceil_forgives_upward_noise(self):
        assert FLOAT.ceil(5.0000000000004) == 5
        assert FLOAT.ceil(5.1) == 6


class TestExactBackend:
    def test_integral_floats_become_ints(self):
        assert ExactTimebase().convert(5.0) == 5
        assert isinstance(EXACT.convert(5.0), int)
        assert isinstance(EXACT.convert(7), int)

    def test_non_integral_floats_become_exact_fractions(self):
        value = EXACT.convert(0.1)
        assert isinstance(value, Fraction)
        # as_integer_ratio is lossless: converting back is the identity.
        assert float(value) == 0.1
        assert value == Fraction(*(0.1).as_integer_ratio())

    def test_integral_fraction_collapses(self):
        assert EXACT.convert(Fraction(10, 2)) == 5
        assert isinstance(EXACT.convert(Fraction(10, 2)), int)

    def test_sentinels_pass_through(self):
        assert EXACT.convert(math.inf) == math.inf
        assert math.isnan(EXACT.convert(math.nan))

    def test_comparisons_are_exact(self):
        t = EXACT.convert(1000.0)
        assert not EXACT.eq(t, t + Fraction(1, 10**12))
        assert EXACT.lt(t, t + Fraction(1, 10**12))
        assert EXACT.eq(t, 1000)

    def test_no_noise_floor(self):
        assert EXACT.is_positive(Fraction(1, 10**18))
        assert EXACT.is_negative(Fraction(-1, 10**18))

    def test_ceil_is_plain(self):
        assert EXACT.ceil(Fraction(21, 10)) == 3
        assert EXACT.ceil(2) == 2

    def test_associativity_of_converted_arithmetic(self):
        # The PM-vs-completion identity: (phase + R) + m*p must equal
        # (phase + m*p) + R -- false for floats, true for rationals.
        phase, bound, period = 0.1, 0.2, 0.3
        assert (phase + bound) + period != phase + (bound + period)  # floats
        ea = (EXACT.convert(phase) + EXACT.convert(bound)) + EXACT.convert(period)
        eb = EXACT.convert(phase) + (EXACT.convert(bound) + EXACT.convert(period))
        assert ea == eb


class TestFormattingAndCanonical:
    def test_fmt_handles_all_value_kinds(self):
        assert fmt(2.5) == "2.5"
        assert fmt(Fraction(5, 2)) == "2.5"
        assert fmt(3) == "3"
        assert fmt(Fraction(10**400, 3))  # beyond float range, no raise

    def test_canonical_number(self):
        assert canonical_number(Fraction(1, 3)) == "1/3"
        assert canonical_number(Fraction(6, 3)) == 2
        assert canonical_number(2.5) == 2.5
        assert canonical_number(7) == 7

    def test_canonical_is_stable_across_equal_values(self):
        assert canonical_number(Fraction(2, 6)) == canonical_number(
            Fraction(1, 3)
        )


class TestEpsilonLint:
    def test_no_bare_epsilon_literals_outside_timebase(self):
        """Mirror of the CI grep lint: the shared tolerances are imported
        from repro.timebase, never re-spelled as literals."""
        pattern = re.compile(r"1e-0?9|1e-12")
        offenders = []
        for path in SRC_ROOT.rglob("*.py"):
            if path.is_relative_to(SRC_ROOT / "timebase"):
                continue
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if pattern.search(line):
                    offenders.append(f"{path}:{number}: {line.strip()}")
        assert not offenders, (
            "bare epsilon literal(s) outside repro/timebase -- import "
            "ABS_EPS/REL_EPS instead:\n" + "\n".join(offenders)
        )


class TestHashingCanonicalization:
    def test_fraction_parameters_hash_stably(self):
        from repro.model.system import System
        from repro.model.task import Subtask, Task
        from repro.service.hashing import system_key

        def build(period):
            return System(
                (
                    Task(
                        period=period,
                        subtasks=(Subtask(Fraction(1, 3), "P1", priority=0),),
                        name="t",
                    ),
                ),
                name="exact-ish",
            )

        key_a = system_key(build(Fraction(21, 2)))
        key_b = system_key(build(Fraction(42, 4)))  # equal after reduction
        assert key_a == key_b

    def test_integral_fraction_matches_int(self):
        # Fraction(10) canonicalizes to the int 10 -- but float 10.0 keys
        # differently (floats keep their historical byte-exact encoding).
        from repro.model.system import System
        from repro.model.task import Subtask, Task
        from repro.service.hashing import system_key

        def build(period):
            return System(
                (
                    Task(
                        period=period,
                        subtasks=(Subtask(1.0, "P1", priority=0),),
                        name="t",
                    ),
                ),
                name="s",
            )

        assert system_key(build(Fraction(10, 1))) == system_key(build(10))
