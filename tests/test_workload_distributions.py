"""Unit tests for the generator's statistical ingredients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.distributions import split_utilization, truncated_exponential


class TestTruncatedExponential:
    def test_values_within_range(self):
        rng = np.random.default_rng(0)
        values = truncated_exponential(rng, 100.0, 10_000.0, 3300.0, size=5000)
        assert values.min() >= 100.0
        assert values.max() <= 10_000.0

    def test_scalar_when_size_omitted(self):
        rng = np.random.default_rng(0)
        value = truncated_exponential(rng, 100.0, 10_000.0, 3300.0)
        assert isinstance(value, float)
        assert 100.0 <= value <= 10_000.0

    def test_skews_toward_short_periods(self):
        """The paper wants 'more variation than uniform': the exponential
        puts well over half its mass below the range midpoint."""
        rng = np.random.default_rng(1)
        values = truncated_exponential(rng, 100.0, 10_000.0, 3300.0, size=5000)
        assert np.mean(values < 5050.0) > 0.65

    def test_larger_scale_flattens(self):
        rng = np.random.default_rng(2)
        peaked = truncated_exponential(rng, 100.0, 10_000.0, 500.0, size=4000)
        rng = np.random.default_rng(2)
        flat = truncated_exponential(rng, 100.0, 10_000.0, 1e9, size=4000)
        assert peaked.mean() < flat.mean()
        # Near-infinite scale degenerates to uniform: mean near midpoint.
        assert flat.mean() == pytest.approx(5050.0, rel=0.05)

    def test_reproducible(self):
        a = truncated_exponential(
            np.random.default_rng(9), 100.0, 10_000.0, 3300.0, size=10
        )
        b = truncated_exponential(
            np.random.default_rng(9), 100.0, 10_000.0, 3300.0, size=10
        )
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "low,high,scale",
        [(0.0, 10.0, 1.0), (10.0, 5.0, 1.0), (1.0, 2.0, 0.0)],
    )
    def test_bad_parameters(self, low, high, scale):
        with pytest.raises(ConfigurationError):
            truncated_exponential(np.random.default_rng(0), low, high, scale)


class TestSplitUtilization:
    def test_shares_sum_to_total(self):
        rng = np.random.default_rng(3)
        shares = split_utilization(rng, 0.8, 7)
        assert sum(shares) == pytest.approx(0.8)

    def test_all_shares_positive(self):
        rng = np.random.default_rng(3)
        assert all(s > 0 for s in split_utilization(rng, 0.5, 20))

    def test_single_part_gets_everything(self):
        rng = np.random.default_rng(3)
        assert split_utilization(rng, 0.6, 1) == [pytest.approx(0.6)]

    def test_zero_total_allowed(self):
        rng = np.random.default_rng(3)
        assert split_utilization(rng, 0.0, 3) == [0.0, 0.0, 0.0]

    def test_weight_bounds_cap_imbalance(self):
        """With weights in [0.001, 1] a single subtask can dominate by at
        most a factor of 1000 over another."""
        rng = np.random.default_rng(4)
        shares = split_utilization(rng, 1.0, 50, 0.001, 1.0)
        assert max(shares) / min(shares) <= 1000.0 + 1e-6

    @pytest.mark.parametrize("parts", [0, -2])
    def test_bad_parts(self, parts):
        with pytest.raises(ConfigurationError):
            split_utilization(np.random.default_rng(0), 0.5, parts)

    def test_negative_total_rejected(self):
        with pytest.raises(ConfigurationError):
            split_utilization(np.random.default_rng(0), -0.5, 3)
