"""Unit tests for the paper's worked examples."""

from __future__ import annotations

import pytest

from repro.model.task import SubtaskId
from repro.workload.examples import example_two, monitor_task_example


class TestExampleTwo:
    def test_matches_figure_two(self):
        system = example_two()
        t1, t2, t3 = system.tasks
        assert (t1.period, t1.subtasks[0].execution_time) == (4.0, 2.0)
        assert (t2.period, t2.subtasks[0].execution_time) == (6.0, 2.0)
        assert t2.subtasks[1].execution_time == 3.0
        assert (t3.period, t3.subtasks[0].execution_time) == (6.0, 2.0)
        assert t3.phase == 4.0

    def test_priorities_match_figure_two(self):
        system = example_two()
        # On P1: T1 above T2,1; on P2: T2,2 above T3.
        assert system.subtask(SubtaskId(0, 0)).priority < system.subtask(
            SubtaskId(1, 0)
        ).priority
        assert system.subtask(SubtaskId(1, 1)).priority < system.subtask(
            SubtaskId(2, 0)
        ).priority

    def test_placement(self):
        system = example_two()
        assert system.subtasks_on("P1") == (SubtaskId(0, 0), SubtaskId(1, 0))
        assert system.subtasks_on("P2") == (SubtaskId(1, 1), SubtaskId(2, 0))

    def test_deadlines_equal_periods(self):
        for task in example_two().tasks:
            assert task.relative_deadline == task.period


class TestMonitorExample:
    def test_three_stages_three_processors(self):
        system = monitor_task_example()
        task = system.tasks[0]
        assert task.chain_length == 3
        assert task.processors() == ("field", "link", "central")

    def test_stage_names_from_figure_one(self):
        system = monitor_task_example()
        names = [stage.name for stage in system.tasks[0].subtasks]
        assert names == ["sample", "transfer", "display"]

    def test_custom_timings(self):
        system = monitor_task_example(
            period=50.0, sample_time=1.0, transfer_time=2.0, display_time=3.0
        )
        task = system.tasks[0]
        assert task.period == 50.0
        assert task.total_execution_time == pytest.approx(6.0)

    def test_schedulable_under_every_protocol(self):
        from repro.api import compare_protocols

        results = compare_protocols(
            monitor_task_example(), ("DS", "PM", "MPM", "RG"), horizon=200.0
        )
        for result in results.values():
            assert result.metrics.task(0).deadline_misses == 0
            assert result.metrics.precedence_violations == 0
