"""The region tier inside the service: controller and frontend paths.

Pin the lookup order (decision cache, region tier, compute), the
documented ways region-backed decisions differ from computed ones, the
determined-only serving contract (genuine REJECTs fall through), the
build-threshold economics, and the metrics/observability wiring.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.errors import ConfigurationError
from repro.regions.shape import execution_vector, system_at
from repro.regions.tier import RegionTier
from repro.service.engine import AdmissionController, compute_decision
from repro.service.frontend import AdmissionFrontend, FrontendConfig
from repro.service.requests import ALL_PROTOCOLS, AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)


def _request(scale: float = 1.0, seed: int = 5, **options) -> AdmissionRequest:
    system = generate_system(LIGHT, seed)
    if scale != 1.0:
        system = system_at(
            system, tuple(scale * e for e in execution_vector(system))
        )
    return AdmissionRequest(system=system, **options)


class TestControllerIntegration:
    def test_region_tier_is_off_by_default(self):
        controller = AdmissionController()
        assert controller.regions is None
        decision = controller.admit(_request())
        assert decision.margins is None

    def test_lookup_order_and_region_decision_fields(self):
        controller = AdmissionController(
            region_backend="memory", region_build_threshold=2
        )
        first = controller.admit(_request(1.0))
        second = controller.admit(_request(0.9))  # same shape, new point
        assert first.margins is None and second.margins is None
        snapshot = controller.metrics.snapshot()
        assert snapshot["region_builds"] == 1
        assert snapshot["region_misses"] == 2
        assert snapshot["region_probes"] > 0

        third = controller.admit(_request(0.8))
        assert third.admitted
        assert third.margins is not None
        assert third.task_bounds == {}
        assert third.worst_bound_ratio == math.inf
        assert third.protocol in ALL_PROTOCOLS
        assert "region tier" in third.rationale
        for per_dim in third.margins.values():
            assert all(headroom >= 0 for headroom in per_dim.values())
        snapshot = controller.metrics.snapshot()
        assert snapshot["region_hits"] == 1
        assert snapshot["cache_hits"] == 0

    def test_region_verdict_agrees_with_direct_computation(self):
        controller = AdmissionController(
            region_backend="memory", region_build_threshold=1
        )
        controller.admit(_request(1.0))
        request = _request(0.85)
        regional = controller.admit(request)
        direct = compute_decision(request)
        assert regional.margins is not None  # really region-served
        assert regional.admitted == direct.admitted
        assert regional.schedulable == direct.schedulable

    def test_region_decisions_are_not_cached(self):
        controller = AdmissionController(
            region_backend="memory", region_build_threshold=1
        )
        controller.admit(_request(1.0))
        regional = controller.admit(_request(0.9))
        assert regional.margins is not None
        assert controller.cache.get(regional.key) is None
        # Serving the same request again stays a region hit, not a
        # decision-cache hit.
        again = controller.admit(_request(0.9))
        assert again.margins is not None
        assert controller.metrics.snapshot()["cache_hits"] == 0

    def test_uncovered_point_falls_back_to_computation(self):
        controller = AdmissionController(
            region_backend="memory", region_build_threshold=1
        )
        controller.admit(_request(1.0))
        heavy = controller.admit(_request(40.0))  # far outside any box
        assert heavy.margins is None
        assert not heavy.admitted  # genuine REJECT came from analysis
        assert controller.metrics.snapshot()["region_fallbacks"] >= 1

    def test_all_shape_gated_reject_is_served(self):
        # PM under unsynchronized clocks is False by shape alone: the
        # region needs no analyses and may serve the REJECT directly.
        options = {"protocols": ("PM",), "synchronized_clocks": False}
        controller = AdmissionController(
            region_backend="memory", region_build_threshold=1
        )
        controller.admit(_request(1.0, **options))
        served = controller.admit(_request(0.9, **options))
        assert served.margins == {}
        assert not served.admitted
        assert served.protocol is None
        assert controller.metrics.snapshot()["region_hits"] == 1

    def test_build_threshold_counts_shapes(self):
        controller = AdmissionController(
            region_backend="memory", region_build_threshold=3
        )
        controller.admit(_request(1.0))
        controller.admit(_request(0.9))
        assert len(controller.regions.store) == 0
        controller.admit(_request(0.95))
        assert len(controller.regions.store) == 1
        assert controller.admit(_request(0.8)).margins is not None

    def test_prebuilt_tier_inherits_controller_metrics(self):
        tier = RegionTier(build_threshold=1)
        controller = AdmissionController(region_tier=tier)
        assert controller.regions is tier
        assert tier.metrics is controller.metrics

    def test_describe_mentions_regions(self):
        controller = AdmissionController(region_backend="memory")
        assert "regions:" in controller.describe()
        assert "regions:" not in AdmissionController().describe()


class TestTierUnit:
    def test_lookup_miss_before_any_build(self):
        tier = RegionTier(build_threshold=1)
        assert tier.lookup(_request()) is None

    def test_timebase_mismatch_never_serves(self):
        tier = RegionTier(build_threshold=1, timebase="exact")
        request = _request(1.0)
        tier.build(request)
        float_tier = RegionTier(store=tier.store, build_threshold=1)
        assert float_tier.lookup(_request(0.9)) is None

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            RegionTier(build_threshold=0)


class TestFrontendIntegration:
    def _run(self, config, requests):
        async def go():
            async with AdmissionFrontend(config) as frontend:
                decisions = [await frontend.admit(r) for r in requests]
                return decisions, frontend.snapshot(), frontend.describe()

        return asyncio.run(go())

    def test_region_hits_and_snapshot(self):
        config = FrontendConfig(
            shards=1,
            region_backend="memory",
            region_build_threshold=1,
        )
        requests = [_request(1.0), _request(0.9), _request(0.8)]
        decisions, snapshot, description = self._run(config, requests)
        assert decisions[0].margins is None
        assert decisions[1].margins is not None
        assert decisions[2].margins is not None
        assert decisions[1].admitted
        assert snapshot["regions"]["size"] == 1
        assert snapshot["regions"]["hits"] >= 2
        assert snapshot["aggregate"]["region_hits"] == 2
        assert snapshot["aggregate"]["cache_hits"] == 0
        assert "regions:" in description

    def test_region_tier_off_by_default(self):
        decisions, snapshot, description = self._run(
            FrontendConfig(shards=1), [_request(1.0)]
        )
        assert decisions[0].margins is None
        assert "regions" not in snapshot
        assert "regions:" not in description

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="region backend"):
            FrontendConfig(region_backend="redis")

    def test_config_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError, match="build_threshold"):
            FrontendConfig(
                region_backend="memory", region_build_threshold=0
            )
