"""Unit tests for trace metrics."""

from __future__ import annotations

import math

import pytest

from repro.api import run_protocol
from repro.errors import SimulationError
from repro.model.task import SubtaskId
from repro.sim.metrics import compute_metrics, max_observed_response_time, output_jitter
from repro.sim.tracing import Trace


class TestOutputJitter:
    def test_empty_and_singleton_are_zero(self):
        assert output_jitter([]) == 0.0
        assert output_jitter([5.0]) == 0.0

    def test_max_consecutive_difference(self):
        assert output_jitter([5.0, 7.0, 6.5]) == pytest.approx(2.0)

    def test_absolute_difference(self):
        assert output_jitter([7.0, 3.0, 4.0]) == pytest.approx(4.0)

    def test_non_adjacent_differences_ignored(self):
        # 1 -> 2 -> 3: consecutive deltas are 1, total spread 2.
        assert output_jitter([1.0, 2.0, 3.0]) == pytest.approx(1.0)


class TestComputeMetrics:
    def test_example2_ds_metrics(self, example2):
        result = run_protocol(example2, "DS", horizon=60.0)
        metrics = result.metrics
        # T1 is the highest-priority single subtask: EER always 2.
        assert metrics.task(0).average_eer == pytest.approx(2.0)
        assert metrics.task(0).max_eer == pytest.approx(2.0)
        assert metrics.task(0).min_eer == pytest.approx(2.0)
        assert metrics.task(0).output_jitter == 0.0
        assert metrics.task(0).deadline_misses == 0

    def test_t3_misses_under_ds(self, example2):
        result = run_protocol(example2, "DS", horizon=60.0)
        t3 = result.metrics.task(2)
        assert t3.deadline_misses > 0
        assert t3.miss_ratio > 0
        assert t3.max_eer == pytest.approx(8.0)

    def test_total_deadline_misses(self, example2):
        result = run_protocol(example2, "DS", horizon=60.0)
        assert result.metrics.total_deadline_misses == sum(
            task.deadline_misses for task in result.metrics.tasks
        )

    def test_no_completions_yields_nan(self, example2):
        trace = Trace(example2, horizon=1.0)
        metrics = compute_metrics(trace)
        assert math.isnan(metrics.task(0).average_eer)
        assert metrics.task(0).completed_instances == 0
        assert metrics.any_incomplete

    def test_warmup_excludes_early_instances(self, example2):
        result = run_protocol(example2, "DS", horizon=60.0)
        full = compute_metrics(result.trace, warmup=0.0)
        late = compute_metrics(result.trace, warmup=30.0)
        assert late.task(0).completed_instances < full.task(0).completed_instances

    def test_negative_warmup_rejected(self, example2):
        trace = Trace(example2, horizon=1.0)
        with pytest.raises(SimulationError):
            compute_metrics(trace, warmup=-1.0)

    def test_violations_counted(self, example2):
        result = run_protocol(example2, "RG", horizon=60.0)
        assert result.metrics.precedence_violations == 0

    def test_average_eer_vector_order(self, example2):
        result = run_protocol(example2, "DS", horizon=60.0)
        vector = result.metrics.average_eer_vector()
        assert len(vector) == 3
        assert vector[0] == pytest.approx(2.0)

    def test_miss_ratio_zero_when_no_instances(self, example2):
        trace = Trace(example2, horizon=1.0)
        metrics = compute_metrics(trace)
        assert metrics.task(0).miss_ratio == 0.0


class TestMaxObservedResponseTime:
    def test_zero_when_never_completed(self, example2):
        trace = Trace(example2, horizon=1.0)
        assert max_observed_response_time(trace, SubtaskId(0, 0)) == 0.0

    def test_reports_worst_instance(self, example2):
        result = run_protocol(example2, "DS", horizon=60.0)
        worst = max_observed_response_time(result.trace, SubtaskId(2, 0))
        # T3's worst response under DS is 8 (Fig. 3).
        assert worst == pytest.approx(8.0)
