"""Tests for the fuzzer's clock/latency environment dimension."""

from __future__ import annotations

import pytest

from repro.clocks import ClockConfig
from repro.errors import ConfigurationError
from repro.fuzz.campaign import CLOCK_ROTATIONS, run_campaign
from repro.fuzz.oracles import check_case
from repro.fuzz.runner import build_case
from repro.fuzz.skew import (
    DEFAULT_SKEW_CONFIG,
    find_pm_miss_under_skew,
)
from repro.workload.generator import generate_system


@pytest.fixture(scope="module")
def system():
    return generate_system(DEFAULT_SKEW_CONFIG, seed=1)


class TestBuildCaseEnvironment:
    def test_perfect_clock_config_case(self, system):
        case = build_case(system, clocks=ClockConfig())
        assert case.clocks_perfect
        assert case.ideal
        assert case.sa_pm_skew is None  # perfect clocks: no skewed result
        failures, checked = check_case(case)
        assert not failures
        assert "clock-perfect-identity" in checked

    def test_offset_clocks_produce_skewed_analysis(self, system):
        case = build_case(
            system, clocks=ClockConfig(kind="offset", offset=40.0)
        )
        assert not case.clocks_perfect
        assert not case.ideal
        assert case.sa_pm_skew is not None
        assert case.sa_pm_skew.algorithm == "SA/PM-skew"
        failures, checked = check_case(case)
        assert not failures
        assert "sa-pm-skew-soundness" in checked
        # The strict Section-3 identity oracles must have gated out.
        assert "clock-perfect-identity" not in checked

    def test_label_carries_the_environment(self, system):
        case = build_case(
            system,
            clocks=ClockConfig(kind="offset", offset=40.0),
            latency=0.5,
        )
        assert "offset" in case.label
        assert "latency=0.5" in case.label

    def test_negative_latency_rejected(self, system):
        with pytest.raises(ConfigurationError):
            build_case(system, latency=-1.0)


class TestCampaignRotation:
    def test_skew_rotation_runs_clean(self):
        report = run_campaign(
            runs=5,
            base_seed=0,
            workers=1,
            clocks="skew",
            shrink=False,
        )
        assert report.ok
        assert report.runs == 5

    def test_unknown_rotation_name_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(runs=1, workers=1, clocks="no-such-rotation")

    def test_empty_rotation_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(runs=1, workers=1, clocks=())

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(runs=1, workers=1, latencies=(-0.5,))

    def test_skew_rotation_contents(self):
        rotation = CLOCK_ROTATIONS["skew"]
        # The rotation must include a no-plumbing case, an explicitly
        # perfect config (the identity oracle's food) and at least one
        # genuinely imperfect clock.
        assert None in rotation
        assert any(c is not None and c.is_perfect for c in rotation)
        assert any(c is not None and not c.is_perfect for c in rotation)


class TestSkewFinder:
    def test_finds_a_witness(self):
        witness = find_pm_miss_under_skew(max_seeds=5)
        assert witness is not None
        assert witness.seed == 1  # deterministic: same config, same seed
        assert witness.pm_misses > 0
        # Under perfect clocks the same system ran PM cleanly.
        perfect_pm = witness.perfect_case.results["PM"]
        assert perfect_pm.metrics.total_deadline_misses == 0
        assert not perfect_pm.trace.violations

    def test_describe_reads_like_a_finding(self):
        witness = find_pm_miss_under_skew(max_seeds=5)
        text = witness.describe()
        assert "seed=1" in text
        assert "deadline miss" in text
        assert "MPM/RG" in text
