"""Unit tests for fault-environment configurations and their codecs."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    OVERRUN_POLICIES,
    FaultConfig,
    fault_config_from_dict,
    fault_config_to_dict,
)


class TestValidation:
    def test_defaults_are_null(self):
        config = FaultConfig()
        assert config.is_null
        assert not config.crashes
        assert not config.signal_faults_only

    @pytest.mark.parametrize(
        "field", ["drop_rate", "duplicate_rate", "reorder_rate",
                  "timer_loss_rate", "overrun_rate"]
    )
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: 1.5})
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: -0.1})
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: float("nan")})

    def test_reorder_delay_positive(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(reorder_delay=0.0)

    def test_ack_timeout_positive(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(ack_timeout=-1.0)

    def test_crash_needs_duration(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(crash_start=10.0, crash_duration=0.0)

    def test_crash_period_must_exceed_duration(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(crash_start=10.0, crash_duration=5.0,
                        crash_every=5.0)

    def test_overrun_factor_must_overrun(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(overrun_factor=1.0)

    def test_unknown_overrun_policy(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(overrun_policy="panic")

    def test_negative_max_retransmits(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(max_retransmits=-1)

    def test_catalog_constants(self):
        assert "drop" in FAULT_KINDS
        assert OVERRUN_POLICIES == ("off", "throttle", "abort")


class TestClassification:
    def test_recovery_knobs_do_not_affect_nullness(self):
        config = FaultConfig(watchdog=True, suppress_duplicates=True,
                             overrun_policy="throttle")
        assert config.is_null

    def test_idle_loss_is_a_fault(self):
        assert not FaultConfig(lose_idle_points=True).is_null

    def test_signal_faults_only(self):
        assert FaultConfig(drop_rate=0.2, duplicate_rate=0.1).signal_faults_only
        assert not FaultConfig(drop_rate=0.2,
                               timer_loss_rate=0.1).signal_faults_only
        assert not FaultConfig().signal_faults_only

    def test_full_signal_recovery(self):
        assert not FaultConfig(watchdog=True).full_signal_recovery
        assert FaultConfig(
            watchdog=True, suppress_duplicates=True
        ).full_signal_recovery

    def test_with_recovery_toggles_everything(self):
        base = FaultConfig(drop_rate=0.2, overrun_rate=0.1)
        armed = base.with_recovery(True)
        assert armed.watchdog and armed.suppress_duplicates
        assert armed.overrun_policy == "throttle"
        disarmed = armed.with_recovery(False)
        assert not disarmed.watchdog and not disarmed.suppress_duplicates
        assert disarmed.overrun_policy == "off"
        # Injection knobs are untouched by the toggle.
        assert disarmed.drop_rate == base.drop_rate

    def test_label_names_active_faults_and_recovery(self):
        label = FaultConfig(
            drop_rate=0.2, watchdog=True, suppress_duplicates=True
        ).label
        assert "drop(0.2)" in label
        assert "wd" in label and "dedup" in label
        assert FaultConfig().label == "faults=null"


class TestCodecs:
    def test_round_trip(self):
        config = FaultConfig(
            drop_rate=0.25,
            reorder_rate=0.1,
            reorder_delay=5.0,
            crash_start=100.0,
            crash_duration=20.0,
            crash_every=400.0,
            watchdog=True,
            overrun_policy="abort",
            seed=7,
        )
        assert fault_config_from_dict(fault_config_to_dict(config)) == config

    def test_bad_format_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_config_from_dict({"format": "something-else"})

    def test_picklable_for_pool_workers(self):
        config = FaultConfig(drop_rate=0.3, watchdog=True)
        assert pickle.loads(pickle.dumps(config)) == config
