"""Unit tests for execution-time and release-jitter models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.model.task import SubtaskId
from repro.sim.variation import (
    DeterministicExecution,
    NoJitter,
    OverrunInjection,
    TruncatedNormalExecution,
    UniformReleaseJitter,
    UniformScaledExecution,
)

SID = SubtaskId(0, 0)
OTHER = SubtaskId(1, 0)


class TestDeterministic:
    def test_returns_wcet(self):
        assert DeterministicExecution().duration(SID, 3, 4.2) == 4.2


class TestUniformScaled:
    def test_stays_in_bounds(self):
        model = UniformScaledExecution(0.4, 0.9, seed=7)
        for instance in range(200):
            duration = model.duration(SID, instance, 10.0)
            assert 4.0 <= duration <= 9.0

    def test_reproducible_from_seed(self):
        a = UniformScaledExecution(0.5, 1.0, seed=3)
        b = UniformScaledExecution(0.5, 1.0, seed=3)
        assert [a.duration(SID, i, 5.0) for i in range(10)] == [
            b.duration(SID, i, 5.0) for i in range(10)
        ]

    def test_overrun_range_allowed(self):
        model = UniformScaledExecution(1.0, 1.5, seed=1)
        assert model.duration(SID, 0, 2.0) >= 2.0

    @pytest.mark.parametrize("lo,hi", [(0.0, 1.0), (-1.0, 1.0), (0.9, 0.5)])
    def test_bad_bounds_rejected(self, lo, hi):
        with pytest.raises(ConfigurationError):
            UniformScaledExecution(lo, hi)


class TestTruncatedNormal:
    def test_never_exceeds_wcet(self):
        model = TruncatedNormalExecution(0.9, 0.5, seed=11)
        assert all(
            model.duration(SID, i, 7.0) <= 7.0 for i in range(500)
        )

    def test_always_positive(self):
        model = TruncatedNormalExecution(0.1, 0.5, seed=11)
        assert all(model.duration(SID, i, 7.0) > 0 for i in range(500))

    def test_bad_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            TruncatedNormalExecution(mean_fraction=0.0)

    def test_bad_std_rejected(self):
        with pytest.raises(ConfigurationError):
            TruncatedNormalExecution(std_fraction=-0.1)


class TestOverrunInjection:
    def test_targets_only_selected_subtask(self):
        model = OverrunInjection(SID, factor=2.0)
        assert model.duration(SID, 0, 3.0) == 6.0
        assert model.duration(OTHER, 0, 3.0) == 3.0

    def test_every_k_instances(self):
        model = OverrunInjection(SID, factor=2.0, every=3)
        durations = [model.duration(SID, i, 1.0) for i in range(6)]
        assert durations == [2.0, 1.0, 1.0, 2.0, 1.0, 1.0]

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            OverrunInjection(SID, factor=0.0)

    def test_bad_every_rejected(self):
        with pytest.raises(ConfigurationError):
            OverrunInjection(SID, factor=2.0, every=0)


class TestReleaseJitter:
    def test_no_jitter_is_zero(self):
        assert NoJitter().jitter(0, 5) == 0.0

    def test_uniform_jitter_bounded(self):
        model = UniformReleaseJitter(3.0, seed=5)
        values = [model.jitter(0, i) for i in range(200)]
        assert all(0.0 <= v <= 3.0 for v in values)
        assert max(values) > 1.0  # actually varies

    def test_zero_bound_degenerates(self):
        model = UniformReleaseJitter(0.0, seed=5)
        assert model.jitter(0, 0) == 0.0

    def test_negative_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformReleaseJitter(-1.0)
