"""Unit tests for admission request/decision codecs and JSONL IO."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.io import system_to_dict
from repro.service.engine import compute_decision
from repro.service.requests import (
    AdmissionRequest,
    decision_from_dict,
    decision_to_dict,
    load_decisions_jsonl,
    load_requests_jsonl,
    request_from_dict,
    request_to_dict,
    save_decisions_jsonl,
)


class TestRequestCodec:
    def test_round_trip(self, small_system):
        request = AdmissionRequest(
            system=small_system,
            protocols=("DS", "RG"),
            jitter_sensitive=True,
            wcets_trusted=False,
            sa_ds_max_iterations=50,
            request_id="r-9",
        )
        assert request_from_dict(request_to_dict(request)) == request

    def test_accepts_bare_system_document(self, small_system):
        request = request_from_dict(system_to_dict(small_system))
        assert request.system == small_system
        assert request.protocols == ("DS", "PM", "MPM", "RG")

    def test_rejects_unknown_format(self):
        with pytest.raises(ConfigurationError):
            request_from_dict({"format": "nope"})

    def test_protocols_normalized(self, small_system):
        request = AdmissionRequest(
            system=small_system, protocols=("rg", "ds", "RG")
        )
        assert request.protocols == ("DS", "RG")


class TestDecisionCodec:
    def test_round_trip(self, small_system):
        decision = compute_decision(AdmissionRequest(system=small_system))
        assert decision_from_dict(decision_to_dict(decision)) == decision

    def test_round_trip_with_infinite_bounds(self, example2):
        # Example 2's SA/DS bound for T3 is finite, so force infinity via
        # a tiny iteration budget on a system that needs more.
        decision = compute_decision(
            AdmissionRequest(system=example2, sa_ds_max_iterations=1)
        )
        again = decision_from_dict(decision_to_dict(decision))
        assert again == decision
        assert json.dumps(decision_to_dict(decision))  # strict JSON safe

    def test_rejects_unknown_format(self):
        with pytest.raises(ConfigurationError):
            decision_from_dict({"format": "nope"})

    def test_describe_admit_and_reject(self, two_stage_pipeline, example2):
        yes = compute_decision(AdmissionRequest(system=two_stage_pipeline))
        no = compute_decision(AdmissionRequest(system=example2))
        assert "ADMIT under DS" in yes.describe()
        assert "REJECT" in no.describe()


class TestJsonl:
    def test_request_stream_round_trip(self, tmp_path, small_system):
        path = tmp_path / "requests.jsonl"
        documents = [
            json.dumps(request_to_dict(AdmissionRequest(
                system=small_system, request_id="full"
            ))),
            json.dumps(system_to_dict(small_system)),
            "",  # blank lines are skipped
        ]
        path.write_text("\n".join(documents) + "\n")
        requests = load_requests_jsonl(path)
        assert len(requests) == 2
        assert requests[0].request_id == "full"
        assert requests[1].system == small_system

    def test_bad_line_reports_line_number(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ConfigurationError, match=":1:"):
            load_requests_jsonl(path)

    def test_decisions_round_trip(self, tmp_path, small_system, example2):
        decisions = [
            compute_decision(AdmissionRequest(system=small_system)),
            compute_decision(AdmissionRequest(system=example2)),
        ]
        path = tmp_path / "decisions.jsonl"
        save_decisions_jsonl(decisions, path)
        assert load_decisions_jsonl(path) == decisions

    def test_empty_decisions_file(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        save_decisions_jsonl([], path)
        assert load_decisions_jsonl(path) == []


class TestClockFields:
    def test_round_trip_with_clock_fields(self, small_system):
        request = AdmissionRequest(
            system=small_system,
            synchronized_clocks=False,
            clock_rate_bound=1e-4,
            clock_jump_bound=2.5,
        )
        assert request_from_dict(request_to_dict(request)) == request

    def test_old_format_defaults_to_synchronized(self, small_system):
        # A pre-clock request document carries none of the three fields;
        # decoding must behave exactly as the old service did.
        document = request_to_dict(AdmissionRequest(system=small_system))
        for field in (
            "synchronized_clocks",
            "clock_rate_bound",
            "clock_jump_bound",
        ):
            document.pop(field, None)
        request = request_from_dict(document)
        assert request.synchronized_clocks is True
        assert request.clock_rate_bound == 0.0
        assert request.clock_jump_bound == 0.0

    def test_rate_bound_validated(self, small_system):
        for bad in (1.0, -0.1, math.inf, math.nan):
            with pytest.raises(ConfigurationError):
                AdmissionRequest(system=small_system, clock_rate_bound=bad)

    def test_jump_bound_validated(self, small_system):
        for bad in (-1.0, math.inf, math.nan):
            with pytest.raises(ConfigurationError):
                AdmissionRequest(system=small_system, clock_jump_bound=bad)


class TestValidation:
    def test_sa_ds_iteration_budget_validated(self, small_system):
        with pytest.raises(ConfigurationError):
            AdmissionRequest(system=small_system, sa_ds_max_iterations=0)

    def test_ratio_survives_strict_json(self, example2):
        decision = compute_decision(AdmissionRequest(system=example2))
        encoded = json.dumps(decision_to_dict(decision), allow_nan=False)
        rebuilt = decision_from_dict(json.loads(encoded))
        assert rebuilt.worst_bound_ratio == decision.worst_bound_ratio
        assert math.isfinite(rebuilt.worst_bound_ratio) or math.isinf(
            rebuilt.worst_bound_ratio
        )