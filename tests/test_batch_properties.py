"""Property tests (hypothesis) for the batch engine's building blocks.

Two foundations carry the batch engine's trace-identity proof, and each
gets pinned here independently of the engine:

* the **calendar queue** must pop the exact total order the reference
  kernel's binary heap produces -- time first, then event class
  (completions < timers < environment releases < signals), then push
  FIFO -- including under heavy timestamp ties and same-instant pushes
  into the active bucket; and
* the **packed trace codec** must round-trip: ``decode(encode(trace))``
  equals the original trace for any reference run, and re-encoding the
  decoded trace is byte-identical to the first packing.

A third property closes the loop end to end on random workloads: the
batch engine's packing equals the encoded reference trace bit for bit.
"""

from __future__ import annotations

from heapq import heappop, heappush

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import run_protocol
from repro.sim.batch import encode
from repro.sim.batch.calendar import CalendarQueue
from repro.timebase import get_timebase
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

configs = st.builds(
    WorkloadConfig,
    subtasks_per_task=st.integers(1, 3),
    utilization=st.floats(0.3, 0.85),
    tasks=st.integers(2, 5),
    processors=st.integers(2, 3),
    random_phases=st.booleans(),
).filter(
    # Random placement must be able to cover every processor comfortably.
    lambda c: c.tasks * c.subtasks_per_task >= 2 * c.processors
)

seeds = st.integers(0, 10_000)
protocols = st.sampled_from(["DS", "PM", "MPM", "RG"])

SIM_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Event times are drawn from a coarse integer grid so collisions are
#: the rule, not the exception -- ties are where the class-then-FIFO
#: order can break.
_HORIZON = 50.0
_GRID = 25

# A scripted queue workload: the initial event batch, then rounds of
# (pops to perform, future-offset grid points for the next pushes).
# Offsets of 0 land *at* the current time -- the same-instant pushes
# that go through heappush into the active bucket.
_event = st.tuples(st.integers(0, _GRID), st.integers(0, 3))
_workload = st.tuples(
    st.lists(_event, max_size=30),
    st.lists(
        st.tuples(
            st.integers(1, 5),
            st.lists(st.integers(0, _GRID), max_size=6),
        ),
        max_size=10,
    ),
    st.integers(1, 300),  # expected_events sizing hint (bucket density)
)


@given(workload=_workload)
@settings(max_examples=300, deadline=None)
def test_calendar_pop_order_matches_heapq(workload):
    """The calendar queue is order-equivalent to the reference heap.

    Pushes are monotone (every new event lands at or after the last
    popped time -- the kernel's own discipline) but otherwise
    adversarial: dense ties across all four event classes, same-instant
    pushes into the active bucket, times clamped past the horizon, and
    bucket counts from 1 (one big heap) to hundreds (one event each).
    """
    initial, rounds, expected = workload
    calendar = CalendarQueue(_HORIZON, expected_events=expected)
    heap: list[tuple] = []
    seq = 0
    scale = _HORIZON / _GRID

    def push(time: float, cls: int) -> None:
        nonlocal seq
        event = (time, cls, seq)
        seq += 1
        calendar.push(event)
        heappush(heap, event)

    for grid_point, cls in initial:
        push(grid_point * scale, cls)
    now = 0.0
    for pops, offsets in rounds:
        for _ in range(pops):
            expected_event = heappop(heap) if heap else None
            got = calendar.pop()
            assert got == expected_event
            assert len(calendar) == len(heap)
            if expected_event is not None:
                now = expected_event[0]
        for offset in offsets:
            # cls reuses the offset modulo 4: correlated, but ordering
            # only cares that all classes appear, which they do.
            push(now + offset * scale, offset % 4)
    while heap:
        assert calendar.pop() == heappop(heap)
    assert calendar.pop() is None


@given(
    config=configs,
    seed=seeds,
    protocol=protocols,
    segments=st.booleans(),
)
@SIM_SETTINGS
def test_packed_trace_round_trip(config, seed, protocol, segments):
    """decode(encode(trace)) == trace, and re-encoding is byte-stable."""
    system = generate_system(config, seed)
    result = run_protocol(
        system,
        protocol,
        horizon_periods=4.0,
        record_segments=segments,
    )
    packed = encode(result.trace)
    decoded = packed.decode(system, timebase=get_timebase("float"))
    assert decoded == result.trace
    assert encode(decoded).identical(packed)


@given(config=configs, seed=seeds, protocol=protocols)
@SIM_SETTINGS
def test_batch_engine_trace_identical_on_random_workloads(
    config, seed, protocol
):
    """End to end: the batch packing equals the encoded reference trace."""
    system = generate_system(config, seed)
    kwargs = dict(horizon_periods=4.0, record_segments=True)
    reference = run_protocol(system, protocol, engine="reference", **kwargs)
    batch = run_protocol(system, protocol, engine="batch", **kwargs)
    assert batch.engine == "batch", batch.engine_fallback
    assert batch.events_processed == reference.events_processed
    expected = encode(reference.trace)
    packed = batch.packed_trace
    assert expected.identical(packed), expected.describe_diff(packed)
    assert batch.metrics == reference.metrics
