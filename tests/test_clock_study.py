"""Tests for the clock-study experiment (`repro.experiments.clock_study`)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.clock_study import (
    STUDY_PROTOCOLS,
    run_clock_study,
)


@pytest.fixture(scope="module")
def study():
    # Two systems, two sweep points: small enough for tier-1, large
    # enough to exercise the perfect baseline and one skewed column.
    return run_clock_study(systems=2, precisions=(0.0, 10.0))


class TestSweepShape:
    def test_cells_cover_the_full_grid(self, study):
        assert study.precisions == (0.0, 10.0)
        assert set(study.cells) == {
            (protocol, precision)
            for protocol in STUDY_PROTOCOLS
            for precision in study.precisions
        }
        assert study.sampled_systems == 2

    def test_every_cell_saw_work(self, study):
        for cell in study.cells.values():
            assert cell.completed_instances > 0
            assert cell.systems == 2

    def test_only_schedulable_systems_are_sampled(self, study):
        # The scanner skips SA/PM-rejected seeds; the default family at
        # utilization 0.6 rejects some, so the counter must be honest.
        assert study.skipped_systems >= 0


class TestBaseline:
    def test_perfect_clocks_are_clean_for_all_protocols(self, study):
        # Precision 0 is the identity baseline over SA/PM-accepted
        # systems: nothing may miss or violate.
        for protocol in STUDY_PROTOCOLS:
            cell = study.cell(protocol, 0.0)
            assert cell.deadline_misses == 0
            assert cell.precedence_violations == 0
            assert cell.bound_exceedances == 0
            assert cell.miss_ratio == 0.0

    def test_mpm_rg_stay_within_skewed_bounds(self, study):
        for protocol in ("MPM", "RG"):
            assert study.cell(protocol, 10.0).bound_exceedances == 0


class TestRendering:
    def test_render_mentions_the_separation_verdict(self, study):
        text = study.render()
        assert "separation demonstrated:" in text
        for protocol in STUDY_PROTOCOLS:
            assert protocol in text

    def test_miss_ratio_of_empty_cell_is_zero(self):
        from repro.experiments.clock_study import ClockStudyCell

        cell = ClockStudyCell(
            protocol="PM",
            precision=1.0,
            completed_instances=0,
            deadline_misses=0,
            precedence_violations=0,
            systems=1,
        )
        assert cell.miss_ratio == 0.0


class TestValidation:
    def test_systems_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_clock_study(systems=0)

    def test_precisions_must_be_nonempty(self):
        with pytest.raises(ConfigurationError):
            run_clock_study(precisions=())

    def test_precisions_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError):
            run_clock_study(precisions=(0.0, -1.0))
