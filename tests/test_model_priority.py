"""Unit tests for priority-assignment policies."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.model.priority import (
    POLICIES,
    assign_by_key,
    deadline_monotonic,
    equal_flexibility,
    get_policy,
    proportional_deadline,
    proportional_deadline_monotonic,
    rate_monotonic,
)
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task


def _two_chain_system() -> System:
    """Two 2-stage tasks crossing processors A and B."""
    t1 = Task(
        period=10.0,
        subtasks=(Subtask(1.0, "A"), Subtask(4.0, "B")),
        name="light-then-heavy",
    )
    t2 = Task(
        period=20.0,
        subtasks=(Subtask(6.0, "A"), Subtask(2.0, "B")),
        name="heavy-then-light",
    )
    return System((t1, t2))


class TestProportionalDeadline:
    def test_shares_deadline_by_execution_time(self):
        system = _two_chain_system()
        # T1: total 5, deadline 10 -> PD of stage 1 = 1/5 * 10 = 2.
        assert proportional_deadline(system, SubtaskId(0, 0)) == pytest.approx(2.0)
        assert proportional_deadline(system, SubtaskId(0, 1)) == pytest.approx(8.0)

    def test_pd_sums_to_deadline(self):
        system = _two_chain_system()
        for i, task in enumerate(system.tasks):
            total = sum(
                proportional_deadline(system, SubtaskId(i, j))
                for j in range(task.chain_length)
            )
            assert total == pytest.approx(task.relative_deadline)

    def test_pdm_orders_by_proportional_deadline(self):
        system = proportional_deadline_monotonic(_two_chain_system())
        # On A: PDs are 2.0 (T1,1) and 15.0 (T2,1): T1,1 wins.
        assert system.subtask(SubtaskId(0, 0)).priority == 0
        assert system.subtask(SubtaskId(1, 0)).priority == 1
        # On B: PDs are 8.0 (T1,2) and 5.0 (T2,2): T2,2 wins.
        assert system.subtask(SubtaskId(1, 1)).priority == 0
        assert system.subtask(SubtaskId(0, 1)).priority == 1


class TestClassicPolicies:
    def test_rate_monotonic_prefers_short_period(self):
        system = rate_monotonic(_two_chain_system())
        assert system.subtask(SubtaskId(0, 0)).priority == 0
        assert system.subtask(SubtaskId(0, 1)).priority == 0
        assert system.subtask(SubtaskId(1, 0)).priority == 1

    def test_deadline_monotonic_uses_explicit_deadline(self):
        t1 = Task(period=10.0, deadline=9.0, subtasks=(Subtask(1.0, "A"),))
        t2 = Task(period=10.0, deadline=3.0, subtasks=(Subtask(1.0, "A"),))
        system = deadline_monotonic(System((t1, t2)))
        assert system.subtask(SubtaskId(1, 0)).priority == 0
        assert system.subtask(SubtaskId(0, 0)).priority == 1

    def test_equal_flexibility_distributes_slack(self):
        system = equal_flexibility(_two_chain_system())
        # T1 stage A: e=1, slack share 5*(1/5)=1 -> local deadline 2.
        # T2 stage A: e=6, slack 12*(6/8)=9 -> 15.  T1 wins on A.
        assert system.subtask(SubtaskId(0, 0)).priority == 0
        assert system.subtask(SubtaskId(1, 0)).priority == 1


class TestAssignmentMechanics:
    def test_priorities_dense_per_processor(self):
        system = proportional_deadline_monotonic(_two_chain_system())
        for processor in system.processors:
            priorities = sorted(
                system.subtask(sid).priority
                for sid in system.subtasks_on(processor)
            )
            assert priorities == list(range(len(priorities)))

    def test_ties_broken_deterministically_by_id(self):
        t1 = Task(period=10.0, subtasks=(Subtask(2.0, "A"),))
        t2 = Task(period=10.0, subtasks=(Subtask(2.0, "A"),))
        system = assign_by_key(System((t1, t2)), lambda s, sid: 0.0)
        assert system.subtask(SubtaskId(0, 0)).priority == 0
        assert system.subtask(SubtaskId(1, 0)).priority == 1

    def test_assignment_does_not_mutate_original(self):
        system = _two_chain_system()
        proportional_deadline_monotonic(system)
        assert all(
            system.subtask(sid).priority == 0 for sid in system.subtask_ids
        )

    def test_assignment_preserves_structure(self):
        before = _two_chain_system()
        after = rate_monotonic(before)
        assert [t.period for t in after.tasks] == [t.period for t in before.tasks]
        assert after.subtask(SubtaskId(1, 1)).execution_time == 2.0


class TestRegistry:
    def test_registry_contains_paper_policy(self):
        assert "pd-monotonic" in POLICIES

    def test_get_policy_returns_callable(self):
        policy = get_policy("rate-monotonic")
        system = policy(_two_chain_system())
        assert system.subtask(SubtaskId(0, 0)).priority == 0

    def test_get_policy_unknown_name(self):
        with pytest.raises(ModelError, match="unknown priority policy"):
            get_policy("coin-flip")
