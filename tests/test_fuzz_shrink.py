"""Tests for counterexample shrinking, including the end-to-end
injected-bug exercise: a deliberately broken Release Guard must be
caught by an oracle and delta-debugged to a tiny system."""

from __future__ import annotations

import pytest

from repro.core.protocols.release_guard import ReleaseGuard
from repro.errors import ReproError
from repro.fuzz import PROFILES, fuzz_one, shrink_system
from repro.fuzz.campaign import _shrink_outcome
from repro.model.system import System
from repro.model.task import Subtask, Task


def _system(periods: tuple[float, ...]) -> System:
    return System(
        tuple(
            Task(
                period=period,
                subtasks=(Subtask(1.0, "P1", priority=i),),
                name=f"T{i + 1}",
            )
            for i, period in enumerate(periods)
        ),
        name="shrinkable",
    )


class TestShrinkSystem:
    def test_drops_tasks_irrelevant_to_the_predicate(self):
        system = _system((100.0, 123.456, 700.5))

        def has_slow_task(candidate: System) -> bool:
            return any(task.period > 500 for task in candidate.tasks)

        result = shrink_system(system, has_slow_task)
        assert result.task_count == 1
        assert result.system.tasks[0].period > 500
        assert result.original_task_count == 3

    def test_rounds_parameters_to_readable_values(self):
        system = _system((700.5,))
        result = shrink_system(
            system, lambda candidate: candidate.tasks[0].period > 500
        )
        assert result.system.tasks[0].period == 700.0

    def test_flaky_predicate_returns_system_unshrunk(self):
        system = _system((100.0, 200.0))
        result = shrink_system(system, lambda _candidate: False)
        assert result.system is system
        assert result.attempts == 1

    def test_predicate_errors_count_as_not_failing(self):
        system = _system((100.0, 200.0, 300.0))

        def brittle(candidate: System) -> bool:
            if len(candidate.tasks) < 3:
                raise ReproError("cannot evaluate the smaller system")
            return True

        result = shrink_system(system, brittle)
        assert result.task_count == 3

    def test_attempt_budget_is_respected(self):
        system = _system((100.0, 200.0, 300.0, 400.0))
        calls = []

        def predicate(candidate: System) -> bool:
            calls.append(len(candidate.tasks))
            return True

        # Budget 2 = the initial confirmation plus one drop; the shrink
        # must stop there even though every candidate "still fails".
        result = shrink_system(system, predicate, max_attempts=2)
        assert len(calls) == 2
        assert result.task_count == 3


class TestInjectedBug:
    """Acceptance exercise: break RG rule 1, fuzz, catch, shrink."""

    def _break_rule_one(self, monkeypatch):
        # Rule 1 (Section 3.2) raises the guard to now + period on every
        # release; this "bug" leaves it at now, degenerating RG into DS.
        def buggy_on_release(self, sid, instance, now):
            self.guards[sid] = now

        monkeypatch.setattr(ReleaseGuard, "on_release", buggy_on_release)

    def test_bug_is_caught_by_the_separation_oracle(self, monkeypatch):
        self._break_rule_one(monkeypatch)
        outcome = fuzz_one(PROFILES["default"][2], 8, index=8)
        assert outcome.failed
        assert "rg-separation" in outcome.failures

    def test_bug_shrinks_to_at_most_three_tasks(self, monkeypatch):
        self._break_rule_one(monkeypatch)
        outcome = fuzz_one(PROFILES["default"][2], 8, index=8)
        record = _shrink_outcome(
            outcome, horizon_periods=5.0, max_attempts=300
        )
        assert record.oracle == "rg-separation"
        assert len(record.system.tasks) <= 3
        assert record.original_task_count == 4
        assert record.violations

    def test_clean_release_guard_passes_the_same_case(self):
        outcome = fuzz_one(PROFILES["default"][2], 8, index=8)
        assert not outcome.failed
