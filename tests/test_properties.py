"""Property-based tests (hypothesis) for core invariants.

System-level properties draw from the paper's own workload generator
(seeded, so shrinking works on the drawn parameters), which guarantees
well-formed feasible systems; the invariants checked are the paper's
load-bearing claims: precedence preservation, per-protocol release
shaping, analysis soundness against simulation, and SA/DS >= SA/PM.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import run_protocol
from repro.core.analysis.busy_period import analyze_subtask
from repro.core.analysis.fixpoint import ceil_tolerant, solve_fixed_point
from repro.core.analysis.sa_ds import analyze_sa_ds, initial_ieer_bounds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.experiments.stats import mean_with_ci
from repro.sim.metrics import output_jitter
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

configs = st.builds(
    WorkloadConfig,
    subtasks_per_task=st.integers(1, 3),
    utilization=st.floats(0.3, 0.85),
    tasks=st.integers(2, 5),
    processors=st.integers(2, 3),
    random_phases=st.booleans(),
).filter(
    # Random placement must be able to cover every processor comfortably.
    lambda c: c.tasks * c.subtasks_per_task >= 2 * c.processors
)

seeds = st.integers(0, 10_000)

SIM_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
FAST_SETTINGS = settings(max_examples=100, deadline=None)


# ---------------------------------------------------------------------------
# Simulation invariants
# ---------------------------------------------------------------------------


@SIM_SETTINGS
@given(config=configs, seed=seeds, protocol=st.sampled_from(["DS", "PM", "MPM", "RG"]))
def test_no_protocol_ever_violates_precedence(config, seed, protocol):
    system = generate_system(config, seed)
    result = run_protocol(
        system, protocol, horizon_periods=4.0, strict_precedence=True
    )
    assert result.metrics.precedence_violations == 0


@SIM_SETTINGS
@given(config=configs, seed=seeds, protocol=st.sampled_from(["DS", "PM", "RG"]))
def test_response_time_at_least_execution_time(config, seed, protocol):
    system = generate_system(config, seed)
    result = run_protocol(system, protocol, horizon_periods=4.0)
    trace = result.trace
    for (sid, m), completion in trace.completions.items():
        release = trace.releases[(sid, m)]
        exec_time = system.subtask(sid).execution_time
        assert completion - release >= exec_time - 1e-9


@SIM_SETTINGS
@given(config=configs, seed=seeds)
def test_pm_releases_strictly_periodic(config, seed):
    system = generate_system(config, seed)
    result = run_protocol(system, "PM", horizon_periods=4.0)
    by_subtask: dict = {}
    for (sid, m), time in result.trace.releases.items():
        by_subtask.setdefault(sid, []).append((m, time))
    for sid, entries in by_subtask.items():
        period = system.period_of(sid)
        entries.sort()
        for (m0, t0), (m1, t1) in zip(entries, entries[1:]):
            assert m1 == m0 + 1
            assert t1 - t0 == pytest.approx(period, abs=1e-6)


@SIM_SETTINGS
@given(config=configs, seed=seeds)
def test_rg_short_separation_only_after_idle_point(config, seed):
    """Rule 1 keeps consecutive releases of a subtask one period apart;
    only rule 2 (an idle point on the subtask's processor) may shorten
    the separation.  This is the heart of Theorem 1's argument."""
    from repro.core.protocols.release_guard import ReleaseGuard
    from repro.sim.engine import Kernel
    from repro.sim.simulator import default_horizon

    system = generate_system(config, seed)
    kernel = Kernel(
        system,
        ReleaseGuard(),
        default_horizon(system, 4.0),
        record_segments=False,
        record_idle_points=True,
    )
    trace = kernel.run()
    by_subtask: dict = {}
    for (sid, m), time in trace.releases.items():
        by_subtask.setdefault(sid, []).append((m, time))
    for sid, entries in by_subtask.items():
        if sid.subtask_index == 0:
            continue  # first subtasks are environment-released
        period = system.period_of(sid)
        processor = system.subtask(sid).processor
        idle_points = trace.idle_points.get(processor, [])
        entries.sort()
        for (_m0, t0), (_m1, t1) in zip(entries, entries[1:]):
            if t1 - t0 < period - 1e-9:
                # An idle point must have re-armed the guard in (t0, t1]
                # (the RG controller also records signal-at-idle-processor
                # idle points, so the trace is complete here).
                assert any(t0 < point <= t1 + 1e-9 for point in idle_points)


@SIM_SETTINGS
@given(config=configs, seed=seeds)
def test_chain_instances_complete_in_order(config, seed):
    system = generate_system(config, seed)
    result = run_protocol(system, "DS", horizon_periods=4.0)
    for sid in system.subtask_ids:
        times = [
            t for (s, _m), t in sorted(
                result.trace.completions.items(), key=lambda kv: kv[0][1]
            )
            if s == sid
        ]
        assert times == sorted(times)


@SIM_SETTINGS
@given(
    config=configs, seed=seeds, protocol=st.sampled_from(["DS", "PM", "RG"])
)
def test_traces_pass_independent_validation(config, seed, protocol):
    """The post-hoc validator re-derives fixed-priority preemptive
    scheduling semantics from the trace alone; every protocol's traces
    must pass on arbitrary generated systems."""
    from repro.sim.trace_validation import validate_trace

    system = generate_system(config, seed)
    result = run_protocol(
        system, protocol, horizon_periods=3.0, record_segments=True
    )
    assert validate_trace(result.trace) == []


@SIM_SETTINGS
@given(config=configs, seed=seeds)
def test_segments_account_for_full_execution(config, seed):
    system = generate_system(config, seed)
    result = run_protocol(
        system, "DS", horizon_periods=3.0, record_segments=True
    )
    trace = result.trace
    totals: dict = {}
    for segment in trace.segments:
        key = (segment.sid, segment.instance)
        totals[key] = totals.get(key, 0.0) + segment.length
    for key, completion in trace.completions.items():
        exec_time = system.subtask(key[0]).execution_time
        assert totals[key] == pytest.approx(exec_time, rel=1e-9)


# ---------------------------------------------------------------------------
# Analysis invariants
# ---------------------------------------------------------------------------


@SIM_SETTINGS
@given(config=configs, seed=seeds)
def test_sa_ds_bounds_dominate_sa_pm(config, seed):
    system = generate_system(config, seed)
    pm = analyze_sa_pm(system)
    ds = analyze_sa_ds(system, max_iterations=60)
    for i in range(len(system.tasks)):
        assert ds.task_bounds[i] >= pm.task_bounds[i] - 1e-6


@SIM_SETTINGS
@given(config=configs, seed=seeds)
def test_sa_pm_bounds_at_least_total_execution(config, seed):
    system = generate_system(config, seed)
    result = analyze_sa_pm(system)
    for i, task in enumerate(system.tasks):
        assert result.task_bounds[i] >= task.total_execution_time - 1e-9


@SIM_SETTINGS
@given(config=configs, seed=seeds, protocol=st.sampled_from(["PM", "MPM", "RG"]))
def test_sa_pm_bounds_dominate_simulation(config, seed, protocol):
    system = generate_system(config, seed)
    bounds = analyze_sa_pm(system)
    if bounds.failed:
        return
    result = run_protocol(system, protocol, horizon_periods=4.0)
    for i in range(len(system.tasks)):
        observed = result.metrics.task(i).max_eer
        if not math.isnan(observed):
            assert observed <= bounds.task_bounds[i] + 1e-6


@SIM_SETTINGS
@given(config=configs, seed=seeds)
def test_sa_ds_bounds_dominate_ds_simulation(config, seed):
    system = generate_system(config, seed)
    verdict = analyze_sa_ds(system, max_iterations=60)
    if verdict.failed:
        return
    result = run_protocol(system, "DS", horizon_periods=4.0)
    for i in range(len(system.tasks)):
        observed = result.metrics.task(i).max_eer
        if not math.isnan(observed):
            assert observed <= verdict.task_bounds[i] + 1e-6


@SIM_SETTINGS
@given(config=configs, seed=seeds)
def test_ieer_seeds_below_converged_bounds(config, seed):
    system = generate_system(config, seed)
    verdict = analyze_sa_ds(system, max_iterations=60)
    seeds_map = initial_ieer_bounds(system)
    for sid, seed_value in seeds_map.items():
        assert seed_value <= verdict.subtask_bounds[sid] + 1e-9


@SIM_SETTINGS
@given(config=configs, seed=seeds, scale=st.floats(0.1, 3.0))
def test_busy_period_bound_scale_invariance(config, seed, scale):
    """Scaling all periods and execution times scales every bound."""
    system = generate_system(config, seed)
    scaled = system.with_tasks(
        task.with_subtasks(
            tuple(
                stage.with_priority(stage.priority)
                for stage in task.subtasks
            )
        )
        for task in system.tasks
    )
    # Build the scaled system explicitly.
    from repro.model.system import System
    from repro.model.task import Subtask, Task

    scaled = System(
        tuple(
            Task(
                period=task.period * scale,
                phase=task.phase * scale,
                subtasks=tuple(
                    Subtask(
                        stage.execution_time * scale,
                        stage.processor,
                        priority=stage.priority,
                    )
                    for stage in task.subtasks
                ),
            )
            for task in system.tasks
        )
    )
    base = analyze_sa_pm(system)
    big = analyze_sa_pm(scaled)
    for i in range(len(system.tasks)):
        assert big.task_bounds[i] == pytest.approx(
            base.task_bounds[i] * scale, rel=1e-6
        )


# ---------------------------------------------------------------------------
# Fixed-point and numeric helpers
# ---------------------------------------------------------------------------


@FAST_SETTINGS
@given(
    exec_times=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=4),
    periods=st.lists(st.floats(10.0, 50.0), min_size=4, max_size=4),
)
def test_solve_fixed_point_returns_true_fixed_point(exec_times, periods):
    terms = list(zip(exec_times, periods))

    def demand(t: float) -> float:
        return sum(e * ceil_tolerant(t / p) for e, p in terms)

    start = sum(e for e, _p in terms)
    result = solve_fixed_point(demand, start, cap=10_000.0)
    if result is not None:
        assert demand(result) == pytest.approx(result, rel=1e-9)


@FAST_SETTINGS
@given(st.lists(st.floats(-1e6, 1e6), max_size=30))
def test_output_jitter_bounded_by_range(values):
    jitter = output_jitter(values)
    assert jitter >= 0.0
    if len(values) >= 2:
        assert jitter <= max(values) - min(values) + 1e-9


@FAST_SETTINGS
@given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50))
def test_mean_with_ci_mean_within_range(values):
    stats = mean_with_ci(values)
    assert min(values) - 1e-9 <= stats.mean <= max(values) + 1e-9
    assert stats.half_width >= 0.0


@FAST_SETTINGS
@given(
    seed=seeds,
    blocking=st.floats(0.0, 50.0),
)
def test_sa_pm_monotone_in_blocking(seed, blocking):
    from repro.core.analysis.sa_pm import analyze_sa_pm

    config = WorkloadConfig(
        subtasks_per_task=2, utilization=0.6, tasks=3, processors=2
    )
    system = generate_system(config, seed % 25)
    base = analyze_sa_pm(system)
    blocked = analyze_sa_pm(
        system, blocking={sid: blocking for sid in system.subtask_ids}
    )
    for i in range(len(system.tasks)):
        assert blocked.task_bounds[i] >= base.task_bounds[i] - 1e-9


@SIM_SETTINGS
@given(config=configs, seed=seeds)
def test_opa_finds_assignment_whenever_pdm_slicing_accepts(config, seed):
    """One direction of Leung-Whitehead optimality, on random systems:
    if PD-monotonic slicing certifies the system, Audsley's search with
    the same local deadlines cannot fail."""
    from repro.core.analysis.local_deadline import analyze_local_deadline
    from repro.core.analysis.opa import audsley_assignment
    from repro.model.priority import proportional_deadline_monotonic

    system = generate_system(config, seed)
    if analyze_local_deadline(
        proportional_deadline_monotonic(system)
    ).schedulable:
        assert audsley_assignment(system) is not None


@FAST_SETTINGS
@given(config=configs, seed=seeds)
def test_system_serialization_round_trips(config, seed):
    from repro.io import system_from_dict, system_to_dict

    system = generate_system(config, seed)
    rebuilt = system_from_dict(system_to_dict(system))
    assert rebuilt.tasks == system.tasks
    assert rebuilt.name == system.name


@SIM_SETTINGS
@given(config=configs, seed=seeds, transmission=st.floats(0.01, 5.0))
def test_link_insertion_preserves_model_invariants(config, seed, transmission):
    from repro.model.links import insert_link_stages, uniform_link

    system = generate_system(config, seed)
    wired = insert_link_stages(system, uniform_link("bus", transmission))
    assert len(wired.tasks) == len(system.tasks)
    for before, after in zip(system.tasks, wired.tasks):
        hops = sum(
            1
            for a, b in zip(before.processors(), before.processors()[1:])
            if a != b
        )
        assert after.chain_length == before.chain_length + hops
        assert after.period == before.period
        # Non-message stages survive in order.
        kept = [s for s in after.subtasks if s.processor != "bus"]
        assert tuple(kept) == before.subtasks


@pytest.mark.slow
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=seeds)
def test_searched_worst_case_never_exceeds_analysis_bounds(seed):
    """The exhaustive phase search yields a certified lower bound on the
    true worst-case EER time (Section 2), so it can never exceed a sound
    analysis bound: searched-PM <= SA/PM and searched-DS <= SA/DS."""
    from repro.core.analysis.exhaustive import search_worst_case_eer

    config = WorkloadConfig(
        subtasks_per_task=2,
        utilization=0.6,
        tasks=2,
        processors=2,
        period_min=100.0,
        period_max=1000.0,
        period_scale=300.0,
    )
    system = generate_system(config, seed % 200)
    sa_ds = analyze_sa_ds(system, max_iterations=60)
    searched_ds = search_worst_case_eer(
        system, "DS", steps=3, horizon_periods=5.0
    )
    for observed, bound in zip(searched_ds.worst_eer, sa_ds.task_bounds):
        if math.isfinite(bound):
            assert observed <= bound + 1e-6
    sa_pm = analyze_sa_pm(system)
    if not sa_pm.failed:
        searched_pm = search_worst_case_eer(
            system, "PM", steps=3, horizon_periods=5.0
        )
        for observed, bound in zip(searched_pm.worst_eer, sa_pm.task_bounds):
            assert observed <= bound + 1e-6


@FAST_SETTINGS
@given(
    jitter=st.floats(0.0, 100.0),
    seed=seeds,
)
def test_subtask_bound_monotone_in_uniform_jitter(jitter, seed):
    config = WorkloadConfig(
        subtasks_per_task=2, utilization=0.6, tasks=3, processors=2
    )
    system = generate_system(config, seed % 20)
    sid = system.subtask_ids[-1]
    base = analyze_subtask(system, sid)
    bumped = analyze_subtask(
        system, sid, {other: jitter for other in system.subtask_ids}
    )
    if base.bound is not None and bumped.bound is not None:
        assert bumped.bound >= base.bound - 1e-9
