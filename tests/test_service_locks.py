"""Shared-resource admission control: engine, advisor and cache keys."""

from __future__ import annotations

import pytest

from repro.advisor import recommend_protocol
from repro.locks import (
    LockingConfig,
    analyze_sa_ds_blocking,
    analyze_sa_pm_blocking,
    inject_critical_sections,
)
from repro.service.engine import compute_decision
from repro.service.hashing import (
    KEY_FORMAT,
    KEY_FORMAT_V3,
    canonical_payload,
    request_key,
)
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

CONFIG = WorkloadConfig(
    subtasks_per_task=3, utilization=0.5, tasks=4, processors=3
)


@pytest.fixture(scope="module")
def locked_system():
    """A resourceful system the blocking-aware SA/PM still certifies."""
    for seed in range(30):
        locked = inject_critical_sections(
            generate_system(CONFIG, seed=seed),
            ratio=0.15,
            resources=2,
            participation=0.5,
            seed=seed,
        )
        if (
            locked.has_critical_sections
            and analyze_sa_pm_blocking(locked).schedulable
        ):
            return locked
    pytest.skip("no blocking-schedulable resourceful system in seeds 0..29")


@pytest.fixture(scope="module")
def bare_system():
    return generate_system(CONFIG, seed=0)


class TestRequestNormalization:
    def test_sections_imply_shared_resources(self, locked_system):
        request = AdmissionRequest(system=locked_system)
        assert request.shared_resources

    def test_section_free_systems_stay_unflagged_by_default(
        self, bare_system
    ):
        assert not AdmissionRequest(system=bare_system).shared_resources


class TestCacheKeys:
    def test_resourceful_requests_key_under_v3(self, locked_system):
        payload = canonical_payload(AdmissionRequest(system=locked_system))
        assert payload["format"] == KEY_FORMAT_V3
        assert payload["shared_resources"] is True

    def test_declared_contention_keys_under_v3_too(self, bare_system):
        payload = canonical_payload(
            AdmissionRequest(system=bare_system, shared_resources=True)
        )
        assert payload["format"] == KEY_FORMAT_V3

    def test_resource_free_requests_keep_the_v2_payload(self, bare_system):
        payload = canonical_payload(AdmissionRequest(system=bare_system))
        assert payload["format"] == KEY_FORMAT
        assert "shared_resources" not in payload

    def test_declaring_contention_changes_the_key(self, bare_system):
        plain = request_key(AdmissionRequest(system=bare_system))
        declared = request_key(
            AdmissionRequest(system=bare_system, shared_resources=True)
        )
        assert plain != declared


class TestBlockingAwareCertification:
    def test_decision_embeds_the_blocking_aware_bounds(self, locked_system):
        decision = compute_decision(AdmissionRequest(system=locked_system))
        expected_pm = analyze_sa_pm_blocking(
            locked_system, locking=LockingConfig("DPCP")
        )
        expected_ds = analyze_sa_ds_blocking(
            locked_system, locking=LockingConfig("DPCP")
        )
        assert decision.task_bounds["SA/PM"] == tuple(expected_pm.task_bounds)
        assert decision.task_bounds["SA/DS"] == tuple(expected_ds.task_bounds)

    def test_certified_resourceful_system_is_admitted(self, locked_system):
        decision = compute_decision(AdmissionRequest(system=locked_system))
        assert decision.admitted
        assert decision.protocol is not None

    def test_declared_contention_decides_like_the_base_when_section_free(
        self, bare_system
    ):
        # Exact reduction: the blocking-aware analyses ARE the base
        # analyses on a section-free system, so declaring contention
        # changes the cache key but never the verdict.
        plain = compute_decision(AdmissionRequest(system=bare_system))
        declared = compute_decision(
            AdmissionRequest(system=bare_system, shared_resources=True)
        )
        assert declared.admitted == plain.admitted
        assert declared.protocol == plain.protocol
        assert dict(declared.schedulable) == dict(plain.schedulable)
        assert dict(declared.task_bounds) == dict(plain.task_bounds)
        assert declared.key != plain.key

    def test_skew_envelope_plus_sections_uncertifies_the_timer_protocols(
        self, locked_system
    ):
        decision = compute_decision(
            AdmissionRequest(
                system=locked_system,
                synchronized_clocks=True,
                clock_rate_bound=1e-4,
            )
        )
        # No analysis composes skew inflation with blocking terms: the
        # SA/PM-certified protocols all drop out; only DS may survive.
        assert not decision.schedulable["PM"]
        assert not decision.schedulable["MPM"]
        assert not decision.schedulable["RG"]

    def test_skewless_resourceful_decision_keeps_sa_pm_protocols(
        self, locked_system
    ):
        decision = compute_decision(AdmissionRequest(system=locked_system))
        assert decision.schedulable["RG"]
        assert decision.schedulable["MPM"]


class TestAdvisorComposition:
    def test_shared_resources_use_the_blocking_aware_evidence(
        self, locked_system
    ):
        recommendation = recommend_protocol(
            locked_system, shared_resources=True
        )
        assert recommendation.sa_pm.algorithm == "SA/PM+DPCP"
        assert recommendation.sa_ds.algorithm == "SA/DS+DPCP"

    def test_untrusted_wcets_with_shared_resources_veto_to_rg(
        self, locked_system
    ):
        recommendation = recommend_protocol(
            locked_system, shared_resources=True, wcets_trusted=False
        )
        assert recommendation.protocol == "RG"
        assert "critical section" in recommendation.rationale

    def test_untrusted_wcets_alone_do_not_force_rg_rationale(
        self, bare_system
    ):
        recommendation = recommend_protocol(
            bare_system, wcets_trusted=False
        )
        assert "critical section" not in recommendation.rationale

    def test_section_free_advice_unchanged_by_the_declaration(
        self, bare_system
    ):
        plain = recommend_protocol(bare_system)
        declared = recommend_protocol(bare_system, shared_resources=True)
        assert declared.protocol == plain.protocol
        assert declared.rationale == plain.rationale
