"""Tests of the exception hierarchy and its usage discipline."""

from __future__ import annotations

import pytest

from repro.errors import (
    AnalysisError,
    ConfigurationError,
    ModelError,
    ReproError,
    SimulationError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "subtype",
        [
            ModelError,
            ConfigurationError,
            AnalysisError,
            SimulationError,
            WorkloadError,
        ],
    )
    def test_every_domain_error_is_a_repro_error(self, subtype):
        assert issubclass(subtype, ReproError)
        with pytest.raises(ReproError):
            raise subtype("boom")

    def test_one_catch_covers_library_failures(self, example2):
        """A caller catching ReproError sees every deliberate failure."""
        from repro.api import run_protocol
        from repro.model.task import Subtask

        with pytest.raises(ReproError):
            Subtask(-1.0, "A")
        with pytest.raises(ReproError):
            run_protocol(example2, "nope", horizon=1.0)
        with pytest.raises(ReproError):
            example2.subtasks_on("Z")

    def test_domains_are_distinct(self):
        assert not issubclass(ModelError, SimulationError)
        assert not issubclass(AnalysisError, ModelError)


class TestPublicSurfaceImports:
    def test_experiments_namespace_complete(self):
        import repro.experiments as experiments

        for name in experiments.__all__:
            assert hasattr(experiments, name), name

    def test_model_namespace_complete(self):
        import repro.model as model

        for name in model.__all__:
            assert hasattr(model, name), name

    def test_sim_namespace_complete(self):
        import repro.sim as sim

        for name in sim.__all__:
            assert hasattr(sim, name), name

    def test_analysis_namespace_complete(self):
        import repro.core.analysis as analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name
