"""Golden-trace conformance: both engines vs a frozen packed corpus.

The corpus under ``tests/corpus/golden_traces/`` freezes the reference
kernel's traces for a seeded slice of the fig12-16 workload grid --
light (2, 50%), middling (5, 70%) and heavy (8, 90%) configurations at
the paper's 12 tasks / 4 processors, all four protocols where feasible.
Each ``.npz`` file is a :class:`~repro.sim.batch.PackedTrace` written by
``PackedTrace.save``; the filename encodes the case
(``n{N}_u{U}_seed{S}_{PROTOCOL}.npz``), so the corpus directory itself
is the case matrix.

Two directions are checked, byte-for-byte (``PackedTrace.identical``:
``0.0`` vs ``-0.0`` and dtype drift count as differences):

* the **batch engine** replays every case onto the frozen packing --
  the tentpole trace-identity claim; and
* the **reference kernel** replays every case onto the frozen packing
  -- so a behavioural change in the oracle of record cannot hide as a
  matching pair of drifts.

Regenerate after an *intentional* schedule change with::

    PYTHONPATH=src python tests/test_batch_conformance.py --regenerate

and audit the resulting diff like any other golden-file update.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest

from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.protocols.factory import make_controller
from repro.model.task import SubtaskId
from repro.sim.batch import PackedTrace, encode
from repro.sim.simulator import simulate
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

CORPUS_DIR = Path(__file__).parent / "corpus" / "golden_traces"

#: The frozen case matrix: (subtasks per task, utilization %, seed).
#: Paper-shaped systems (12 tasks on 4 processors, random phases), the
#: suite's default 10-period horizon.
CORPUS_POINTS = (
    (2, 50, 1),
    (2, 50, 2),
    (5, 70, 1),
    (5, 70, 2),
    (8, 90, 1),
    (8, 90, 2),
)
PROTOCOLS = ("DS", "PM", "MPM", "RG")
HORIZON_PERIODS = 10.0


def _corpus_system(n: int, u_pct: int, seed: int):
    config = WorkloadConfig(
        subtasks_per_task=n,
        utilization=u_pct / 100.0,
        tasks=12,
        processors=4,
        random_phases=True,
    )
    return generate_system(config, seed)


def _pm_feasible(system) -> bool:
    bounds = analyze_sa_pm(system).subtask_bounds
    return not any(
        math.isinf(bounds[SubtaskId(i, j)])
        for i, task in enumerate(system.tasks)
        for j in range(task.chain_length - 1)
    )


def _run(system, protocol: str, engine: str):
    controller = make_controller(protocol, system)
    return simulate(
        system,
        controller,
        horizon_periods=HORIZON_PERIODS,
        record_segments=True,
        record_idle_points=(protocol == "RG"),
        engine=engine,
    )


def _case_path(n: int, u_pct: int, seed: int, protocol: str) -> Path:
    return CORPUS_DIR / f"n{n}_u{u_pct}_seed{seed}_{protocol}.npz"


def corpus_cases() -> list[tuple[int, int, int, str]]:
    """The cases frozen on disk, derived from the corpus filenames."""
    cases = []
    for path in sorted(CORPUS_DIR.glob("n*_u*_seed*_*.npz")):
        n, u, seed, protocol = path.stem.split("_")
        cases.append((int(n[1:]), int(u[1:]), int(seed[4:]), protocol))
    return cases


_CASES = corpus_cases()
_IDS = [f"n{n}-u{u}-s{s}-{p}" for n, u, s, p in _CASES]


def test_corpus_is_present_and_complete():
    """Every feasible (point, protocol) pair must be frozen on disk.

    Derives the expected matrix from the generators (PM/MPM drop out
    where Algorithm SA/PM leaves an infinite non-last bound) and
    demands exactly that file set -- a deleted or stray golden file
    fails here rather than silently shrinking coverage.
    """
    expected = set()
    for n, u_pct, seed in CORPUS_POINTS:
        system = _corpus_system(n, u_pct, seed)
        feasible = (
            PROTOCOLS
            if _pm_feasible(system)
            else tuple(p for p in PROTOCOLS if p not in ("PM", "MPM"))
        )
        expected.update((n, u_pct, seed, p) for p in feasible)
    assert set(_CASES) == expected, (
        "corpus drifted from the frozen matrix; regenerate with "
        "`PYTHONPATH=src python tests/test_batch_conformance.py "
        "--regenerate` and audit the diff"
    )


@pytest.mark.parametrize("n,u_pct,seed,protocol", _CASES, ids=_IDS)
def test_batch_engine_matches_golden(n, u_pct, seed, protocol):
    """The batch engine reproduces every frozen trace byte-for-byte."""
    golden = PackedTrace.load(_case_path(n, u_pct, seed, protocol))
    result = _run(_corpus_system(n, u_pct, seed), protocol, "batch")
    assert result.engine == "batch", result.engine_fallback
    packed = result.packed_trace
    assert golden.identical(packed), golden.describe_diff(packed)


@pytest.mark.parametrize("n,u_pct,seed,protocol", _CASES, ids=_IDS)
def test_reference_kernel_matches_golden(n, u_pct, seed, protocol):
    """The reference kernel still produces the frozen traces.

    Pins the oracle of record itself: if both engines drifted in
    lockstep, the engine-vs-engine comparison would stay green while
    the schedules silently changed.
    """
    golden = PackedTrace.load(_case_path(n, u_pct, seed, protocol))
    result = _run(_corpus_system(n, u_pct, seed), protocol, "reference")
    packed = encode(result.trace)
    assert golden.identical(packed), golden.describe_diff(packed)


def test_golden_metrics_agree_between_engines():
    """Batch-side metrics (computed from the packing, never a decoded
    trace) equal the reference pipeline's on one heavy corpus case."""
    system = _corpus_system(8, 90, 1)
    reference = _run(system, "DS", "reference")
    batch = _run(system, "DS", "batch")
    assert batch.engine == "batch"
    assert batch.metrics == reference.metrics
    assert batch.events_processed == reference.events_processed


def _regenerate() -> None:
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    for stale in CORPUS_DIR.glob("*.npz"):
        stale.unlink()
    for n, u_pct, seed in CORPUS_POINTS:
        system = _corpus_system(n, u_pct, seed)
        protocols = (
            PROTOCOLS
            if _pm_feasible(system)
            else tuple(p for p in PROTOCOLS if p not in ("PM", "MPM"))
        )
        for protocol in protocols:
            result = _run(system, protocol, "reference")
            path = _case_path(n, u_pct, seed, protocol)
            encode(result.trace).save(path)
            print(f"wrote {path.name}: {result.events_processed} events")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
