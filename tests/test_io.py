"""Unit tests for serialization (repro.io)."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.errors import ConfigurationError
from repro.experiments.surface import Surface
from repro.io import (
    analysis_result_to_dict,
    load_system,
    save_system,
    surface_from_dict,
    surface_to_csv,
    surface_to_dict,
    system_from_dict,
    system_to_dict,
)


class TestSystemRoundTrip:
    def test_example2_round_trips(self, example2):
        rebuilt = system_from_dict(system_to_dict(example2))
        assert rebuilt.tasks == example2.tasks
        assert rebuilt.name == example2.name

    def test_generated_system_round_trips(self, small_system):
        rebuilt = system_from_dict(system_to_dict(small_system))
        assert rebuilt.tasks == small_system.tasks

    def test_round_trip_preserves_analysis(self, small_system):
        rebuilt = system_from_dict(system_to_dict(small_system))
        assert (
            analyze_sa_pm(rebuilt).task_bounds
            == analyze_sa_pm(small_system).task_bounds
        )

    def test_dict_is_json_serializable(self, example2):
        text = json.dumps(system_to_dict(example2))
        assert "example-2" in text

    def test_explicit_deadline_preserved(self, example2):
        with_deadline = example2.with_tasks(
            [example2.tasks[0].__class__(**{
                **example2.tasks[0].__dict__, "deadline": 3.5
            })] + list(example2.tasks[1:])
        )
        rebuilt = system_from_dict(system_to_dict(with_deadline))
        assert rebuilt.tasks[0].deadline == 3.5

    def test_file_round_trip(self, example2, tmp_path):
        path = tmp_path / "system.json"
        save_system(example2, path)
        assert load_system(path).tasks == example2.tasks

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError, match="format"):
            system_from_dict({"format": "something-else", "tasks": []})


class TestAnalysisExport:
    def test_sa_pm_export(self, example2):
        data = analysis_result_to_dict(analyze_sa_pm(example2))
        assert data["algorithm"] == "SA/PM"
        assert data["task_bounds"] == [2.0, 7.0, 5.0]
        assert data["subtask_bounds"]["T2,1"] == 4.0
        assert not data["failed"]

    def test_infinite_bounds_encoded_as_string(self, example2):
        result = analyze_sa_ds(example2, failure_factor=1.0)
        data = analysis_result_to_dict(result)
        assert "inf" in data["task_bounds"]
        json.dumps(data)  # strict-JSON safe

    def test_notes_preserved(self, example2):
        result = analyze_sa_ds(example2, failure_factor=1.0)
        data = analysis_result_to_dict(result)
        assert data["notes"]


class TestEvaluationPersistence:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments.runner import sweep_grid
        from repro.workload.config import WorkloadConfig

        config = WorkloadConfig(
            subtasks_per_task=2,
            utilization=0.5,
            tasks=3,
            processors=2,
            random_phases=True,
        )
        return sweep_grid([config], 2, horizon_periods=4.0)

    def test_round_trip(self, sweep, tmp_path):
        from repro.io import load_evaluations, save_evaluations

        path = tmp_path / "evals.json"
        save_evaluations(sweep, path)
        loaded = load_evaluations(path)
        assert set(loaded) == set(sweep)
        for config in sweep:
            for a, b in zip(sweep[config], loaded[config]):
                assert a == b

    def test_figures_identical_after_reload(self, sweep, tmp_path):
        from repro.experiments.runner import suite_from_evaluations
        from repro.io import load_evaluations, save_evaluations

        path = tmp_path / "evals.json"
        save_evaluations(sweep, path)
        original = suite_from_evaluations(sweep)
        reloaded = suite_from_evaluations(load_evaluations(path))
        assert original.render() == reloaded.render()

    def test_wrong_format_rejected(self, tmp_path):
        import json as json_module

        from repro.io import load_evaluations

        path = tmp_path / "bad.json"
        path.write_text(json_module.dumps({"format": "nope"}))
        with pytest.raises(ConfigurationError, match="format"):
            load_evaluations(path)

    def test_config_round_trip(self):
        from repro.io import config_from_dict, config_to_dict
        from repro.workload.config import WorkloadConfig

        config = WorkloadConfig(
            subtasks_per_task=3, utilization=0.7, random_phases=True
        )
        assert config_from_dict(config_to_dict(config)) == config


class TestSurfaceExport:
    def _surface(self) -> Surface:
        surface = Surface("demo")
        surface.put(2, 50, 1.5, ci_half_width=0.1, sample_count=4)
        surface.put(8, 90, float("nan"))
        return surface

    def test_round_trip(self):
        surface = self._surface()
        rebuilt = surface_from_dict(surface_to_dict(surface))
        assert rebuilt.name == "demo"
        assert rebuilt.value(2, 50) == 1.5
        assert math.isnan(rebuilt.value(8, 90))
        assert rebuilt.cells[(2, 50)].sample_count == 4

    def test_nan_encoded_as_null(self):
        data = surface_to_dict(self._surface())
        json.dumps(data)
        values = {
            (c["subtasks"], c["utilization_percent"]): c["value"]
            for c in data["cells"]
        }
        assert values[(8, 90)] is None

    def test_csv_export(self):
        text = surface_to_csv(self._surface())
        lines = text.strip().splitlines()
        assert lines[0].startswith("subtasks,")
        assert lines[1].startswith("2,50,1.5,")
        # NaN cell exports an empty value field.
        assert lines[2].startswith("8,90,,")
