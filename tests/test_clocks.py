"""Unit tests for the per-processor clock models and configurations."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.clocks import (
    BoundedDrift,
    ClockConfig,
    ClockMap,
    FixedOffset,
    PerfectClock,
    ResyncClock,
    clock_config_from_dict,
    clock_config_to_dict,
)
from repro.errors import ConfigurationError
from repro.timebase import get_timebase

FLOAT = get_timebase("float")
EXACT = get_timebase("exact")


class TestPerfectClock:
    def test_identity_returns_argument(self):
        clock = PerfectClock()
        for tb in (FLOAT, EXACT):
            value = tb.convert(12.5)
            assert clock.local_from_true(value, tb) is value
            assert clock.true_from_local(value, tb) is value

    def test_envelopes_are_zero(self):
        clock = PerfectClock()
        assert clock.is_perfect
        assert clock.rate_bound() == 0.0
        assert clock.jump_bound() == 0.0
        assert clock.offset_bound() == 0.0


class TestFixedOffset:
    def test_round_trip(self):
        clock = FixedOffset(7.25)
        for tb in (FLOAT, EXACT):
            t = tb.convert(100.0)
            local = clock.local_from_true(t, tb)
            assert float(local) == pytest.approx(107.25)
            assert clock.true_from_local(local, tb) == t

    def test_inverse_clamps_at_zero(self):
        clock = FixedOffset(50.0)
        assert clock.true_from_local(FLOAT.convert(10.0), FLOAT) == FLOAT.zero

    def test_offset_bound_and_validation(self):
        assert FixedOffset(-3.0).offset_bound() == 3.0
        with pytest.raises(ConfigurationError):
            FixedOffset(math.inf)


class TestBoundedDrift:
    def test_round_trip_exact_is_lossless(self):
        clock = BoundedDrift(1e-4, offset=5.0)
        t = EXACT.convert(300.0)
        local = clock.local_from_true(t, EXACT)
        back = clock.true_from_local(local, EXACT)
        assert back == t  # rational arithmetic: exact inverse

    def test_round_trip_float_within_tolerance(self):
        clock = BoundedDrift(1e-4, offset=5.0)
        t = 300.0
        back = clock.true_from_local(clock.local_from_true(t, FLOAT), FLOAT)
        assert back == pytest.approx(t)

    def test_fast_clock_reads_ahead(self):
        clock = BoundedDrift(0.01)
        assert clock.local_from_true(100.0, FLOAT) == pytest.approx(101.0)

    def test_envelopes(self):
        clock = BoundedDrift(-0.001, offset=2.0)
        assert clock.rate_bound() == 0.001
        assert math.isinf(clock.offset_bound())  # grows without resync
        assert BoundedDrift(0.0, offset=2.0).offset_bound() == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BoundedDrift(-1.0)
        with pytest.raises(ConfigurationError):
            BoundedDrift(0.01, offset=math.nan)


class TestResyncClock:
    def test_deterministic_per_seed(self):
        a = ResyncClock(1.0, 100.0, seed=7)
        b = ResyncClock(1.0, 100.0, seed=7)
        c = ResyncClock(1.0, 100.0, seed=8)
        times = [0.0, 50.0, 150.0, 950.0]
        readings_a = [a.local_from_true(t, FLOAT) for t in times]
        readings_b = [b.local_from_true(t, FLOAT) for t in times]
        readings_c = [c.local_from_true(t, FLOAT) for t in times]
        assert readings_a == readings_b
        assert readings_a != readings_c

    def test_stays_within_offset_bound(self):
        clock = ResyncClock(2.0, 100.0, rate=1e-3, seed=3)
        for t in (0.0, 10.0, 99.0, 100.0, 450.0, 999.0):
            deviation = abs(clock.local_from_true(t, FLOAT) - t)
            assert deviation <= clock.offset_bound() + 1e-6

    def test_first_crossing_inverse(self):
        clock = ResyncClock(5.0, 100.0, rate=1e-3, seed=11)
        for local in (1.0, 42.0, 99.0, 101.0, 640.0):
            t = clock.true_from_local(local, FLOAT)
            assert t >= 0.0
            assert clock.local_from_true(t, FLOAT) >= local - 1e-6
            # No earlier instant crosses: a slightly earlier true time
            # must still read below `local` (unless clamped to zero).
            if t > 1e-3:
                assert clock.local_from_true(t - 1e-3, FLOAT) < local + 1e-6

    def test_jump_bound_formula(self):
        clock = ResyncClock(2.0, 100.0, rate=1e-3)
        assert clock.jump_bound() == pytest.approx(2 * 2.0 + 1e-3 * 100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResyncClock(25.0, 100.0)  # precision must stay < interval/4
        with pytest.raises(ConfigurationError):
            ResyncClock(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            ResyncClock(1.0, 100.0, rate=0.2)


class TestClockMap:
    def test_default_is_perfect(self):
        clocks = ClockMap.perfect()
        assert clocks.is_perfect
        assert clocks.for_processor("P1").is_perfect
        assert clocks.max_rate() == 0.0
        assert clocks.max_jump() == 0.0
        assert clocks.describe() == "all clocks perfect"

    def test_envelopes_take_the_max(self):
        clocks = ClockMap(
            {
                "P1": BoundedDrift(1e-3),
                "P2": ResyncClock(2.0, 100.0, rate=1e-4),
                "P3": PerfectClock(),
            }
        )
        assert not clocks.is_perfect
        assert clocks.max_rate() == 1e-3
        assert clocks.max_jump() == pytest.approx(4.0 + 1e-4 * 100.0)
        assert "P1" in clocks.describe()


class TestClockConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ClockConfig(kind="sundial")

    def test_invalid_parameters_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError):
            ClockConfig(kind="resync", precision=30.0, interval=100.0)
        with pytest.raises(ConfigurationError):
            ClockConfig(kind="drift", rate=math.inf)

    def test_is_perfect(self):
        assert ClockConfig().is_perfect
        assert ClockConfig(kind="offset", offset=0.0).is_perfect
        assert not ClockConfig(kind="offset", offset=1.0).is_perfect
        assert ClockConfig(kind="drift").is_perfect
        assert not ClockConfig(kind="drift", rate=1e-5).is_perfect
        assert ClockConfig(
            kind="resync", precision=0.0, interval=100.0
        ).is_perfect

    def test_build_alternates_sign_across_processors(self):
        config = ClockConfig(kind="offset", offset=10.0)
        clocks = config.build(["P1", "P2", "P3"])
        assert clocks.for_processor("P1").offset == 10.0
        assert clocks.for_processor("P2").offset == -10.0
        assert clocks.for_processor("P3").offset == 10.0

    def test_build_is_deterministic(self):
        config = ClockConfig(
            kind="resync", precision=1.0, interval=100.0, seed=5
        )
        a = config.build(["P1", "P2"])
        b = config.build(["P2", "P1"])  # order of the argument is moot
        for processor in ("P1", "P2"):
            assert a.for_processor(processor).seed == b.for_processor(
                processor
            ).seed

    def test_envelope_accessors(self):
        resync = ClockConfig(
            kind="resync", precision=2.0, interval=100.0, rate=1e-4
        )
        assert resync.rate_bound() == 1e-4
        assert resync.jump_bound() == pytest.approx(4.0 + 1e-4 * 100.0)
        assert ClockConfig(kind="offset", offset=9.0).jump_bound() == 0.0

    def test_dict_round_trip(self):
        config = ClockConfig(
            kind="resync", precision=1.5, interval=80.0, rate=1e-5, seed=3
        )
        assert clock_config_from_dict(clock_config_to_dict(config)) == config

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(ConfigurationError):
            clock_config_from_dict({"format": "something-else"})

    def test_labels(self):
        assert ClockConfig().label == "clocks=perfect"
        assert "offset" in ClockConfig(kind="offset", offset=4.0).label
        assert "resync" in ClockConfig(
            kind="resync", precision=1.0, interval=50.0
        ).label


class TestExactArithmeticStaysExact:
    """No conversion may silently fall back to float under `exact`."""

    @pytest.mark.parametrize(
        "clock",
        [
            FixedOffset(40.0),
            BoundedDrift(1e-4, offset=3.0),
            ResyncClock(2.0, 100.0, rate=1e-3, seed=1),
        ],
    )
    def test_conversions_stay_rational(self, clock):
        t = EXACT.convert(123.456)
        local = clock.local_from_true(t, EXACT)
        back = clock.true_from_local(local, EXACT)
        for value in (local, back):
            assert isinstance(value, (int, Fraction)), type(value)
