"""Unit tests for trace recording and queries."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.model.task import SubtaskId
from repro.sim.tracing import Segment, Trace


@pytest.fixture
def trace(example2) -> Trace:
    return Trace(example2, horizon=100.0)


class TestRecording:
    def test_release_then_completion(self, trace):
        sid = SubtaskId(0, 0)
        trace.note_release(sid, 0, 1.0)
        trace.note_completion(sid, 0, 3.5)
        assert trace.release_time(sid, 0) == 1.0
        assert trace.completion_time(sid, 0) == 3.5
        assert trace.response_time(sid, 0) == pytest.approx(2.5)

    def test_double_release_rejected(self, trace):
        sid = SubtaskId(0, 0)
        trace.note_release(sid, 0, 1.0)
        with pytest.raises(SimulationError, match="released twice"):
            trace.note_release(sid, 0, 2.0)

    def test_completion_without_release_rejected(self, trace):
        with pytest.raises(SimulationError, match="without a recorded release"):
            trace.note_completion(SubtaskId(0, 0), 0, 2.0)

    def test_double_completion_rejected(self, trace):
        sid = SubtaskId(0, 0)
        trace.note_release(sid, 0, 1.0)
        trace.note_completion(sid, 0, 2.0)
        with pytest.raises(SimulationError, match="completed twice"):
            trace.note_completion(sid, 0, 3.0)

    def test_segments_skipped_when_disabled(self, example2):
        trace = Trace(example2, horizon=10.0, record_segments=False)
        trace.note_segment(Segment("P1", SubtaskId(0, 0), 0, 0.0, 1.0))
        assert trace.segments == []


class TestQueries:
    def _populate_chain(self, trace):
        """One full instance of T2 = (T2,1 -> T2,2)."""
        trace.note_env_release(1, 0, 0.0)
        trace.note_release(SubtaskId(1, 0), 0, 0.0)
        trace.note_completion(SubtaskId(1, 0), 0, 4.0)
        trace.note_release(SubtaskId(1, 1), 0, 4.0)
        trace.note_completion(SubtaskId(1, 1), 0, 7.0)

    def test_eer_measured_from_env_release(self, trace):
        self._populate_chain(trace)
        assert trace.eer_time(1, 0) == pytest.approx(7.0)

    def test_intermediate_eer(self, trace):
        self._populate_chain(trace)
        assert trace.intermediate_eer_time(SubtaskId(1, 0), 0) == pytest.approx(4.0)
        assert trace.intermediate_eer_time(SubtaskId(1, 1), 0) == pytest.approx(7.0)

    def test_completed_task_instances_requires_last_subtask(self, trace):
        trace.note_env_release(1, 0, 0.0)
        trace.note_release(SubtaskId(1, 0), 0, 0.0)
        trace.note_completion(SubtaskId(1, 0), 0, 4.0)
        # Stage 2 still running: instance not complete.
        assert trace.completed_task_instances(1) == []
        trace.note_release(SubtaskId(1, 1), 0, 4.0)
        trace.note_completion(SubtaskId(1, 1), 0, 7.0)
        assert trace.completed_task_instances(1) == [0]

    def test_instance_count(self, trace):
        self._populate_chain(trace)
        assert trace.instance_count(SubtaskId(1, 0)) == 1
        assert trace.instance_count(SubtaskId(2, 0)) == 0

    def test_subtask_response_times_in_instance_order(self, trace):
        sid = SubtaskId(0, 0)
        trace.note_release(sid, 0, 0.0)
        trace.note_completion(sid, 0, 2.0)
        trace.note_release(sid, 1, 4.0)
        trace.note_completion(sid, 1, 7.0)
        assert trace.subtask_response_times(sid) == [2.0, 3.0]

    def test_iter_instances_by_release_time(self, trace):
        trace.note_release(SubtaskId(0, 0), 0, 5.0)
        trace.note_release(SubtaskId(2, 0), 0, 1.0)
        keys = list(trace.iter_instances())
        assert keys[0] == (SubtaskId(2, 0), 0)

    def test_deadline_misses(self, trace):
        # T2's deadline is 6; an EER of 7 misses it.
        self._populate_chain(trace)
        assert trace.deadline_misses(1) == 1

    def test_segments_on_sorted(self, trace):
        trace.note_segment(Segment("P1", SubtaskId(0, 0), 0, 5.0, 6.0))
        trace.note_segment(Segment("P1", SubtaskId(0, 0), 1, 1.0, 2.0))
        trace.note_segment(Segment("P2", SubtaskId(1, 1), 0, 0.0, 3.0))
        on_p1 = trace.segments_on("P1")
        assert [seg.start for seg in on_p1] == [1.0, 5.0]

    def test_segment_length(self):
        assert Segment("P1", SubtaskId(0, 0), 0, 1.0, 3.5).length == 2.5
