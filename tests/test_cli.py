"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestExample2(object):
    def test_default_ds(self, capsys):
        assert main(["example2"]) == 0
        out = capsys.readouterr().out
        assert "SA/PM analysis" in out
        assert "SA/DS analysis" in out
        assert "schedule under DS" in out

    @pytest.mark.parametrize("protocol", ["PM", "MPM", "RG"])
    def test_other_protocols(self, capsys, protocol):
        assert main(["example2", "--protocol", protocol]) == 0
        assert f"schedule under {protocol}" in capsys.readouterr().out

    def test_until_option(self, capsys):
        assert main(["example2", "--until", "12"]) == 0
        assert "12" in capsys.readouterr().out


class TestCosts:
    def test_lists_all_protocols(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        for name in ("DS:", "PM:", "MPM:", "RG:"):
            assert name in out


class TestAnalyze:
    def test_analyzes_synthetic_system(self, capsys):
        code = main(
            [
                "analyze",
                "--n", "2",
                "--u", "0.5",
                "--tasks", "3",
                "--processors", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SA/PM analysis" in out
        assert "SA/DS analysis" in out

    def test_requires_n_and_u_or_load(self, capsys):
        assert main(["analyze", "--n", "2"]) == 2
        assert "need --n and --u" in capsys.readouterr().err

    def test_save_load_round_trip(self, tmp_path, capsys):
        saved = tmp_path / "system.json"
        assert (
            main(
                [
                    "analyze",
                    "--n", "2",
                    "--u", "0.5",
                    "--tasks", "3",
                    "--processors", "2",
                    "--save", str(saved),
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert main(["analyze", "--load", str(saved)]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_json_export(self, tmp_path):
        import json

        out = tmp_path / "analysis.json"
        assert (
            main(
                [
                    "analyze",
                    "--n", "2",
                    "--u", "0.5",
                    "--tasks", "3",
                    "--processors", "2",
                    "--json", str(out),
                ]
            )
            == 0
        )
        data = json.loads(out.read_text())
        assert data["sa_pm"]["algorithm"] == "SA/PM"
        assert data["sa_ds"]["algorithm"] == "SA/DS"


class TestSuiteAndFigure:
    COMMON = [
        "--systems", "1",
        "--subtasks", "2",
        "--utilizations", "0.5",
        "--tasks", "3",
        "--processors", "2",
        "--horizon-periods", "4",
    ]

    def test_suite_prints_all_figures(self, capsys):
        assert main(["suite", *self.COMMON]) == 0
        out = capsys.readouterr().out
        for number in (12, 13, 14, 15, 16):
            assert f"Figure {number}" in out

    @pytest.mark.parametrize("number", ["12", "13", "14", "15", "16"])
    def test_single_figure(self, capsys, number):
        assert main(["figure", number, *self.COMMON]) == 0
        assert f"Figure {number}" in capsys.readouterr().out

    def test_figure_rejects_unknown_number(self):
        with pytest.raises(SystemExit):
            main(["figure", "9", *self.COMMON])

    def test_suite_with_ci(self, capsys):
        assert main(["suite", *self.COMMON, "--ci"]) == 0

    def test_suite_with_check(self, capsys):
        assert main(["suite", *self.COMMON, "--check"]) == 0
        assert "expectations hold" in capsys.readouterr().out

    def test_suite_save_evals(self, tmp_path, capsys):
        from repro.experiments.runner import suite_from_evaluations
        from repro.io import load_evaluations

        path = tmp_path / "evals.json"
        assert (
            main(["suite", *self.COMMON, "--save-evals", str(path)]) == 0
        )
        suite = suite_from_evaluations(load_evaluations(path))
        assert "Figure 12" in suite.render()

    def test_suite_csv_export(self, tmp_path, capsys):
        out_dir = tmp_path / "csv"
        assert (
            main(["suite", *self.COMMON, "--csv-dir", str(out_dir)]) == 0
        )
        names = {path.name for path in out_dir.iterdir()}
        assert "fig12_failure_rate.csv" in names
        assert len(names) == 5


class TestClockStudy:
    COMMON = ["--systems", "1", "--precisions", "0", "10"]

    def test_prints_the_sweep_table(self, capsys):
        assert main(["clock-study", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "clock study" in out
        assert "separation demonstrated:" in out

    def test_require_separation_exit_code(self, capsys):
        # One system at these precisions may or may not separate; the
        # exit code must agree with the verdict the table printed.
        code = main(["clock-study", *self.COMMON, "--require-separation"])
        out = capsys.readouterr().out
        if "separation demonstrated: yes" in out:
            assert code == 0
        else:
            assert code == 1

    def test_custom_workload(self, capsys):
        assert main(
            [
                "clock-study",
                "--systems", "1",
                "--precisions", "0",
                "--n", "2",
                "--u", "0.4",
                "--tasks", "3",
                "--processors", "2",
            ]
        ) == 0
        assert "1 system(s)" in capsys.readouterr().out


class TestLoadgenCommand:
    ARGS = [
        "loadgen",
        "--requests", "60",
        "--systems", "8",
        "--seed", "4",
        "--shards", "2",
    ]

    def test_reports_the_campaign(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "60 issued" in out
        assert "req/s" in out
        assert "digest:" in out

    def test_rps_floor_gate_passes_when_met(self, capsys):
        assert main(self.ARGS + ["--rps-floor", "1"]) == 0

    def test_rps_floor_gate_fails_when_missed(self, capsys):
        # No service on this machine sustains 1e12 req/s.
        assert main(self.ARGS + ["--rps-floor", "1e12"]) == 1
        assert "below the floor" in capsys.readouterr().err

    def test_seed_reproduces_the_digest(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        second = capsys.readouterr().out
        digest = [l for l in first.splitlines() if "digest" in l]
        assert digest == [
            l for l in second.splitlines() if "digest" in l
        ]

    def test_open_mode_with_quotas(self, capsys):
        assert main(
            self.ARGS
            + [
                "--mode", "open",
                "--arrival-rate", "5000",
                "--quota-rate", "100",
                "--quota-burst", "5",
                "--stats",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "shed" in out

    def test_sqlite_backend(self, tmp_path, capsys):
        assert main(
            self.ARGS
            + [
                "--cache-backend", "sqlite",
                "--cache-file", str(tmp_path / "cache.db"),
            ]
        ) == 0
        assert (tmp_path / "cache.db").exists()
