"""Region stores: LRU semantics, counters, JSONL persistence, sqlite.

Both backends must honor the same contract the decision caches set
(get/put/stats/save/load, LRU eviction, strict load validation), and
their JSONL files must interoperate -- a memory-store snapshot warm
starts a sqlite store and vice versa, Fractions included.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.regions.region import FeasibilityRegion
from repro.regions.store import (
    REGION_BACKENDS,
    MemoryRegionStore,
    SqliteRegionStore,
    make_region_store,
)


def _region(tag: str, value=2.5) -> FeasibilityRegion:
    return FeasibilityRegion(
        shape_key=f"shape-{tag}",
        timebase="float",
        dimensions=("T1,1",),
        corners={"SA/PM": (value,)},
        probes=7,
    )


def _exact_region(tag: str) -> FeasibilityRegion:
    return FeasibilityRegion(
        shape_key=f"shape-{tag}",
        timebase="exact",
        dimensions=("T1,1", "T1,2"),
        corners={
            "SA/DS": (Fraction(7, 3), Fraction(123456789, 65536)),
            "SA/PM": None,
        },
        probes=31,
    )


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryRegionStore(capacity=3)
    else:
        built = SqliteRegionStore(capacity=3, db_path=tmp_path / "r.db")
        yield built
        built.close()


class TestContract:
    def test_get_put_roundtrip(self, store):
        region = _region("a")
        assert store.get("shape-a") is None
        store.put("shape-a", region)
        assert store.get("shape-a") == region
        assert "shape-a" in store
        assert len(store) == 1

    def test_counters(self, store):
        store.put("shape-a", _region("a"))
        store.get("shape-a")
        store.get("missing")
        stats = store.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.size == 1
        assert stats.capacity == 3

    def test_lru_eviction_order(self, store):
        for tag in ("a", "b", "c"):
            store.put(f"shape-{tag}", _region(tag))
        store.get("shape-a")  # refresh a; b is now LRU
        store.put("shape-d", _region("d"))
        assert len(store) == 3
        assert "shape-b" not in store
        assert "shape-a" in store
        assert store.stats().evictions == 1

    def test_put_refreshes_existing_key(self, store):
        store.put("shape-a", _region("a", 1.0))
        store.put("shape-a", _region("a", 9.0))
        assert len(store) == 1
        got = store.get("shape-a")
        assert got is not None and got.corner("SA/PM") == (9.0,)

    def test_keys_lru_first(self, store):
        for tag in ("a", "b"):
            store.put(f"shape-{tag}", _region(tag))
        store.get("shape-a")
        assert store.keys() == ("shape-b", "shape-a")

    def test_clear(self, store):
        store.put("shape-a", _region("a"))
        store.clear()
        assert len(store) == 0

    def test_exact_regions_round_trip(self, store, tmp_path):
        region = _exact_region("x")
        store.put("shape-x", region)
        path = store.save(tmp_path / "dump.jsonl")
        reloaded = MemoryRegionStore(capacity=4)
        assert reloaded.load(path) == 1
        got = reloaded.get("shape-x")
        assert got == region
        corner = got.corner("SA/DS")
        assert all(isinstance(v, (int, Fraction)) for v in corner)

    def test_rejects_capacity_below_one(self, tmp_path):
        with pytest.raises(ConfigurationError):
            MemoryRegionStore(capacity=0)
        with pytest.raises(ConfigurationError):
            SqliteRegionStore(capacity=0, db_path=tmp_path / "x.db")


class TestMemoryPersistence:
    def test_constructor_path_warm_starts(self, tmp_path):
        path = tmp_path / "regions.jsonl"
        first = MemoryRegionStore(capacity=4, path=path)
        first.put("shape-a", _region("a"))
        first.save()
        second = MemoryRegionStore(capacity=4, path=path)
        assert second.get("shape-a") == _region("a")

    def test_save_without_path_raises(self):
        with pytest.raises(ConfigurationError, match="persistence path"):
            MemoryRegionStore(capacity=2).save()

    def test_load_salvages_around_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        store = MemoryRegionStore(capacity=2)
        assert store.load(path) == 0
        assert store.last_recovery is not None
        assert store.last_recovery.dropped == 1
        assert not store.last_recovery.clean

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ConfigurationError, match="format"):
            MemoryRegionStore(capacity=2).load(path)


class TestSqlite:
    def test_durable_across_instances(self, tmp_path):
        db = tmp_path / "regions.db"
        first = SqliteRegionStore(capacity=4, db_path=db)
        first.put("shape-a", _exact_region("a"))
        first.close()
        second = SqliteRegionStore(capacity=4, db_path=db)
        try:
            assert second.get("shape-a") == _exact_region("a")
        finally:
            second.close()

    def test_jsonl_interop_with_memory_store(self, tmp_path):
        memory = MemoryRegionStore(capacity=4)
        memory.put("shape-a", _region("a"))
        memory.put("shape-b", _exact_region("b"))
        dump = memory.save(tmp_path / "dump.jsonl")
        sqlite_store = SqliteRegionStore(capacity=4)
        try:
            assert sqlite_store.load(dump) == 2
            assert sqlite_store.get("shape-b") == _exact_region("b")
            back = sqlite_store.save(tmp_path / "back.jsonl")
            restored = MemoryRegionStore(capacity=4)
            restored.load(back)
            assert restored.get("shape-a") == _region("a")
        finally:
            sqlite_store.close()


class TestFactory:
    def test_backends_tuple_matches_factory(self):
        assert REGION_BACKENDS == ("memory", "sqlite")

    def test_builds_each_backend(self, tmp_path):
        assert isinstance(
            make_region_store("memory", capacity=2), MemoryRegionStore
        )
        built = make_region_store(
            "sqlite", capacity=2, path=tmp_path / "r.db"
        )
        assert isinstance(built, SqliteRegionStore)
        built.close()

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError, match="unknown region store"):
            make_region_store("redis")
