"""Tests for campaign orchestration and the fuzz CLI subcommands."""

from __future__ import annotations

import pytest

from repro.api import fuzz_once
from repro.cli import main
from repro.core.protocols.release_guard import ReleaseGuard
from repro.errors import ConfigurationError
from repro.fuzz import PROFILES, load_corpus, replay_corpus, run_campaign


class TestBudgets:
    def test_some_budget_is_mandatory(self):
        with pytest.raises(ConfigurationError, match="--runs"):
            run_campaign()

    def test_run_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="runs"):
            run_campaign(runs=0)

    def test_seconds_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="seconds"):
            run_campaign(seconds=0.0)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError, match="profile"):
            run_campaign(runs=1, profile="nope")

    def test_seconds_budget_terminates(self):
        report = run_campaign(
            seconds=0.05, profile="tiny", workers=1, shrink=False
        )
        assert report.ok


class TestCampaign:
    def test_serial_campaign_is_clean_and_counts_checks(self):
        report = run_campaign(runs=4, profile="tiny", workers=1)
        assert report.ok
        assert report.runs == 4
        assert report.checks["trace-invariants"] == 4
        assert report.failure_count == 0
        assert "0 failure(s)" in report.describe()

    def test_worker_count_does_not_change_what_is_checked(self):
        serial = run_campaign(runs=6, profile="tiny", workers=1)
        pooled = run_campaign(runs=6, profile="tiny", workers=2)
        assert serial.checks == pooled.checks
        assert serial.skips == pooled.skips
        assert serial.ok and pooled.ok

    def test_fuzz_once_wraps_one_case(self):
        outcome = fuzz_once(0, config=PROFILES["tiny"][0])
        assert not outcome.failed
        assert outcome.seed == 0
        assert "trace-invariants" in outcome.checked


class TestInjectedBugEndToEnd:
    """Break RG rule 1, run an in-process campaign, and follow the
    counterexample all the way through the corpus and replay."""

    @pytest.fixture()
    def broken_rule_one(self, monkeypatch):
        def buggy_on_release(self, sid, instance, now):
            self.guards[sid] = now

        monkeypatch.setattr(ReleaseGuard, "on_release", buggy_on_release)

    def test_fail_fast_stops_after_first_failure(self, broken_rule_one):
        report = run_campaign(
            runs=40,
            configs=(PROFILES["default"][2],),
            base_seed=8,
            workers=1,
            shrink=False,
            fail_fast=True,
        )
        assert report.failure_count == 1
        assert report.runs == 1

    @pytest.mark.slow
    def test_counterexample_reaches_corpus_and_replays_clean(
        self, tmp_path, monkeypatch
    ):
        def buggy_on_release(self, sid, instance, now):
            self.guards[sid] = now

        with pytest.MonkeyPatch.context() as patched:
            patched.setattr(
                ReleaseGuard, "on_release", buggy_on_release
            )
            report = run_campaign(
                runs=1,
                configs=(PROFILES["default"][2],),
                base_seed=8,
                workers=1,
                corpus_path=tmp_path,
            )
            assert report.failure_count == 1
            record = report.counterexamples[0]
            assert record.oracle == "rg-separation"
            assert len(record.system.tasks) <= 3
        # The patch is gone: with a correct Release Guard, the shrunk
        # counterexample must now pass its oracle.
        records = load_corpus(tmp_path)
        assert len(records) == 1
        outcomes = replay_corpus(records)
        assert all(outcome.passed for outcome in outcomes)


class TestCli:
    def test_fuzz_subcommand_clean_run(self, capsys):
        code = main(
            ["fuzz", "--runs", "4", "--workers", "1", "--profile", "tiny"]
        )
        assert code == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_fuzz_subcommand_stats(self, capsys):
        code = main(
            ["fuzz", "--runs", "2", "--workers", "1", "--profile", "tiny",
             "--stats"]
        )
        assert code == 0
        assert "oracle checks" in capsys.readouterr().out

    def test_fuzz_oracle_selection(self, capsys):
        code = main(
            ["fuzz", "--runs", "2", "--workers", "1", "--profile", "tiny",
             "--oracles", "trace-invariants", "precedence", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace-invariants=2" in out
        assert "sa-pm-soundness" not in out

    def test_fuzz_replay_empty_corpus(self, tmp_path, capsys):
        code = main(["fuzz-replay", "--corpus", str(tmp_path / "none")])
        assert code == 0
        assert "no corpus entries" in capsys.readouterr().out

    def test_fuzz_replay_committed_corpus(self, capsys):
        import tests.test_fuzz_corpus as corpus_test

        code = main(
            ["fuzz-replay", "--corpus", str(corpus_test.CORPUS_DIR),
             "--stats"]
        )
        assert code == 0
        assert "0 still failing" in capsys.readouterr().out
