"""Tests for the DPCP vs DPCP-p study and its CLI surface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.locks_study import (
    DEFAULT_RATIOS,
    STUDY_PROTOCOLS,
    run_locks_study,
)


@pytest.fixture(scope="module")
def study():
    # Two systems, one positive ratio: small enough for tier-1, large
    # enough to exercise the identity baseline and a contended column.
    return run_locks_study(systems=2, ratios=(0.0, 0.25))


class TestSweepShape:
    def test_protocols_and_default_ratios(self):
        assert STUDY_PROTOCOLS == ("DPCP", "DPCP-p")
        assert DEFAULT_RATIOS[0] == 0.0

    def test_cells_cover_the_full_grid(self, study):
        assert study.ratios == (0.0, 0.25)
        assert set(study.cells) == {
            (protocol, ratio)
            for protocol in STUDY_PROTOCOLS
            for ratio in study.ratios
        }
        assert study.sampled_systems == 2

    def test_cell_accessor(self, study):
        cell = study.cell("DPCP", 0.25)
        assert cell.protocol == "DPCP"
        assert cell.ratio == 0.25
        assert cell.systems == 2

    def test_zero_ratio_cells_see_no_lock_traffic(self, study):
        for protocol in STUDY_PROTOCOLS:
            cell = study.cell(protocol, 0.0)
            assert cell.measured_wait == 0.0
            assert cell.acquisitions == 0
            # Ratio 0 is the lock-free baseline: every sampled system
            # was SA/PM-schedulable, and blocking-aware == base there.
            assert cell.pm_schedulable == cell.systems

    def test_positive_ratio_cells_saw_contention(self, study):
        assert any(
            study.cell(protocol, 0.25).acquisitions > 0
            for protocol in STUDY_PROTOCOLS
        )


class TestGates:
    def test_lock_free_identity_holds(self, study):
        assert study.lock_free_identity

    def test_schedulability_monotone(self, study):
        assert study.schedulability_monotone

    def test_gate_is_the_conjunction(self, study):
        assert study.gate_passed == (
            study.lock_free_identity
            and study.schedulability_monotone
            and study.ranking_demonstrated
        )

    def test_render_reports_every_gate(self, study):
        text = study.render()
        assert "locks study: 2 system(s)" in text
        assert "lock-free identity (both timebases):" in text
        assert "schedulability monotone in ratio:" in text
        assert "DPCP >= DPCP-p measured waiting:" in text


class TestValidation:
    def test_zero_systems_rejected(self):
        with pytest.raises(ConfigurationError):
            run_locks_study(systems=0)

    def test_empty_ratios_rejected(self):
        with pytest.raises(ConfigurationError):
            run_locks_study(systems=1, ratios=())


class TestCli:
    COMMON = ["--systems", "1", "--ratios", "0", "0.25"]

    def test_prints_the_study_table(self, capsys):
        assert main(["locks", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "locks study" in out
        assert "DPCP >= DPCP-p measured waiting:" in out

    def test_require_gate_exit_code_matches_the_verdict(self, capsys):
        code = main(["locks", *self.COMMON, "--require-gate"])
        out = capsys.readouterr().out
        verdicts = [
            "lock-free identity (both timebases): ok" in out,
            "schedulability monotone in ratio: yes" in out,
            "DPCP >= DPCP-p measured waiting: yes" in out,
        ]
        assert code == (0 if all(verdicts) else 1)

    def test_custom_workload(self, capsys):
        assert main(
            [
                "locks",
                "--systems", "1",
                "--ratios", "0",
                "--n", "2",
                "--u", "0.3",
                "--tasks", "3",
                "--processors", "2",
            ]
        ) == 0
        assert "1 system(s)" in capsys.readouterr().out

    def test_fuzz_accepts_the_locks_dimension(self, capsys):
        assert main(
            ["fuzz", "--runs", "2", "--workers", "1", "--locks", "locks"]
        ) == 0
