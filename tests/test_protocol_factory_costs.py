"""Unit tests for the protocol factory and the Section 3.3 cost model."""

from __future__ import annotations

import pytest

from repro.core.protocols.costs import (
    PROTOCOL_COSTS,
    overhead_per_instance,
)
from repro.core.protocols.direct import DirectSynchronization
from repro.core.protocols.factory import (
    PROTOCOL_NAMES,
    make_controller,
    pm_bounds_for,
)
from repro.core.protocols.modified_pm import ModifiedPhaseModification
from repro.core.protocols.phase_modification import PhaseModification
from repro.core.protocols.release_guard import ReleaseGuard
from repro.errors import ConfigurationError
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task


class TestFactory:
    def test_names_in_paper_order(self):
        assert PROTOCOL_NAMES == ("DS", "PM", "MPM", "RG")

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("DS", DirectSynchronization),
            ("PM", PhaseModification),
            ("MPM", ModifiedPhaseModification),
            ("RG", ReleaseGuard),
        ],
    )
    def test_builds_right_controller(self, example2, name, cls):
        controller = make_controller(name, example2)
        assert isinstance(controller, cls)
        assert controller.name == name

    def test_case_insensitive(self, example2):
        assert isinstance(make_controller("rg", example2), ReleaseGuard)

    def test_unknown_protocol(self, example2):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            make_controller("EDF", example2)

    def test_pm_gets_sa_pm_bounds_by_default(self, example2):
        controller = make_controller("PM", example2)
        assert controller.bounds[SubtaskId(1, 0)] == pytest.approx(4.0)

    def test_explicit_bounds_override(self, example2):
        bounds = {sid: 1.0 for sid in example2.subtask_ids}
        controller = make_controller("MPM", example2, bounds=bounds)
        assert controller.bounds[SubtaskId(1, 0)] == 1.0

    def test_pm_bounds_reject_unbounded_prefix(self):
        # Overload the first stage's processor -> infinite prefix bound.
        hog = Task(period=2.0, subtasks=(Subtask(1.8, "A", priority=0),))
        chain = Task(
            period=8.0,
            subtasks=(Subtask(1.0, "A", priority=1),
                      Subtask(1.0, "B", priority=0)),
        )
        with pytest.raises(ConfigurationError, match="infinite"):
            pm_bounds_for(System((hog, chain)))

    def test_infinite_last_stage_bound_tolerated(self):
        # An unbounded LAST stage does not stop PM from scheduling.
        hog = Task(period=2.0, subtasks=(Subtask(1.8, "B", priority=0),))
        chain = Task(
            period=8.0,
            subtasks=(Subtask(1.0, "A", priority=0),
                      Subtask(1.0, "B", priority=1)),
        )
        bounds = pm_bounds_for(System((hog, chain)))
        assert bounds[SubtaskId(1, 0)] == pytest.approx(1.0)


class TestCosts:
    def test_all_protocols_covered(self):
        assert set(PROTOCOL_COSTS) == {"DS", "PM", "MPM", "RG"}

    def test_ds_is_cheapest(self):
        ds = PROTOCOL_COSTS["DS"]
        assert ds.variables_per_subtask == 0
        assert ds.interrupts_per_instance == 1
        assert not ds.needs_timer_interrupt
        assert not ds.needs_clock_sync
        assert not ds.needs_global_load_info

    def test_pm_needs_clock_sync_and_load_info(self):
        pm = PROTOCOL_COSTS["PM"]
        assert pm.needs_clock_sync
        assert pm.needs_global_load_info
        assert pm.needs_timer_interrupt
        assert not pm.needs_sync_interrupt

    def test_mpm_drops_clock_sync_keeps_load_info(self):
        mpm = PROTOCOL_COSTS["MPM"]
        assert not mpm.needs_clock_sync
        assert mpm.needs_global_load_info
        assert mpm.interrupts_per_instance == 2

    def test_rg_needs_neither_clock_nor_load_info(self):
        rg = PROTOCOL_COSTS["RG"]
        assert not rg.needs_clock_sync
        assert not rg.needs_global_load_info
        assert rg.variables_per_subtask == 1
        assert rg.interrupts_per_instance == 2

    def test_all_pay_two_context_switches(self):
        assert all(
            costs.context_switches_per_instance == 2
            for costs in PROTOCOL_COSTS.values()
        )

    def test_overhead_per_instance(self):
        # RG: 2 interrupts + 2 context switches.
        assert overhead_per_instance(
            "RG", interrupt_cost=0.01, context_switch_cost=0.02
        ) == pytest.approx(0.06)
        # DS: 1 interrupt + 2 context switches.
        assert overhead_per_instance(
            "DS", interrupt_cost=0.01, context_switch_cost=0.02
        ) == pytest.approx(0.05)

    def test_overhead_rejects_negative_costs(self):
        with pytest.raises(ConfigurationError):
            overhead_per_instance("DS", interrupt_cost=-1, context_switch_cost=0)

    def test_overhead_rejects_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            overhead_per_instance("XX", interrupt_cost=0, context_switch_cost=0)

    def test_describe_readable(self):
        text = PROTOCOL_COSTS["MPM"].describe()
        assert "timer+sync" in text
        assert "clock-sync=no" in text
