"""Unit tests for the Direct Synchronization protocol."""

from __future__ import annotations

import pytest

from repro.api import run_protocol
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task


class TestFigureThree:
    """The DS schedule of Example 2 (Figure 3), instant by instant."""

    def test_t22_release_pattern(self, example2):
        result = run_protocol(example2, "DS", horizon=30.0)
        t22 = SubtaskId(1, 1)
        releases = [result.trace.release_time(t22, m) for m in range(5)]
        # "the instances of T2,2 are released at times 4, 8, 16, 20, 28".
        assert releases == [4.0, 8.0, 16.0, 20.0, 28.0]

    def test_successor_released_at_predecessor_completion(self, example2):
        result = run_protocol(example2, "DS", horizon=30.0)
        for m in range(4):
            completion = result.trace.completion_time(SubtaskId(1, 0), m)
            release = result.trace.release_time(SubtaskId(1, 1), m)
            assert release == pytest.approx(completion)

    def test_t3_first_instance_misses_deadline(self, example2):
        result = run_protocol(example2, "DS", horizon=30.0)
        # Released at 4, completes at 12: response 8 > deadline 6.
        assert result.trace.eer_time(2, 0) == pytest.approx(8.0)
        assert result.metrics.task(2).deadline_misses >= 1

    def test_t21_remains_periodic(self, example2):
        result = run_protocol(example2, "DS", horizon=30.0)
        releases = [
            result.trace.release_time(SubtaskId(1, 0), m) for m in range(5)
        ]
        assert releases == [0.0, 6.0, 12.0, 18.0, 24.0]


class TestClumping:
    def test_back_to_back_releases_possible(self):
        """The clumping effect: successive successor releases can be far
        closer together than the period."""
        # Stage 1 shares a processor with a blocking high-priority task
        # released in bursts, so stage-1 completions alternate between
        # delayed and immediate.
        blocker = Task(
            period=20.0,
            phase=0.0,
            subtasks=(Subtask(9.0, "A", priority=0),),
            name="blocker",
        )
        chain = Task(
            period=10.0,
            subtasks=(
                Subtask(1.0, "A", priority=1),
                Subtask(1.0, "B", priority=0),
            ),
            name="chain",
        )
        result = run_protocol(System((blocker, chain)), "DS", horizon=39.0)
        stage2 = SubtaskId(1, 1)
        r0 = result.trace.release_time(stage2, 0)
        r1 = result.trace.release_time(stage2, 1)
        # Instance 0 completes stage 1 only after the 9-unit blocker; the
        # next stage-1 instance flows straight through: releases clump to
        # 1 time unit apart instead of 10.
        assert r0 == pytest.approx(10.0)
        assert r1 == pytest.approx(11.0)

    def test_no_precedence_violations(self, example2):
        result = run_protocol(example2, "DS", horizon=60.0)
        assert result.metrics.precedence_violations == 0


class TestAverageBehaviour:
    def test_ds_fastest_for_the_chain_task(self, example2):
        """DS releases the chain's stages as early as possible, so the
        multi-stage task T2 sees its smallest average EER under DS."""
        from repro.api import compare_protocols

        results = compare_protocols(
            example2, ("DS", "PM", "MPM", "RG"), horizon=120.0
        )
        ds = results["DS"].metrics.task(1).average_eer
        for other in ("PM", "MPM", "RG"):
            assert ds <= results[other].metrics.task(1).average_eer + 1e-9

    def test_ds_clumping_hurts_interfered_task(self, example2):
        """No per-task ordering holds globally: T3 never waits for a
        predecessor, yet it fares WORSE under DS than under RG/PM because
        DS lets T2,2's releases clump on T3's processor -- the paper's
        motivating observation."""
        from repro.api import compare_protocols

        results = compare_protocols(example2, ("DS", "RG", "PM"), horizon=120.0)
        ds = results["DS"].metrics.task(2).average_eer
        assert ds > results["RG"].metrics.task(2).average_eer
        assert ds > results["PM"].metrics.task(2).average_eer

    def test_eer_at_least_sum_of_exec_times(self, example2):
        result = run_protocol(example2, "DS", horizon=60.0)
        for task_index, task in enumerate(example2.tasks):
            floor = task.total_execution_time
            for m in result.trace.completed_task_instances(task_index):
                assert result.trace.eer_time(task_index, m) >= floor - 1e-9
