"""Simulation-level clock tests: identity, invariance, and separation.

The load-bearing properties of the clock subsystem, end to end:

* perfect clocks are *byte-identical* to no clocks at all, for every
  protocol, under both timebases (the plumbing adds nothing);
* a fixed offset is invisible to the duration-measuring protocols (MPM,
  RG) -- byte-exact under the exact backend, where arithmetic is
  associative;
* the same offset breaks PM (absolute local-time phase table), while
  bounded drift leaves MPM/RG within the skew-inflated SA/PM bounds --
  the PM-vs-MPM/RG separation.
"""

from __future__ import annotations

import math

import pytest

from repro.api import run_protocol
from repro.clocks import ClockConfig, ClockMap
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.analysis.skew import analyze_sa_pm_skewed
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

PROTOCOLS = ("DS", "PM", "MPM", "RG")

CONFIG = WorkloadConfig(
    subtasks_per_task=3,
    utilization=0.6,
    tasks=4,
    processors=3,
    period_min=100.0,
    period_max=1000.0,
    period_scale=300.0,
)


@pytest.fixture(scope="module")
def system():
    """A deterministic SA/PM-schedulable system (PM/MPM can run)."""
    for seed in range(20):
        candidate = generate_system(CONFIG, seed=seed)
        if analyze_sa_pm(candidate).schedulable:
            return candidate
    raise AssertionError("no SA/PM-schedulable seed in range")


def _run(system, protocol, *, clocks=None, timebase="float"):
    return run_protocol(
        system,
        protocol,
        horizon_periods=3.0,
        clocks=clocks,
        timebase=timebase,
    )


def _trace_fingerprint(result):
    return (dict(result.trace.releases), dict(result.trace.completions))


class TestPerfectClockIdentity:
    """Satellite: perfect clocks change nothing, byte for byte."""

    @pytest.mark.parametrize("timebase", ["float", "exact"])
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_clock_map_perfect_is_identity(self, system, protocol, timebase):
        bare = _run(system, protocol, timebase=timebase)
        mapped = _run(
            system, protocol, clocks=ClockMap.perfect(), timebase=timebase
        )
        assert _trace_fingerprint(bare) == _trace_fingerprint(mapped)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_perfect_clock_config_is_identity(self, system, protocol):
        bare = _run(system, protocol)
        configured = _run(system, protocol, clocks=ClockConfig())
        assert _trace_fingerprint(bare) == _trace_fingerprint(configured)


class TestOffsetInvariance:
    """A constant offset cancels in every duration measurement."""

    @pytest.mark.parametrize("protocol", ["DS", "MPM", "RG"])
    def test_duration_protocols_unmoved_under_exact(self, system, protocol):
        offset = ClockConfig(kind="offset", offset=40.0)
        bare = _run(system, protocol, timebase="exact")
        skewed = _run(system, protocol, clocks=offset, timebase="exact")
        assert _trace_fingerprint(bare) == _trace_fingerprint(skewed)
        # The offset adds nothing: whatever the bare run did (including
        # any boundary-instant artifacts), the skewed run does likewise.
        assert len(skewed.trace.violations) == len(bare.trace.violations)

    def test_pm_is_not_invariant(self, system):
        offset = ClockConfig(kind="offset", offset=40.0)
        bare = _run(system, "PM", timebase="exact")
        skewed = _run(system, "PM", clocks=offset, timebase="exact")
        assert _trace_fingerprint(bare) != _trace_fingerprint(skewed)


class TestSeparation:
    """PM breaks under skew; MPM/RG stay within the skewed bounds."""

    def test_pm_violates_precedence_under_offset(self):
        # Finder-verified witness: seed 1, half-period offset.
        system = generate_system(CONFIG, seed=1)
        assert analyze_sa_pm(system).schedulable
        clean = _run(system, "PM")
        assert not clean.trace.violations
        assert clean.metrics.total_deadline_misses == 0
        skewed = _run(
            system, "PM", clocks=ClockConfig(kind="offset", offset=150.0)
        )
        assert skewed.trace.violations
        assert skewed.metrics.total_deadline_misses > 0

    @pytest.mark.parametrize("protocol", ["MPM", "RG"])
    def test_drift_stays_within_skewed_bounds(self, system, protocol):
        # Drift makes MPM's timers fire slightly early (precedence is
        # legitimately breakable -- that is the clock study's finding);
        # the certified contract is the skew-inflated *bound*.
        clocks = ClockConfig(kind="drift", rate=1e-4)
        skewed_bounds = analyze_sa_pm_skewed(system, clocks=clocks)
        result = _run(system, protocol, clocks=clocks)
        for task_index in range(len(system.tasks)):
            bound = skewed_bounds.task_bounds[task_index]
            observed = result.metrics.task(task_index).max_eer
            if math.isnan(observed):
                continue  # no instance completed inside the horizon
            assert observed <= bound + 1e-6 * max(1.0, bound)

    @pytest.mark.parametrize("protocol", ["MPM", "RG"])
    def test_resync_stays_within_skewed_bounds(self, system, protocol):
        clocks = ClockConfig(
            kind="resync", precision=2.0, interval=100.0, rate=1e-5, seed=4
        )
        skewed_bounds = analyze_sa_pm_skewed(system, clocks=clocks)
        result = _run(system, protocol, clocks=clocks)
        for task_index in range(len(system.tasks)):
            bound = skewed_bounds.task_bounds[task_index]
            observed = result.metrics.task(task_index).max_eer
            if math.isnan(observed):
                continue
            assert observed <= bound + 1e-6 * max(1.0, bound)

    def test_ds_ignores_clocks_entirely(self, system):
        # DS has no timers: even absurd clocks change nothing.
        wild = ClockConfig(kind="offset", offset=10_000.0)
        bare = _run(system, "DS", timebase="exact")
        skewed = _run(system, "DS", clocks=wild, timebase="exact")
        assert _trace_fingerprint(bare) == _trace_fingerprint(skewed)
