"""Durability primitives: framing, atomic writes, salvage, quarantine."""

from __future__ import annotations

import json
import logging
import sqlite3

import pytest

from repro.errors import ConfigurationError
from repro.service.cache import DecisionCache
from repro.service.durability import (
    FSYNC_POLICIES,
    FrameError,
    RecoveryReport,
    atomic_write_text,
    frame_line,
    load_jsonl_salvaging,
    open_sqlite_checked,
    quarantine_sqlite,
    unframe_line,
)
from repro.service.engine import compute_decision
from repro.service.requests import AdmissionRequest
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

LIGHT = WorkloadConfig(
    subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
)


def _decision(seed: int):
    request = AdmissionRequest(system=generate_system(LIGHT, seed))
    return compute_decision(request)


class TestFraming:
    def test_round_trip(self):
        body = json.dumps({"format": "x", "value": [1, 2, 3]})
        assert unframe_line(frame_line(body)) == (body, True)

    def test_bare_line_is_legacy(self):
        assert unframe_line('{"a": 1}') == ('{"a": 1}', False)

    def test_detects_flipped_byte(self):
        framed = frame_line('{"a": 1}')
        torn = framed[:-1] + ("2" if framed[-1] != "2" else "3")
        with pytest.raises(FrameError, match="checksum mismatch"):
            unframe_line(torn)

    def test_detects_truncated_frame(self):
        framed = frame_line('{"a": 1, "b": 2}')
        with pytest.raises(FrameError, match="checksum mismatch"):
            unframe_line(framed[:-5])

    def test_malformed_header_raises(self):
        with pytest.raises(FrameError, match="malformed frame header"):
            unframe_line("#repro:crc32:v1:zz")
        with pytest.raises(FrameError, match="bad frame checksum"):
            unframe_line("#repro:crc32:v1:zzzzzzzz body")


class TestAtomicWrite:
    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_writes_under_every_policy(self, tmp_path, policy):
        target = tmp_path / "snap.jsonl"
        atomic_write_text(target, "hello\n", fsync=policy)
        assert target.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "snap.jsonl"
        target.write_text("old\n")
        atomic_write_text(target, "new\n")
        assert target.read_text() == "new\n"

    def test_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "snap.jsonl"
        atomic_write_text(target, "x\n")
        assert [p.name for p in tmp_path.iterdir()] == ["snap.jsonl"]

    def test_rejects_unknown_policy(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fsync"):
            atomic_write_text(tmp_path / "x", "x", fsync="sometimes")


class TestSalvage:
    def _write(self, path, records, *, damage=None):
        lines = [
            frame_line(json.dumps({"format": "test-v1", "n": n}))
            for n in records
        ]
        text = "\n".join(lines) + "\n"
        if damage == "tear":
            text = text[:-10]
        path.write_text(text)

    def _load(self, path):
        seen: list[int] = []
        report = load_jsonl_salvaging(
            path,
            expected_format="test-v1",
            apply=lambda entry: seen.append(entry["n"]),
        )
        return seen, report

    def test_clean_load(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self._write(path, [1, 2, 3])
        seen, report = self._load(path)
        assert seen == [1, 2, 3]
        assert report.clean
        assert report.salvaged == 0
        assert "clean load" in report.describe()

    def test_torn_tail_keeps_valid_prefix(self, tmp_path, caplog):
        path = tmp_path / "store.jsonl"
        self._write(path, [1, 2, 3], damage="tear")
        with caplog.at_level(
            logging.WARNING, logger="repro.service.durability"
        ):
            seen, report = self._load(path)
        assert seen == [1, 2]
        assert report.loaded == 2
        assert report.dropped == 1
        assert report.first_bad_line == 3
        assert report.salvaged == 2
        assert not report.clean
        assert any(
            "salvaged" in record.message for record in caplog.records
        )

    def test_mid_file_corruption_stops_at_tear(self, tmp_path):
        # A flipped byte mid-file: only the prefix is trustworthy.
        path = tmp_path / "store.jsonl"
        self._write(path, [1, 2, 3, 4])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-3] + "!!!"
        path.write_text("\n".join(lines) + "\n")
        seen, report = self._load(path)
        assert seen == [1]
        assert report.loaded == 1
        assert report.dropped == 3
        assert report.first_bad_line == 2

    def test_legacy_bare_lines_load(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(
            json.dumps({"format": "test-v1", "n": 7}) + "\n"
        )
        seen, report = self._load(path)
        assert seen == [7]
        assert report.clean

    def test_foreign_format_still_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(
            frame_line(json.dumps({"format": "other-v1", "n": 1})) + "\n"
        )
        with pytest.raises(ConfigurationError, match="format"):
            self._load(path)

    def test_writer_bug_still_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(
            frame_line(json.dumps({"format": "test-v1"})) + "\n"
        )
        with pytest.raises(ConfigurationError, match="bad record line"):
            load_jsonl_salvaging(
                path,
                expected_format="test-v1",
                apply=lambda entry: entry["missing"],
            )

    def test_non_object_line_salvages(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text("[1, 2, 3]\n")
        seen, report = self._load(path)
        assert seen == []
        assert report.dropped == 1
        assert "JSON object" in report.reason


class TestSqlite:
    SCHEMA = "CREATE TABLE IF NOT EXISTS t (k TEXT PRIMARY KEY)"

    def test_healthy_open(self, tmp_path):
        db = tmp_path / "store.sqlite"
        conn, quarantined = open_sqlite_checked(str(db), self.SCHEMA)
        try:
            assert quarantined is None
            conn.execute("INSERT INTO t VALUES ('a')")
            conn.commit()
        finally:
            conn.close()

    def test_corrupt_header_quarantines(self, tmp_path):
        db = tmp_path / "store.sqlite"
        conn, _ = open_sqlite_checked(str(db), self.SCHEMA)
        conn.execute("INSERT INTO t VALUES ('a')")
        conn.commit()
        conn.close()
        with open(db, "r+b") as handle:
            handle.write(b"\x00" * 64)
        conn, quarantined = open_sqlite_checked(str(db), self.SCHEMA)
        try:
            assert quarantined == str(db) + ".quarantined-0"
            assert (tmp_path / "store.sqlite.quarantined-0").exists()
            # The fresh database is empty but usable.
            assert conn.execute("SELECT COUNT(*) FROM t").fetchone()[0] == 0
        finally:
            conn.close()

    def test_quarantine_names_do_not_collide(self, tmp_path):
        db = tmp_path / "store.sqlite"
        db.write_text("junk")
        first = quarantine_sqlite(db)
        db.write_text("more junk")
        second = quarantine_sqlite(db)
        assert first.endswith(".quarantined-0")
        assert second.endswith(".quarantined-1")
        assert not db.exists()

    def test_quarantine_moves_wal_siblings(self, tmp_path):
        db = tmp_path / "store.sqlite"
        db.write_text("junk")
        (tmp_path / "store.sqlite-wal").write_text("wal")
        (tmp_path / "store.sqlite-shm").write_text("shm")
        destination = quarantine_sqlite(db)
        assert (tmp_path / "store.sqlite.quarantined-0-wal").exists()
        assert (tmp_path / "store.sqlite.quarantined-0-shm").exists()
        assert destination == str(tmp_path / "store.sqlite.quarantined-0")

    def test_memory_database_skips_check(self):
        conn, quarantined = open_sqlite_checked(":memory:", self.SCHEMA)
        conn.close()
        assert quarantined is None


class TestCacheSalvage:
    """The decision cache's own persistence rides the same primitives."""

    def _saved_cache(self, tmp_path, count=3):
        path = tmp_path / "cache.jsonl"
        cache = DecisionCache(capacity=16, path=path)
        for seed in range(count):
            decision = _decision(seed)
            cache.put(decision.key, decision)
        cache.save()
        return path

    def test_torn_tail_salvages_prefix(self, tmp_path, caplog):
        path = self._saved_cache(tmp_path)
        text = path.read_text()
        path.write_text(text[:-20])
        with caplog.at_level(
            logging.WARNING, logger="repro.service.durability"
        ):
            reloaded = DecisionCache(capacity=16, path=path)
        assert len(reloaded) == 2
        assert reloaded.last_recovery is not None
        assert reloaded.last_recovery.dropped == 1
        assert any("salvaged" in r.message for r in caplog.records)

    def test_clean_reload_reports_clean(self, tmp_path):
        path = self._saved_cache(tmp_path)
        reloaded = DecisionCache(capacity=16, path=path)
        assert len(reloaded) == 3
        assert reloaded.last_recovery.clean

    def test_snapshot_lines_are_framed(self, tmp_path):
        path = self._saved_cache(tmp_path, count=1)
        line = path.read_text().splitlines()[0]
        body, framed = unframe_line(line)
        assert framed
        assert json.loads(body)["format"] == "repro-admission-cache-v1"

    def test_close_is_idempotent_and_saves(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = DecisionCache(capacity=16, path=path)
        decision = _decision(0)
        cache.put(decision.key, decision)
        cache.close()
        cache.close()
        assert path.exists()
        assert len(DecisionCache(capacity=16, path=path)) == 1

    def test_context_manager_saves_on_exit(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with DecisionCache(capacity=16, path=path) as cache:
            decision = _decision(0)
            cache.put(decision.key, decision)
        assert path.exists()

    def test_rejects_unknown_fsync(self):
        with pytest.raises(ConfigurationError, match="fsync"):
            DecisionCache(capacity=16, fsync="sometimes")
