"""Unit tests for the Section 5.1 synthetic workload generator."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.model.validation import check_consecutive_placement
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_batch, generate_system


@pytest.fixture
def config() -> WorkloadConfig:
    return WorkloadConfig(subtasks_per_task=4, utilization=0.7)


class TestStructure:
    def test_task_and_chain_counts(self, config):
        system = generate_system(config, seed=0)
        assert len(system.tasks) == 12
        assert all(t.chain_length == 4 for t in system.tasks)

    def test_processor_count(self, config):
        system = generate_system(config, seed=0)
        assert len(system.processors) == 4

    def test_no_consecutive_colocation(self, config):
        for seed in range(10):
            system = generate_system(config, seed=seed)
            assert check_consecutive_placement(system) == []

    def test_periods_within_paper_range(self, config):
        system = generate_system(config, seed=1)
        for task in system.tasks:
            assert 100.0 <= task.period <= 10_000.0

    def test_every_processor_hits_target_utilization(self, config):
        system = generate_system(config, seed=2)
        for utilization in system.utilizations().values():
            assert utilization == pytest.approx(0.7)

    def test_phases_zero_without_random_phases(self, config):
        system = generate_system(config, seed=3)
        assert all(t.phase == 0.0 for t in system.tasks)

    def test_random_phases_within_period(self):
        config = WorkloadConfig(
            subtasks_per_task=3, utilization=0.5, random_phases=True
        )
        system = generate_system(config, seed=3)
        assert any(t.phase > 0 for t in system.tasks)
        for task in system.tasks:
            assert 0.0 <= task.phase < task.period

    def test_priorities_are_pd_monotonic(self, config):
        from repro.model.priority import proportional_deadline

        system = generate_system(config, seed=4)
        for processor in system.processors:
            local = system.subtasks_on(processor)
            ordered = sorted(local, key=lambda sid: system.subtask(sid).priority)
            deadlines = [proportional_deadline(system, sid) for sid in ordered]
            assert deadlines == sorted(deadlines)

    def test_alternative_policy_honoured(self):
        config = WorkloadConfig(
            subtasks_per_task=2,
            utilization=0.5,
            priority_policy="rate-monotonic",
        )
        system = generate_system(config, seed=0)
        for processor in system.processors:
            local = sorted(
                system.subtasks_on(processor),
                key=lambda sid: system.subtask(sid).priority,
            )
            periods = [system.period_of(sid) for sid in local]
            assert periods == sorted(periods)


class TestDeterminism:
    def test_same_seed_same_system(self, config):
        a = generate_system(config, seed=11)
        b = generate_system(config, seed=11)
        assert a.tasks == b.tasks

    def test_different_seed_different_system(self, config):
        a = generate_system(config, seed=11)
        b = generate_system(config, seed=12)
        assert a.tasks != b.tasks

    def test_batch_uses_consecutive_seeds(self, config):
        batch = generate_batch(config, 3, base_seed=5)
        singles = [generate_system(config, seed=5 + k) for k in range(3)]
        assert [s.tasks for s in batch] == [s.tasks for s in singles]

    def test_negative_count_rejected(self, config):
        with pytest.raises(WorkloadError):
            generate_batch(config, -1)

    def test_empty_batch(self, config):
        assert generate_batch(config, 0) == []


class TestEdgeCases:
    def test_single_stage_tasks(self):
        config = WorkloadConfig(subtasks_per_task=1, utilization=0.5)
        system = generate_system(config, seed=0)
        assert all(t.chain_length == 1 for t in system.tasks)

    def test_two_processors_alternate(self):
        config = WorkloadConfig(
            subtasks_per_task=5, utilization=0.5, processors=2, tasks=3
        )
        system = generate_system(config, seed=0)
        for task in system.tasks:
            processors = task.processors()
            assert all(
                a != b for a, b in zip(processors, processors[1:])
            )

    def test_impossible_coverage_raises(self):
        # One single-stage task cannot cover four processors.
        config = WorkloadConfig(
            subtasks_per_task=1, utilization=0.5, tasks=1, processors=4
        )
        with pytest.raises(WorkloadError, match="could not place"):
            generate_system(config, seed=0)

    def test_name_override(self, config):
        system = generate_system(config, seed=0, name="bespoke")
        assert system.name == "bespoke"

    def test_default_name_mentions_config_and_seed(self, config):
        system = generate_system(config, seed=7)
        assert "(4,70)" in system.name
        assert "seed7" in system.name
