"""Unit tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.report import suite_report
from repro.experiments.runner import run_suite


@pytest.fixture(scope="module")
def suite():
    return run_suite(
        systems=2,
        subtask_counts=(2, 3),
        utilizations=(0.5,),
        horizon_periods=4.0,
        grid_overrides={"tasks": 4, "processors": 3},
    )


class TestSuiteReport:
    def test_contains_all_figures(self, suite):
        text = suite_report(suite)
        for number in (12, 13, 14, 15, 16):
            assert f"## Figure {number}" in text

    def test_contains_run_parameters(self, suite):
        text = suite_report(suite)
        assert "systems per configuration: **2**" in text
        assert "tasks per system: **4**" in text

    def test_contains_expectation_verdicts(self, suite):
        text = suite_report(suite)
        assert "Paper-shape expectations" in text
        assert "expectations hold" in text

    def test_markdown_tables_well_formed(self, suite):
        text = suite_report(suite)
        table_lines = [l for l in text.splitlines() if l.startswith("|")]
        assert table_lines
        # Header separator rows: five figures + two schedulability tables.
        assert sum(1 for l in table_lines if set(l) <= {"|", "-"}) == 7

    def test_custom_title(self, suite):
        text = suite_report(suite, title="My run")
        assert text.startswith("# My run")

    def test_schedulability_section_present(self, suite):
        text = suite_report(suite)
        assert "Certifiable schedulability" in text
        assert "SA/DS (the DS verdict)" in text

    def test_cli_markdown_flag(self, tmp_path):
        out = tmp_path / "report.md"
        code = main(
            [
                "suite",
                "--systems", "1",
                "--subtasks", "2",
                "--utilizations", "0.5",
                "--tasks", "3",
                "--processors", "2",
                "--horizon-periods", "4",
                "--markdown", str(out),
            ]
        )
        assert code == 0
        assert "## Figure 12" in out.read_text()
