"""Region construction: verified corners, gating, exact boundaries.

The load-bearing invariant is that every non-``None`` corner is a
*directly verified* point -- ``covers`` then extends the certificate by
monotonicity.  These tests re-probe corners with the same ground truth
the search used (:func:`repro.regions.compute.probe_point`), pin the
shape-level analysis gating, and exercise the exact-timebase boundary
arithmetic the float backend cannot express.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.model.system import System
from repro.model.task import CriticalSection, Subtask, Task
from repro.regions.compute import (
    DEFAULT_MAX_FACTOR,
    DEFAULT_TOLERANCE,
    compute_region,
    probe_point,
    required_analyses,
)
from repro.regions.region import region_from_dict, region_to_dict
from repro.regions.shape import execution_vector, shape_key, system_at
from repro.service.requests import AdmissionRequest
from repro.timebase import get_timebase
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system


def _light_request(seed: int = 3, **options) -> AdmissionRequest:
    config = WorkloadConfig(
        subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
    )
    return AdmissionRequest(system=generate_system(config, seed), **options)


def _verify_corner(request: AdmissionRequest, region, timebase=None):
    tb = get_timebase(timebase)
    for analysis in region.analyses:
        corner = region.corner(analysis)
        if corner is None:
            continue
        assert probe_point(
            request, analysis, system_at(request.system, corner), tb
        ), f"corner for {analysis} is not directly schedulable"


class TestRequiredAnalyses:
    def test_default_request_needs_both(self):
        assert required_analyses(_light_request()) == ("SA/DS", "SA/PM")

    def test_pm_gated_under_unsynchronized_clocks(self):
        request = _light_request(
            protocols=("PM",), synchronized_clocks=False
        )
        assert required_analyses(request) == ()

    def test_skew_switches_to_inflated_analysis(self):
        request = _light_request(
            protocols=("PM", "MPM", "RG"), clock_rate_bound=1e-4
        )
        assert required_analyses(request) == ("SA/PM-skew",)

    def test_skewed_sectioned_mpm_rg_gated(self):
        stage = Subtask(
            2.0,
            "P1",
            critical_sections=(CriticalSection("R1", 0.0, 1.0),),
        )
        system = System((Task(period=10.0, subtasks=(stage,)),))
        request = AdmissionRequest(
            system=system,
            protocols=("MPM", "RG"),
            shared_resources=True,
            clock_jump_bound=0.1,
        )
        assert required_analyses(request) == ()

    def test_deduplicates_shared_analysis(self):
        request = _light_request(protocols=("PM", "MPM", "RG"))
        assert required_analyses(request) == ("SA/PM",)


class TestComputeRegion:
    def test_corners_are_directly_verified(self):
        request = _light_request()
        region = compute_region(request)
        assert set(region.analyses) == {"SA/PM", "SA/DS"}
        assert region.probes > 0
        _verify_corner(request, region)

    def test_own_point_is_covered_when_schedulable(self):
        request = _light_request()
        region = compute_region(request)
        e0 = execution_vector(request.system)
        tb = get_timebase(None)
        for analysis in region.analyses:
            direct = probe_point(request, analysis, request.system, tb)
            assert region.covers(analysis, e0) == direct

    def test_covers_is_componentwise(self):
        request = _light_request()
        region = compute_region(request)
        corner = region.corner("SA/PM")
        assert corner is not None
        assert region.covers("SA/PM", corner)
        bumped = (corner[0] * 1.01,) + tuple(corner[1:])
        assert not region.covers("SA/PM", bumped)

    def test_ascent_only_grows_the_uniform_seed(self):
        request = _light_request()
        uniform = compute_region(request, ascent_rounds=0)
        ascended = compute_region(request, ascent_rounds=1)
        for analysis in uniform.analyses:
            seed = uniform.corner(analysis)
            grown = ascended.corner(analysis)
            assert seed is not None and grown is not None
            assert all(g >= s for g, s in zip(grown, seed))
        assert ascended.probes > uniform.probes
        _verify_corner(request, ascended)

    def test_overloaded_point_falls_outside_box(self):
        # Two near-full-utilization subtasks on one processor: the
        # request's own point is unschedulable, so the verified box must
        # stop below it (the tier would fall back, not falsely admit).
        system = System(
            (
                Task(period=10.0, subtasks=(Subtask(9.0, "P1"),)),
                Task(period=10.0, subtasks=(Subtask(9.0, "P1"),)),
            )
        )
        request = AdmissionRequest(system=system, protocols=("DS",))
        region = compute_region(request)
        assert region.corner("SA/DS") is not None
        assert not region.covers("SA/DS", execution_vector(system))
        _verify_corner(request, region)

    def test_box_free_shape_has_none_corner(self):
        # An iteration-starved SA/DS never certifies at any scaling:
        # the search records None rather than guessing a corner.
        system = System(
            (
                Task(period=10.0, subtasks=(Subtask(9.0, "P1"),)),
                Task(period=10.0, subtasks=(Subtask(9.0, "P1"),)),
            )
        )
        request = AdmissionRequest(
            system=system, protocols=("DS",), sa_ds_max_iterations=1
        )
        region = compute_region(request)
        assert region.corner("SA/DS") is None
        assert not region.covers("SA/DS", execution_vector(system))

    def test_single_subtask_shape(self, single_task_system):
        request = AdmissionRequest(system=single_task_system)
        region = compute_region(request)
        assert region.dimensions == ("T1,1",)
        _verify_corner(request, region)
        # One subtask, empty deadline slack aside: the verified box must
        # at least reach the task's own point.
        assert region.covers("SA/PM", (3.0,))
        assert region.covers("SA/DS", (3.0,))

    def test_sectioned_request_uses_blocking_analyses(self):
        stage_a = Subtask(
            2.0,
            "P1",
            priority=0,
            critical_sections=(CriticalSection("R1", 0.0, 1.0),),
        )
        stage_b = Subtask(
            3.0,
            "P2",
            priority=0,
            critical_sections=(CriticalSection("R1", 1.0, 1.0),),
        )
        system = System(
            (
                Task(period=20.0, subtasks=(stage_a,)),
                Task(period=30.0, subtasks=(stage_b,)),
            )
        )
        request = AdmissionRequest(system=system, shared_resources=True)
        region = compute_region(request)
        _verify_corner(request, region)
        plain = compute_region(
            AdmissionRequest(system=system, shared_resources=False)
        )
        corner = region.corner("SA/PM")
        free = plain.corner("SA/PM")
        assert corner is not None and free is not None
        # Blocking terms can only shrink the verified box.
        assert all(c <= f + 1e-9 for c, f in zip(corner, free))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tolerance": 0.0},
            {"tolerance": -1.0},
            {"max_factor": 0.0},
            {"ascent_rounds": -1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            compute_region(_light_request(), **kwargs)


class TestExactTimebase:
    def test_corners_are_rational(self):
        request = _light_request()
        region = compute_region(request, timebase="exact")
        assert region.timebase == "exact"
        for analysis in region.analyses:
            corner = region.corner(analysis)
            assert corner is not None
            assert all(not isinstance(value, float) for value in corner)
        _verify_corner(request, region, timebase="exact")

    def test_boundary_membership_is_exact(self, single_task_system):
        request = AdmissionRequest(
            system=single_task_system, protocols=("DS",)
        )
        region = compute_region(request, timebase="exact")
        corner = region.corner("SA/DS")
        assert corner is not None
        (u,) = corner
        # The corner itself is in; one part in 10^12 beyond is out --
        # no epsilon window on either side.
        assert region.covers("SA/DS", (u,))
        assert not region.covers(
            "SA/DS", (u * (1 + Fraction(1, 10**12)),)
        )

    def test_exact_region_round_trips_losslessly(self):
        region = compute_region(_light_request(), timebase="exact")
        restored = region_from_dict(region_to_dict(region))
        assert restored == region

    def test_float_region_round_trips(self):
        region = compute_region(_light_request())
        assert region_from_dict(region_to_dict(region)) == region


class TestDefaults:
    def test_defaults_are_powers_of_two(self):
        # Power-of-two tolerance/cap keep exact bisection denominators
        # small; a drive-by change here would blow up Fraction sizes.
        assert DEFAULT_TOLERANCE == Fraction(1, 64)
        assert float(DEFAULT_MAX_FACTOR) == 16.0
