"""Guards keeping the documentation honest."""

from __future__ import annotations

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self) -> str:
        return (REPO / "README.md").read_text()

    def test_quickstart_snippet_runs(self, readme):
        """Execute the README's quickstart block verbatim."""
        start = readme.index("```python") + len("```python")
        end = readme.index("```", start)
        snippet = readme[start:end]
        namespace: dict = {}
        exec(compile(snippet, "<README quickstart>", "exec"), namespace)

    def test_mentions_every_example_script(self, readme):
        for script in (REPO / "examples").glob("*.py"):
            assert script.name in readme, f"{script.name} not in README"

    def test_mentions_every_docs_page(self, readme):
        for page in (REPO / "docs").glob("*.md"):
            assert page.name in readme, f"{page.name} not in README"


class TestDocsCrossReferences:
    @pytest.mark.parametrize(
        "page", ["protocols.md", "analysis.md", "simulator.md",
                 "experiments.md", "tutorial.md"]
    )
    def test_pages_exist_and_are_substantial(self, page):
        text = (REPO / "docs" / page).read_text()
        assert len(text.splitlines()) > 40

    def test_referenced_modules_exist(self):
        """Every `repro.x.y` dotted path mentioned in docs imports."""
        import importlib
        import re

        pattern = re.compile(r"`(repro(?:\.[a-z_]+)+)`")
        for page in (REPO / "docs").glob("*.md"):
            for match in pattern.finditer(page.read_text()):
                dotted = match.group(1)
                module = dotted
                # Try as module; fall back to attribute of parent module.
                try:
                    importlib.import_module(module)
                    continue
                except ImportError:
                    pass
                parent, _, attr = dotted.rpartition(".")
                mod = importlib.import_module(parent)
                assert hasattr(mod, attr), f"{dotted} (in {page.name})"


class TestProjectMetadata:
    def test_design_doc_lists_every_experiment_bench(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in (REPO / "benchmarks").glob("test_bench_fig*.py"):
            assert bench.name in design, f"{bench.name} not indexed"

    def test_experiments_doc_mentions_discrepancy(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "Discrepancy" in text
        assert "300" in text  # the failure cutoff

    def test_version_consistent(self):
        import repro

        pyproject = (REPO / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject
