"""Unit tests for the shared busy-period machinery (Steps 1-5)."""

from __future__ import annotations

import pytest

from repro.core.analysis.busy_period import (
    analyze_subtask,
    interference_terms,
)
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task


def _rm_pair() -> System:
    """The textbook two-task single-processor example.

    T1 = (4, 2) at high priority, T2 = (6, 2) below it -- processor P1 of
    the paper's Example 2.
    """
    t1 = Task(period=4.0, subtasks=(Subtask(2.0, "P1", priority=0),))
    t2 = Task(period=6.0, subtasks=(Subtask(2.0, "P1", priority=1),))
    return System((t1, t2))


class TestInterferenceTerms:
    def test_terms_carry_execution_and_period(self):
        system = _rm_pair()
        terms = interference_terms(system, SubtaskId(1, 0))
        assert terms == [(2.0, 4.0, SubtaskId(0, 0))]

    def test_highest_priority_has_no_terms(self):
        assert interference_terms(_rm_pair(), SubtaskId(0, 0)) == []


class TestZeroJitterAnalysis:
    def test_highest_priority_bound_is_execution_time(self):
        record = analyze_subtask(_rm_pair(), SubtaskId(0, 0))
        assert record.bound == pytest.approx(2.0)
        assert record.busy_period == pytest.approx(2.0)
        assert record.instance_count == 1

    def test_low_priority_bound_example2_value(self):
        # The paper: R_2,1 = 4 on processor P1 of Example 2.
        record = analyze_subtask(_rm_pair(), SubtaskId(1, 0))
        assert record.bound == pytest.approx(4.0)

    def test_busy_period_covers_both_tasks(self):
        record = analyze_subtask(_rm_pair(), SubtaskId(1, 0))
        # t = 2*ceil(t/4) + 2*ceil(t/6): t=4 works (2+2).
        assert record.busy_period == pytest.approx(4.0)

    def test_multiple_instances_in_long_busy_period(self):
        # T1 = (9, 6) above T2 = (4, 1): U = 11/12.  The level-2 busy
        # period is 8 (t = 6*ceil(t/9) + ceil(t/4) -> 8), containing
        # M = ceil(8/4) = 2 instances of T2.
        t1 = Task(period=9.0, subtasks=(Subtask(6.0, "P1", priority=0),))
        t2 = Task(period=4.0, subtasks=(Subtask(1.0, "P1", priority=1),))
        record = analyze_subtask(System((t1, t2)), SubtaskId(1, 0))
        assert record.busy_period == pytest.approx(8.0)
        assert record.instance_count == 2
        # C(1) = 1 + 6 = 7 -> R(1) = 7;  C(2) = 2 + 6 = 8 -> R(2) = 4.
        assert record.per_instance_bounds == pytest.approx((7.0, 4.0))
        assert record.bound == pytest.approx(7.0)
        assert record.critical_instance == 1

    def test_overloaded_processor_returns_none(self):
        t1 = Task(period=4.0, subtasks=(Subtask(3.0, "P1", priority=0),))
        t2 = Task(period=4.0, subtasks=(Subtask(2.0, "P1", priority=1),))
        record = analyze_subtask(System((t1, t2)), SubtaskId(1, 0))
        assert record.bound is None
        assert record.busy_period is None

    def test_utilization_exactly_one_returns_none(self):
        t1 = Task(period=4.0, subtasks=(Subtask(2.0, "P1", priority=0),))
        t2 = Task(period=4.0, subtasks=(Subtask(2.0, "P1", priority=1),))
        record = analyze_subtask(System((t1, t2)), SubtaskId(1, 0))
        assert record.bound is None

    def test_critical_instance_index(self):
        record = analyze_subtask(_rm_pair(), SubtaskId(1, 0))
        assert record.critical_instance == 1


class TestLehoczkyClassic:
    """Lehoczky's arbitrary-deadline example: (70, 26) over (100, 62).

    Utilization 0.9914; the level-2 busy period spans several T2
    instances and the worst response is NOT the first instance's.  The
    synchronous (phase-0) schedule is the analysis's critical instant,
    so the simulated maximum must match the analytic bound exactly.
    """

    def _system(self) -> System:
        t1 = Task(period=70.0, subtasks=(Subtask(26.0, "P", priority=0),))
        t2 = Task(period=100.0, subtasks=(Subtask(62.0, "P", priority=1),))
        return System((t1, t2))

    def test_busy_period_spans_multiple_instances(self):
        record = analyze_subtask(self._system(), SubtaskId(1, 0))
        assert record.instance_count >= 2
        assert record.bound is not None

    def test_worst_instance_is_not_the_first(self):
        record = analyze_subtask(self._system(), SubtaskId(1, 0))
        assert record.critical_instance != 1

    def test_analysis_matches_synchronous_simulation_exactly(self):
        from repro.api import run_protocol

        system = self._system()
        record = analyze_subtask(system, SubtaskId(1, 0))
        run = run_protocol(system, "DS", horizon=3000.0)
        observed = max(run.trace.subtask_response_times(SubtaskId(1, 0)))
        assert observed == pytest.approx(record.bound)

    def test_first_instance_value(self):
        # C(1) = 62 + 26*ceil(C/70): 88 -> 114 -> 114 (ceil(114/70)=2).
        record = analyze_subtask(self._system(), SubtaskId(1, 0))
        assert record.per_instance_bounds[0] == pytest.approx(114.0)


class TestJitteredAnalysis:
    def test_jitter_inflates_interference(self):
        system = _rm_pair()
        plain = analyze_subtask(system, SubtaskId(1, 0))
        jittered = analyze_subtask(
            system, SubtaskId(1, 0), {SubtaskId(0, 0): 2.0}
        )
        assert jittered.bound is not None and plain.bound is not None
        assert jittered.bound >= plain.bound

    def test_own_jitter_added_to_bound(self):
        system = _rm_pair()
        base = analyze_subtask(system, SubtaskId(0, 0))
        with_self_jitter = analyze_subtask(
            system, SubtaskId(0, 0), {SubtaskId(0, 0): 3.0}
        )
        assert with_self_jitter.bound == pytest.approx(base.bound + 3.0)

    def test_own_jitter_extends_instance_window(self):
        system = _rm_pair()
        record = analyze_subtask(
            system, SubtaskId(1, 0), {SubtaskId(1, 0): 9.0}
        )
        # M = ceil((D + 9) / 6) counts extra instances.
        plain = analyze_subtask(system, SubtaskId(1, 0))
        assert record.instance_count > plain.instance_count

    def test_negative_jitter_rejected(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            analyze_subtask(
                _rm_pair(), SubtaskId(1, 0), {SubtaskId(1, 0): -1.0}
            )

    def test_abort_above_reports_aborted(self):
        # Force a tiny cutoff so the first instance already exceeds it.
        record = analyze_subtask(
            _rm_pair(), SubtaskId(1, 0), abort_above=1.0
        )
        assert record.aborted
        assert record.bound is None

    def test_abort_above_not_triggered_when_bound_small(self):
        record = analyze_subtask(
            _rm_pair(), SubtaskId(1, 0), abort_above=100.0
        )
        assert not record.aborted
        assert record.bound == pytest.approx(4.0)

    def test_monotone_in_jitter(self):
        system = _rm_pair()
        bounds = []
        for jitter in (0.0, 1.0, 2.5, 4.0, 8.0):
            record = analyze_subtask(
                system, SubtaskId(1, 0), {SubtaskId(0, 0): jitter}
            )
            assert record.bound is not None
            bounds.append(record.bound)
        assert bounds == sorted(bounds)

    def test_monotone_in_own_jitter(self):
        system = _rm_pair()
        bounds = []
        for jitter in (0.0, 2.0, 5.0, 11.0):
            record = analyze_subtask(
                system, SubtaskId(1, 0), {SubtaskId(1, 0): jitter}
            )
            assert record.bound is not None
            bounds.append(record.bound)
        assert bounds == sorted(bounds)
