"""Unit tests for the Modified Phase Modification protocol."""

from __future__ import annotations

import pytest

from repro.api import compare_protocols, run_protocol
from repro.core.protocols.factory import pm_bounds_for
from repro.core.protocols.modified_pm import ModifiedPhaseModification
from repro.errors import ConfigurationError
from repro.model.task import SubtaskId
from repro.sim.simulator import simulate
from repro.sim.variation import OverrunInjection, UniformReleaseJitter


class TestIdenticalToPm:
    """Under ideal conditions MPM and PM produce identical schedules
    (Section 3.1)."""

    def test_example2_schedules_match(self, example2):
        results = compare_protocols(example2, ("PM", "MPM"), horizon=60.0)
        assert (
            results["PM"].trace.releases == results["MPM"].trace.releases
        )
        assert (
            results["PM"].trace.completions
            == results["MPM"].trace.completions
        )

    def test_generated_system_schedules_match(self, small_system):
        results = compare_protocols(
            small_system, ("PM", "MPM"), horizon_periods=6.0
        )
        pm = results["PM"].trace.completions
        mpm = results["MPM"].trace.completions
        assert pm.keys() == mpm.keys()
        # PM sums bounds into absolute phases once; MPM re-adds the bound
        # at every release, so the two accumulate float error differently.
        for key, value in pm.items():
            assert mpm[key] == pytest.approx(value, abs=1e-6)


class TestTimerRelay:
    def test_successor_release_is_predecessor_release_plus_bound(
        self, example2
    ):
        bounds = pm_bounds_for(example2)
        result = run_protocol(example2, "MPM", horizon=60.0)
        for m in range(5):
            r1 = result.trace.release_time(SubtaskId(1, 0), m)
            r2 = result.trace.release_time(SubtaskId(1, 1), m)
            assert r2 == pytest.approx(r1 + bounds[SubtaskId(1, 0)])

    def test_signal_waits_even_for_early_completion(self, monitor):
        """The dashed-arrow delay of Figure 6: completion before the timer
        does not release the successor early."""
        bounds = {sid: 5.0 for sid in monitor.subtask_ids}
        result = run_protocol(monitor, "MPM", bounds=bounds, horizon=39.0)
        # Stage 1 completes at 2, but stage 2 waits for the timer at 5.
        assert result.trace.completion_time(SubtaskId(0, 0), 0) == pytest.approx(2.0)
        assert result.trace.release_time(SubtaskId(0, 1), 0) == pytest.approx(5.0)

    def test_missing_bound_rejected(self, monitor):
        controller = ModifiedPhaseModification({})
        with pytest.raises(ConfigurationError, match="needs a response-time"):
            simulate(monitor, controller, horizon=10.0)


class TestRobustnessToJitter:
    """MPM's selling point: it survives sporadic first releases."""

    def test_no_violations_under_release_jitter(self, example2):
        controller = ModifiedPhaseModification(pm_bounds_for(example2))
        result = simulate(
            example2,
            controller,
            horizon=240.0,
            jitter_model=UniformReleaseJitter(5.0, seed=9),
        )
        assert result.metrics.precedence_violations == 0

    def test_chain_shifts_with_jittered_release(self, two_stage_pipeline):
        bounds = pm_bounds_for(two_stage_pipeline)
        controller = ModifiedPhaseModification(bounds)
        result = simulate(
            two_stage_pipeline,
            controller,
            horizon=100.0,
            jitter_model=UniformReleaseJitter(3.0, seed=4),
        )
        stage1, stage2 = SubtaskId(0, 0), SubtaskId(0, 1)
        for m in range(5):
            r1 = result.trace.release_time(stage1, m)
            r2 = result.trace.release_time(stage2, m)
            assert r2 == pytest.approx(r1 + bounds[stage1])


class TestOverrunDetection:
    def test_overruns_counted_and_cause_violations(self, two_stage_pipeline):
        bounds = pm_bounds_for(two_stage_pipeline)
        controller = ModifiedPhaseModification(bounds)
        result = simulate(
            two_stage_pipeline,
            controller,
            horizon=100.0,
            execution_model=OverrunInjection(
                SubtaskId(0, 0), factor=3.0, every=2
            ),
        )
        assert len(controller.overruns) > 0
        assert result.metrics.precedence_violations > 0

    def test_no_overruns_in_clean_run(self, example2):
        controller = ModifiedPhaseModification(pm_bounds_for(example2))
        simulate(example2, controller, horizon=120.0)
        assert controller.overruns == []
