"""Unit tests for the Release Guard protocol."""

from __future__ import annotations

import pytest

from repro.api import compare_protocols, run_protocol
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task


class TestFigureSeven:
    """The RG schedule of Example 2 (Figure 7), instant by instant."""

    def test_first_instance_released_like_ds(self, example2):
        result = run_protocol(example2, "RG", horizon=30.0)
        assert result.trace.release_time(SubtaskId(1, 1), 0) == pytest.approx(4.0)

    def test_second_instance_held_then_released_at_idle_point(self, example2):
        result = run_protocol(example2, "RG", horizon=30.0)
        # The signal arrives at 8 but g_2,2 = 10; T3 completes at 9 making
        # 9 an idle point, so rule 2 releases the instance at 9, not 10.
        assert result.trace.release_time(SubtaskId(1, 1), 1) == pytest.approx(9.0)

    def test_t3_meets_deadline(self, example2):
        result = run_protocol(example2, "RG", horizon=30.0)
        assert result.trace.eer_time(2, 0) == pytest.approx(5.0)
        assert result.metrics.task(2).deadline_misses == 0

    def test_second_t2_instance_faster_than_pm(self, example2):
        """Paper: 'the EER time of the second instance of T2 is 1 time
        unit shorter' under RG than under PM."""
        results = compare_protocols(example2, ("PM", "RG"), horizon=30.0)
        pm = results["PM"].trace.eer_time(1, 1)
        rg = results["RG"].trace.eer_time(1, 1)
        assert pm - rg == pytest.approx(1.0)


class TestGuardRules:
    def test_inter_release_separation_at_least_period_without_idle(self):
        """With the successor's processor continuously busy, rule 2 never
        fires and consecutive releases are at least one period apart."""
        # Saturate processor B so it has no idle point in the window.
        hog = Task(period=5.0, subtasks=(Subtask(4.99, "B", priority=0),))
        chain = Task(
            period=10.0,
            subtasks=(
                Subtask(1.0, "A", priority=0),
                Subtask(0.005, "B", priority=1),
            ),
        )
        result = run_protocol(System((hog, chain)), "RG", horizon=100.0)
        sid = SubtaskId(1, 1)
        releases = sorted(
            time for (s, _m), time in result.trace.releases.items() if s == sid
        )
        for earlier, later in zip(releases, releases[1:]):
            assert later - earlier >= 10.0 - 1e-9

    def test_signal_to_idle_processor_releases_immediately(
        self, two_stage_pipeline
    ):
        """A signal arriving at an idle processor is an idle point
        (Definition 1): the guard cannot delay the release."""
        result = run_protocol(two_stage_pipeline, "RG", horizon=50.0)
        stage2 = SubtaskId(0, 1)
        for m in range(4):
            completion = result.trace.completion_time(SubtaskId(0, 0), m)
            assert result.trace.release_time(stage2, m) == pytest.approx(
                completion
            )

    def test_guard_holds_release_until_timer_when_busy(self):
        """If the processor stays busy through the guard window, the held
        release fires exactly at the guard."""
        # Stage-1 completions clump: instance 0 delayed by a blocker,
        # instance 1 immediate.  Successor processor kept busy by a hog.
        blocker = Task(
            period=40.0, subtasks=(Subtask(9.0, "A", priority=0),)
        )
        chain = Task(
            period=10.0,
            subtasks=(
                Subtask(1.0, "A", priority=1),
                Subtask(1.0, "B", priority=1),
            ),
        )
        hog = Task(period=4.0, subtasks=(Subtask(3.9, "B", priority=0),))
        result = run_protocol(
            System((blocker, chain, hog)), "RG", horizon=39.0
        )
        stage2 = SubtaskId(1, 1)
        r0 = result.trace.release_time(stage2, 0)
        r1 = result.trace.release_time(stage2, 1)
        # DS would release instance 1 at its stage-1 completion (11); the
        # guard holds it until r0 + period.
        assert r1 >= r0 + 10.0 - 1e-9

    def test_no_precedence_violations(self, small_system):
        result = run_protocol(small_system, "RG", horizon_periods=8.0)
        assert result.metrics.precedence_violations == 0


class TestPerformanceOrdering:
    """Average EER of chain tasks: DS <= RG <= PM (Section 5.3).

    The ordering is a property of how each protocol delays a task's *own*
    stage releases; single-stage tasks (whose EER depends only on the
    interference other protocols reshape) do not obey it -- see
    test_protocol_ds.TestAverageBehaviour.
    """

    def test_ordering_for_chain_task_on_example2(self, example2):
        results = compare_protocols(example2, ("DS", "PM", "RG"), horizon=120.0)
        ds = results["DS"].metrics.task(1).average_eer
        rg = results["RG"].metrics.task(1).average_eer
        pm = results["PM"].metrics.task(1).average_eer
        assert ds <= rg + 1e-9
        assert rg <= pm + 1e-9

    def test_ordering_on_generated_system(self, small_system):
        results = compare_protocols(
            small_system, ("DS", "PM", "RG"), horizon_periods=10.0
        )
        for task_index in range(len(small_system.tasks)):
            ds = results["DS"].metrics.task(task_index).average_eer
            rg = results["RG"].metrics.task(task_index).average_eer
            pm = results["PM"].metrics.task(task_index).average_eer
            assert ds <= rg + 1e-6
            assert rg <= pm + 1e-6

    def test_rg_max_eer_within_sa_pm_bound(self, small_system):
        """Theorem 1: SA/PM bounds hold under RG."""
        from repro.core.analysis.sa_pm import analyze_sa_pm

        bounds = analyze_sa_pm(small_system)
        result = run_protocol(small_system, "RG", horizon_periods=12.0)
        for task_index in range(len(small_system.tasks)):
            observed = result.metrics.task(task_index).max_eer
            assert observed <= bounds.task_bounds[task_index] + 1e-6


class TestIntrospection:
    def test_held_count_reflects_pending_releases(self, example2):
        from repro.core.protocols.release_guard import ReleaseGuard
        from repro.sim.engine import Kernel

        controller = ReleaseGuard()
        kernel = Kernel(example2, controller, 8.5)
        kernel.run()
        # At time 8.5 the second T2,2 signal (sent at 8) is still held
        # (guard is 10, idle point at 9 not yet reached).
        assert controller.held_count(SubtaskId(1, 1)) == 1
