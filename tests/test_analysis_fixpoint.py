"""Unit tests for the fixed-point iteration utilities."""

from __future__ import annotations

import pytest

from repro.core.analysis.fixpoint import ceil_tolerant, solve_fixed_point
from repro.errors import AnalysisError


class TestCeilTolerant:
    def test_plain_ceiling(self):
        assert ceil_tolerant(2.3) == 3
        assert ceil_tolerant(5.0) == 5

    def test_swallows_upward_float_noise(self):
        assert ceil_tolerant(5.0 + 1e-12) == 5

    def test_keeps_real_excess(self):
        assert ceil_tolerant(5.0 + 1e-6) == 6

    def test_negative_values(self):
        assert ceil_tolerant(-1.5) == -1


class TestSolveFixedPoint:
    def test_classic_response_time_equation(self):
        # t = 2 + 2*ceil(t/4): the lfp is 4 (t=4: 2 + 2*1 = 4).
        demand = lambda t: 2 + 2 * ceil_tolerant(t / 4)
        assert solve_fixed_point(demand, 2.0, 100.0) == pytest.approx(4.0)

    def test_response_time_equation_with_two_preemptions(self):
        # t = 3 + 2*ceil(t/4): t=4 gives 3+4=7? no: 3+2*1=5; t=5 -> 3+4=7;
        # t=7 -> 3+2*2=7: lfp is 7, reached after two preemptions.
        demand = lambda t: 3 + 2 * ceil_tolerant(t / 4)
        assert solve_fixed_point(demand, 3.0, 100.0) == pytest.approx(7.0)

    def test_immediate_fixed_point(self):
        demand = lambda t: 5.0
        assert solve_fixed_point(demand, 5.0, 100.0) == pytest.approx(5.0)

    def test_divergent_demand_hits_cap(self):
        demand = lambda t: t + 1.0
        assert solve_fixed_point(demand, 1.0, 50.0) is None

    def test_start_must_be_positive(self):
        with pytest.raises(AnalysisError):
            solve_fixed_point(lambda t: t, 0.0, 10.0)

    def test_non_monotone_demand_detected(self):
        with pytest.raises(AnalysisError, match="not monotone"):
            solve_fixed_point(lambda t: 10.0 - t, 8.0, 100.0)

    def test_iteration_budget_enforced(self):
        # Creeps upward by tiny steps forever below the cap.
        demand = lambda t: t + 1e-6 + 2e-9 * t
        with pytest.raises(AnalysisError, match="did not settle"):
            solve_fixed_point(demand, 1.0, 1e12, max_iterations=50)

    def test_converges_from_below_to_least_fixed_point(self):
        # t = ceil(t/3) has fixed points at every multiple-ish value;
        # starting at 1 must find the least one (t=0.5? no: W(1)=1).
        demand = lambda t: float(ceil_tolerant(t / 3))
        assert solve_fixed_point(demand, 1.0, 100.0) == pytest.approx(1.0)

    def test_cap_is_exclusive_above(self):
        demand = lambda t: 10.0
        # lfp is 10, cap 10 allows it.
        assert solve_fixed_point(demand, 1.0, 10.0) == pytest.approx(10.0)
