"""The consistent-hash ring: determinism, balance, minimal movement."""

from __future__ import annotations

import hashlib

import pytest

from repro.errors import ConfigurationError
from repro.service.hashing import request_key
from repro.service.requests import AdmissionRequest
from repro.service.sharding import ShardRing
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system


def _keys(count: int) -> list[str]:
    # Shape-realistic keys: hex digests, like request_key produces.
    return [
        hashlib.sha256(f"key-{i}".encode()).hexdigest()
        for i in range(count)
    ]


class TestRouting:
    def test_routing_is_deterministic_across_instances(self):
        keys = _keys(200)
        a, b = ShardRing(4), ShardRing(4)
        assert [a.shard_for(k) for k in keys] == [
            b.shard_for(k) for k in keys
        ]

    def test_single_shard_owns_everything(self):
        ring = ShardRing(1)
        assert all(ring.shard_for(k) == 0 for k in _keys(50))

    def test_every_shard_gets_a_share(self):
        ring = ShardRing(4)
        distribution = ring.distribution(_keys(2000))
        assert set(distribution) == {0, 1, 2, 3}
        assert all(count > 0 for count in distribution.values())
        # Virtual nodes keep the split reasonably even.
        assert max(distribution.values()) < 3 * min(
            distribution.values()
        )

    def test_real_request_keys_route(self):
        config = WorkloadConfig(
            subtasks_per_task=2, utilization=0.5, tasks=3, processors=2
        )
        ring = ShardRing(3)
        for seed in range(8):
            key = request_key(
                AdmissionRequest(system=generate_system(config, seed))
            )
            assert 0 <= ring.shard_for(key) < 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardRing(0)
        with pytest.raises(ConfigurationError):
            ShardRing(2, replicas=0)


class TestResizeStability:
    def test_growing_by_one_moves_about_its_share(self):
        keys = _keys(4000)
        moved = ShardRing.moved_fraction(
            ShardRing(4), ShardRing(5), keys
        )
        # Ideal is 1/5; consistent hashing should stay in the same
        # ballpark, nowhere near the ~4/5 of hash(key) % N.
        assert moved < 0.40

    def test_modulo_routing_would_fail_this(self):
        keys = _keys(4000)
        moved = sum(
            1
            for k in keys
            if int(k[:16], 16) % 4 != int(k[:16], 16) % 5
        ) / len(keys)
        assert moved > 0.70  # the baseline the ring exists to beat

    def test_same_size_rings_move_nothing(self):
        keys = _keys(500)
        assert (
            ShardRing.moved_fraction(ShardRing(3), ShardRing(3), keys)
            == 0.0
        )

    def test_moved_fraction_empty_keys(self):
        assert (
            ShardRing.moved_fraction(ShardRing(2), ShardRing(3), [])
            == 0.0
        )
