"""Shim for environments without the `wheel` package.

`pip install -e .` uses PEP 660 editable builds, which require `wheel`;
offline machines without it can fall back to the classic

    python setup.py develop

which this shim enables.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
