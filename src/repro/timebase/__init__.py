"""Pluggable arithmetic timebases for the simulator and the analyses.

Every timestamp, duration and bound in this repository flows through a
:class:`Timebase`.  Two interchangeable backends exist:

``float`` (default)
    Times are IEEE doubles, exactly as the code base always computed
    them.  Because float addition is not associative (PM schedules a
    timer at ``(phase + R) + m*p`` while the completion it synchronizes
    to lands at ``(phase + m*p) + R``), equality of instants can only be
    asserted up to tolerance.  This backend owns the *single* pair of
    tolerances the whole repository is allowed to use -- the absolute
    noise floor :data:`ABS_EPS` and the relative guard :data:`REL_EPS` --
    and exposes them through its comparison methods.  Keeping the float
    backend default preserves byte-identical benchmarks and cached
    admission decisions.

``exact``
    Times are scaled integers -- an ``int`` whenever the value is
    integral -- with a :class:`fractions.Fraction` fallback for
    non-representable inputs (every finite IEEE double *is* exactly
    representable: ``float.as_integer_ratio`` gives the scaled-integer
    numerator over a power-of-two denominator).  Rational arithmetic is
    associative and exact, so every tolerance collapses to ``==`` /
    ``<=``: the paper's identities (PM and MPM produce identical
    schedules; RG releases are separated by at least ``p_i``, Theorem 1)
    become exactly checkable, and an entire class of float-epsilon bugs
    cannot exist.

The historical epsilons (an absolute ``1e-12`` past-check, relative
``1e-9`` guards, and assorted per-module copies) live *only* here; a CI
lint rejects new bare ``1e-9``/``1e-12`` literals outside this package.

Infinities and NaNs pass through both backends untouched: they are
sentinels of the analyses ("bound diverged"), not times.
"""

from __future__ import annotations

import abc
import math
from fractions import Fraction
from typing import Union

__all__ = [
    "ABS_EPS",
    "REL_EPS",
    "TimeValue",
    "Timebase",
    "FloatTimebase",
    "ExactTimebase",
    "FLOAT",
    "EXACT",
    "TIMEBASES",
    "get_timebase",
    "fmt",
    "canonical_number",
]

#: Absolute noise floor: differences below this are float bookkeeping
#: residue (historically the ``1e-12`` guards of the kernel/scheduler).
ABS_EPS = 1e-12

#: Relative comparison guard: instants within ``REL_EPS * max(1, |t|)``
#: of each other count as equal under the float backend (historically
#: the scattered ``1e-9`` tolerances).
REL_EPS = 1e-9

#: Anything a timebase accepts or produces as a time/duration value.
TimeValue = Union[int, float, Fraction]


def fmt(value: TimeValue) -> str:
    """Render any time value compactly for messages (``%g``-style)."""
    try:
        return format(float(value), "g")
    except OverflowError:  # a Fraction beyond float range
        return str(value)


def canonical_number(value: TimeValue) -> Union[int, float, str]:
    """A JSON-stable token for a timebase value.

    Ints and floats serialize exactly through ``json`` already; exact
    rationals canonicalize as ``"numerator/denominator"`` (Fractions are
    always stored gcd-reduced, so equal values produce equal tokens in
    every process, on every run).
    """
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return f"{value.numerator}/{value.denominator}"
    return value


class Timebase(abc.ABC):
    """Arithmetic and comparison backend for simulated time.

    Values produced by :meth:`convert` support ``+ - *`` and ``max``
    natively (they are ints, floats or Fractions); what differs between
    backends is *conversion* and *comparison semantics*.  ``lt``/``leq``
    and friends answer "is ``a`` before ``b``" in the backend's own
    sense: beyond tolerance for floats, exactly for rationals.
    """

    #: Registry name ("float" / "exact").
    name: str = "base"
    #: True when comparisons are exact (no tolerance windows).
    exact: bool = False

    @abc.abstractmethod
    def convert(self, value: TimeValue) -> TimeValue:
        """Normalize an input number into this backend's representation."""

    @property
    def zero(self) -> TimeValue:
        """The backend's representation of time 0."""
        return self.convert(0)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def lt(self, a: TimeValue, b: TimeValue) -> bool:
        """True when ``a`` is strictly before ``b``."""

    @abc.abstractmethod
    def leq(self, a: TimeValue, b: TimeValue) -> bool:
        """True when ``a`` is at or before ``b``."""

    def gt(self, a: TimeValue, b: TimeValue) -> bool:
        """True when ``a`` is strictly after ``b``."""
        return self.lt(b, a)

    def geq(self, a: TimeValue, b: TimeValue) -> bool:
        """True when ``a`` is at or after ``b``."""
        return self.leq(b, a)

    def eq(self, a: TimeValue, b: TimeValue) -> bool:
        """True when ``a`` and ``b`` denote the same instant."""
        return self.leq(a, b) and self.leq(b, a)

    @abc.abstractmethod
    def is_positive(self, value: TimeValue) -> bool:
        """True when ``value`` is a genuine positive duration (above the
        backend's noise floor)."""

    @abc.abstractmethod
    def is_negative(self, value: TimeValue) -> bool:
        """True when ``value`` is genuinely negative (beyond noise)."""

    # ------------------------------------------------------------------
    # Derived arithmetic
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def ceil(self, value: TimeValue) -> int:
        """Integer ceiling in the backend's comparison semantics (the
        float backend forgives upward noise; the exact backend is
        ``math.ceil``)."""

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    @staticmethod
    def to_float(value: TimeValue) -> float:
        """Project a time value onto a float (for reporting/plots)."""
        return float(value)

    def canonical(self, value: TimeValue) -> Union[int, float, str]:
        """JSON-stable token of a value (see :func:`canonical_number`)."""
        return canonical_number(self.convert(value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timebase {self.name}>"


class FloatTimebase(Timebase):
    """IEEE-double times with the repository's historical tolerances."""

    name = "float"
    exact = False

    def convert(self, value: TimeValue) -> float:
        return float(value)

    def lt(self, a: TimeValue, b: TimeValue) -> bool:
        return a < b - REL_EPS * max(1.0, abs(b))

    def leq(self, a: TimeValue, b: TimeValue) -> bool:
        return a <= b + REL_EPS * max(1.0, abs(b))

    def is_positive(self, value: TimeValue) -> bool:
        return value > ABS_EPS

    def is_negative(self, value: TimeValue) -> bool:
        return value < -REL_EPS

    def ceil(self, value: TimeValue) -> int:
        return math.ceil(value - REL_EPS)


class ExactTimebase(Timebase):
    """Scaled-integer times with a rational fallback; no tolerances."""

    name = "exact"
    exact = True

    def convert(self, value: TimeValue) -> TimeValue:
        if isinstance(value, int):
            return value
        if isinstance(value, Fraction):
            return int(value) if value.denominator == 1 else value
        value = float(value)
        if math.isinf(value) or math.isnan(value):
            return value  # analysis sentinel, not a time
        numerator, denominator = value.as_integer_ratio()
        if denominator == 1:
            return numerator
        return Fraction(numerator, denominator)

    def lt(self, a: TimeValue, b: TimeValue) -> bool:
        return a < b

    def leq(self, a: TimeValue, b: TimeValue) -> bool:
        return a <= b

    def eq(self, a: TimeValue, b: TimeValue) -> bool:
        return a == b

    def is_positive(self, value: TimeValue) -> bool:
        return value > 0

    def is_negative(self, value: TimeValue) -> bool:
        return value < 0

    def ceil(self, value: TimeValue) -> int:
        return math.ceil(value)


#: Shared singletons -- the backends are stateless.
FLOAT = FloatTimebase()
EXACT = ExactTimebase()

TIMEBASES: dict[str, Timebase] = {FLOAT.name: FLOAT, EXACT.name: EXACT}


def get_timebase(spec: "str | Timebase | None") -> Timebase:
    """Resolve a backend by name (or pass an instance through).

    ``None`` resolves to the default float backend.
    """
    if spec is None:
        return FLOAT
    if isinstance(spec, Timebase):
        return spec
    try:
        return TIMEBASES[spec]
    except KeyError:
        raise ValueError(
            f"unknown timebase {spec!r}; known: {', '.join(TIMEBASES)}"
        ) from None
