"""Counterexample shrinking: delta-debug a failing system to a minimum.

Given a system on which some oracle fails and a predicate "does it still
fail", the shrinker greedily applies three reduction passes, re-checking
the predicate after every candidate edit:

1. **drop tasks** -- remove whole tasks, one at a time, restarting the
   scan after every success (classic ddmin with granularity 1: small
   systems make quadratic rescans affordable);
2. **drop subtasks** -- shorten chains by removing individual stages
   (precedence re-links across the gap; priorities are left as they
   are, which the model permits);
3. **round parameters** -- replace phases with 0, and periods, phases
   and execution times with coarser values, so the surviving
   counterexample has human-readable numbers.

Every simulation downstream of generation is deterministic, so the
predicate is stable and the shrink result reproducible.  The predicate
is evaluated at most ``max_attempts`` times; the budget bounds shrink
cost on pathological cases (each evaluation re-simulates the system
under every protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.model.system import System
from repro.model.task import Subtask, Task

__all__ = ["ShrinkResult", "shrink_system"]

Predicate = Callable[[System], bool]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    system: System
    attempts: int
    original_task_count: int
    original_subtask_count: int

    @property
    def task_count(self) -> int:
        return len(self.system.tasks)

    @property
    def subtask_count(self) -> int:
        return self.system.subtask_count


class _Budget:
    """Counts predicate evaluations, absorbing model/analysis errors."""

    def __init__(self, predicate: Predicate, max_attempts: int) -> None:
        self.predicate = predicate
        self.max_attempts = max_attempts
        self.attempts = 0

    def still_fails(self, candidate: System) -> bool:
        if self.attempts >= self.max_attempts:
            return False
        self.attempts += 1
        try:
            return self.predicate(candidate)
        except ReproError:
            # An edit produced a system the pipeline rejects (e.g. all
            # bounds diverged); it is not a smaller counterexample.
            return False


def _without_task(system: System, index: int) -> System:
    tasks = tuple(
        task for i, task in enumerate(system.tasks) if i != index
    )
    return System(tasks, name=system.name)


def _without_subtask(system: System, task_index: int, j: int) -> System:
    task = system.tasks[task_index]
    chain = tuple(
        stage for k, stage in enumerate(task.subtasks) if k != j
    )
    tasks = list(system.tasks)
    tasks[task_index] = task.with_subtasks(chain)
    return System(tuple(tasks), name=system.name)


def _drop_tasks(system: System, budget: _Budget) -> System:
    changed = True
    while changed and len(system.tasks) > 1:
        changed = False
        for index in range(len(system.tasks)):
            candidate = _without_task(system, index)
            if budget.still_fails(candidate):
                system = candidate
                changed = True
                break
    return system


def _drop_subtasks(system: System, budget: _Budget) -> System:
    changed = True
    while changed:
        changed = False
        for task_index, task in enumerate(system.tasks):
            if task.chain_length <= 1:
                continue
            for j in range(task.chain_length - 1, -1, -1):
                candidate = _without_subtask(system, task_index, j)
                if budget.still_fails(candidate):
                    system = candidate
                    changed = True
                    break
            if changed:
                break
    return system


def _rounded_candidates(value: float, *, minimum: float) -> list[float]:
    """Coarser stand-ins for one parameter, most aggressive first."""
    candidates = []
    for rounded in (float(round(value)), float(round(value, 1))):
        if rounded > minimum and rounded != value:
            candidates.append(rounded)
    return candidates


def _replace_task(system: System, index: int, task: Task) -> System:
    tasks = list(system.tasks)
    tasks[index] = task
    return System(tuple(tasks), name=system.name)


def _round_parameters(system: System, budget: _Budget) -> System:
    for index in range(len(system.tasks)):
        task = system.tasks[index]
        # Phase: zero is the simplest possible value; then coarser floats.
        if task.phase != 0.0:
            for phase in [0.0] + _rounded_candidates(task.phase, minimum=-1.0):
                if phase < 0:
                    continue
                candidate = _replace_task(
                    system, index, task.with_phase(phase)
                )
                if budget.still_fails(candidate):
                    system = candidate
                    task = system.tasks[index]
                    break
        for period in _rounded_candidates(task.period, minimum=0.0):
            try:
                candidate = _replace_task(
                    system,
                    index,
                    Task(
                        period=period,
                        subtasks=task.subtasks,
                        phase=task.phase,
                        deadline=task.deadline,
                        name=task.name,
                    ),
                )
            except ReproError:
                continue
            if budget.still_fails(candidate):
                system = candidate
                task = system.tasks[index]
                break
        for j, stage in enumerate(task.subtasks):
            for execution in _rounded_candidates(
                stage.execution_time, minimum=0.0
            ):
                chain = list(task.subtasks)
                chain[j] = Subtask(
                    execution_time=execution,
                    processor=stage.processor,
                    priority=stage.priority,
                    name=stage.name,
                )
                candidate = _replace_task(
                    system, index, task.with_subtasks(tuple(chain))
                )
                if budget.still_fails(candidate):
                    system = candidate
                    task = system.tasks[index]
                    break
    return system


def shrink_system(
    system: System,
    predicate: Predicate,
    *,
    max_attempts: int = 300,
) -> ShrinkResult:
    """Reduce ``system`` while ``predicate`` (still-failing) stays true.

    ``predicate`` must be true for ``system`` itself; if it is not (a
    flaky failure, which the deterministic pipeline should never
    produce), the system is returned unshrunk.
    """
    original_tasks = len(system.tasks)
    original_subtasks = system.subtask_count
    budget = _Budget(predicate, max_attempts)
    if not budget.still_fails(system):
        return ShrinkResult(system, budget.attempts, original_tasks,
                            original_subtasks)
    system = _drop_tasks(system, budget)
    system = _drop_subtasks(system, budget)
    system = _round_parameters(system, budget)
    return ShrinkResult(
        system, budget.attempts, original_tasks, original_subtasks
    )
