"""Budgeted differential-fuzzing campaigns over a process pool.

A campaign is a deterministic stream of cases: case ``k`` draws
configuration ``PROFILES[name][k % len]`` and seed ``base_seed + k``,
so any failure is reproducible from ``(profile, base_seed, k)`` alone
and a re-run with a different worker count examines the identical
systems.  The budget is either a case count (``runs``), a wall-clock
allowance (``seconds``), or both (whichever ends first).

Workers follow the repo's process-pool idiom
(:mod:`repro.experiments.parallel`): jobs are pure functions of
picklable inputs, and each worker returns a compact
:class:`CaseOutcome`.  Failures are shrunk *in the parent* -- the
failing system is regenerated from its (config, seed) coordinates, so
workers never ship systems back.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from repro.clocks.config import ClockConfig
from repro.errors import ConfigurationError
from repro.faults import FaultConfig
from repro.fuzz.corpus import Counterexample, append_counterexample
from repro.fuzz.differential import DIFFERENTIAL_ORACLE, compare_backends
from repro.fuzz.oracles import check_case, oracle_names
from repro.fuzz.runner import build_case
from repro.fuzz.shrink import shrink_system
from repro.locks import LockingConfig, inject_critical_sections
from repro.timebase import get_timebase
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

__all__ = [
    "PROFILES",
    "CLOCK_ROTATIONS",
    "FAULT_ROTATIONS",
    "LOCK_ROTATIONS",
    "LockScenario",
    "CaseOutcome",
    "CampaignReport",
    "fuzz_one",
    "run_campaign",
]

#: Narrowed period spread for most fuzz configurations: the paper's
#: 100x ratio makes horizons (multiples of the largest period) cover
#: hundreds of instances of the fastest task, which buys event volume,
#: not oracle coverage.  One ``default`` entry keeps the paper spread.
_FAST_PERIODS = {"period_min": 100.0, "period_max": 1000.0,
                 "period_scale": 300.0}

#: Configuration rotations, by profile name.  ``default`` mixes tiny
#: systems (so the exhaustive oracle gets exercised) with mid-sized and
#: loaded ones (so PM/MPM skip paths and SA/DS divergence occur too).
PROFILES: Mapping[str, tuple[WorkloadConfig, ...]] = {
    "default": (
        WorkloadConfig(
            subtasks_per_task=2, utilization=0.5, tasks=2, processors=2,
            **_FAST_PERIODS,
        ),
        WorkloadConfig(
            subtasks_per_task=2,
            utilization=0.6,
            tasks=3,
            processors=2,
            random_phases=True,
            **_FAST_PERIODS,
        ),
        WorkloadConfig(
            subtasks_per_task=3, utilization=0.6, tasks=4, processors=3
        ),
        WorkloadConfig(
            subtasks_per_task=3,
            utilization=0.7,
            tasks=4,
            processors=2,
            random_phases=True,
            **_FAST_PERIODS,
        ),
        WorkloadConfig(
            subtasks_per_task=4, utilization=0.75, tasks=5, processors=3,
            **_FAST_PERIODS,
        ),
        WorkloadConfig(
            subtasks_per_task=2,
            utilization=0.85,
            tasks=5,
            processors=2,
            random_phases=True,
            **_FAST_PERIODS,
        ),
    ),
    "tiny": (
        WorkloadConfig(
            subtasks_per_task=2, utilization=0.5, tasks=2, processors=2,
            **_FAST_PERIODS,
        ),
        WorkloadConfig(
            subtasks_per_task=3,
            utilization=0.6,
            tasks=2,
            processors=2,
            random_phases=True,
            **_FAST_PERIODS,
        ),
    ),
    "paper": (
        WorkloadConfig(subtasks_per_task=3, utilization=0.6),
        WorkloadConfig(
            subtasks_per_task=5, utilization=0.7, random_phases=True
        ),
        WorkloadConfig(subtasks_per_task=8, utilization=0.9),
    ),
}

#: Clock-configuration rotations, keyed by the ``--clocks`` CLI name.
#: ``None`` entries build cases with no clock plumbing at all; the
#: explicit perfect entry exercises the ``clock-perfect-identity``
#: oracle.  Magnitudes are scaled to the ``_FAST_PERIODS`` band
#: (periods 100..1000): offsets of tens of units visibly shear PM, a
#: drift of 5e-5 accrues ~0.05 per slow-task period, and the resync
#: clock keeps its steps below its precision 0.5 every interval 100.
CLOCK_ROTATIONS: Mapping[str, tuple[ClockConfig | None, ...]] = {
    "none": (None,),
    "skew": (
        None,
        ClockConfig(),
        ClockConfig(kind="offset", offset=40.0),
        ClockConfig(kind="drift", rate=5e-5),
        ClockConfig(kind="resync", precision=0.5, interval=100.0, rate=1e-5),
    ),
}

#: Fault-environment rotations, keyed by the ``--faults`` CLI name.
#: ``None`` entries build cases with no fault plumbing; the explicit
#: zero-rate entry exercises the ``fault-free-identity`` oracle, and the
#: recovered signal-fault entries exercise ``rg-recovery-soundness``.
#: Each case substitutes its own seed into the rotated config, so fault
#: decisions vary across cases yet stay reproducible from the case
#: coordinates.  Delays are scaled to the ``_FAST_PERIODS`` band.
FAULT_ROTATIONS: Mapping[str, tuple[FaultConfig | None, ...]] = {
    "none": (None,),
    "chaos": (
        None,
        FaultConfig(),
        FaultConfig(
            drop_rate=0.15,
            duplicate_rate=0.1,
            watchdog=True,
            suppress_duplicates=True,
        ),
        FaultConfig(
            drop_rate=0.2,
            reorder_rate=0.1,
            reorder_delay=5.0,
            watchdog=True,
            suppress_duplicates=True,
        ),
        FaultConfig(timer_loss_rate=0.1),
    ),
}


@dataclass(frozen=True)
class LockScenario:
    """One locking rotation entry: injected sections plus a protocol.

    ``ratio`` is the critical-section share of each participating
    subtask's execution time (0 injects nothing, which pairs an
    explicit :class:`LockingConfig` with a resource-free system -- the
    ``lock-free-identity`` oracle's subject); the remaining fields are
    passed to :func:`repro.locks.inject_critical_sections` with the
    case's own seed, so the drawn sections vary across cases yet stay
    reproducible from the case coordinates.
    """

    ratio: float
    protocol: str = "DPCP"
    resources: int = 2
    participation: float = 0.5

    @property
    def config(self) -> LockingConfig:
        return LockingConfig(self.protocol)

    @property
    def label(self) -> str:
        return f"locks[{self.config.protocol} ratio={self.ratio}]"

    def apply(self, system, seed: int):
        """Inject this scenario's sections into ``system``."""
        return inject_critical_sections(
            system,
            ratio=self.ratio,
            resources=self.resources,
            participation=self.participation,
            seed=seed,
        )


#: Locking rotations, keyed by the ``--locks`` CLI name.  ``None``
#: entries build cases with no lock plumbing at all; the zero-ratio
#: entry exercises the ``lock-free-identity`` oracle; the remaining
#: entries alternate DPCP's funnel with DPCP-p's spread at light and
#: heavy contention.
LOCK_ROTATIONS: Mapping[str, tuple[LockScenario | None, ...]] = {
    "none": (None,),
    "locks": (
        None,
        LockScenario(ratio=0.0, protocol="DPCP-p"),
        LockScenario(ratio=0.1, protocol="DPCP"),
        LockScenario(ratio=0.25, protocol="DPCP-p"),
        LockScenario(
            ratio=0.25, protocol="DPCP", resources=1, participation=0.8
        ),
    ),
}


@dataclass(frozen=True)
class CaseOutcome:
    """Picklable result of one fuzz case."""

    index: int
    seed: int
    config: WorkloadConfig
    failures: dict[str, list[str]]
    checked: tuple[str, ...]
    skipped: dict[str, str]
    duration: float
    clocks: ClockConfig | None = None
    latency: float = 0.0
    faults: FaultConfig | None = None
    locks: LockScenario | None = None

    @property
    def failed(self) -> bool:
        return bool(self.failures)

    @property
    def environment_label(self) -> str:
        """Clock/latency/fault/lock coordinates of this case, "" when
        ideal."""
        parts = []
        if self.clocks is not None:
            parts.append(self.clocks.label)
        if self.latency:
            parts.append(f"latency={self.latency}")
        if self.faults is not None:
            parts.append(self.faults.label)
        if self.locks is not None:
            parts.append(self.locks.label)
        return " ".join(parts)


def fuzz_one(
    config: WorkloadConfig,
    seed: int,
    *,
    index: int = 0,
    horizon_periods: float = 5.0,
    oracles: tuple[str, ...] | None = None,
    clocks: ClockConfig | None = None,
    latency: float = 0.0,
    faults: FaultConfig | None = None,
    locks: LockScenario | None = None,
    timebase: str = "float",
    engine: str = "reference",
) -> CaseOutcome:
    """Generate, simulate and judge one case; the campaign's unit of work.

    ``clocks``/``latency``/``faults``/``locks`` set the case's
    environment (skewed local clocks, cross-processor signal delay,
    injected faults, injected critical sections under a locking
    protocol); the oracle registry gates itself on them.  A fault
    config gets the case's seed substituted in, and a lock scenario
    draws its sections with the case's seed, so both vary across cases
    while staying reproducible from ``(config, seed)``.  With
    ``timebase="exact"`` the case is built and judged under exact
    arithmetic (tolerance-free oracles), *and* a second case is built
    under the float backend -- same environment -- so the two can be
    cross-checked; any observable disagreement is reported under the
    ``float-vs-exact`` pseudo-oracle.  ``engine`` selects the
    simulation backend every protocol runs on (cases outside the batch
    domain fall back to the reference kernel explicitly).
    """
    started = time.perf_counter()
    if faults is not None:
        faults = dataclasses.replace(faults, seed=seed)
    system = generate_system(config, seed)
    locking = None
    if locks is not None:
        system = locks.apply(system, seed)
        locking = locks.config
    case = build_case(
        system,
        seed=seed,
        config=config,
        horizon_periods=horizon_periods,
        clocks=clocks,
        latency=latency,
        faults=faults,
        locking=locking,
        timebase=timebase,
        engine=engine,
    )
    failures, checked = check_case(case, oracles)
    if case.timebase.exact:
        float_case = build_case(
            system,
            seed=seed,
            config=config,
            horizon_periods=horizon_periods,
            clocks=clocks,
            latency=latency,
            faults=faults,
            locking=locking,
            timebase="float",
            engine=engine,
        )
        checked = checked + (DIFFERENTIAL_ORACLE,)
        disagreements = compare_backends(float_case, case)
        if disagreements:
            failures[DIFFERENTIAL_ORACLE] = disagreements
    return CaseOutcome(
        index=index,
        seed=seed,
        config=config,
        failures=failures,
        checked=checked,
        skipped=dict(case.skipped),
        duration=time.perf_counter() - started,
        clocks=clocks,
        latency=latency,
        faults=faults,
        locks=locks,
    )


def _job(args: tuple) -> CaseOutcome:
    """Top-level pool target (must be importable by workers)."""
    (
        index,
        config,
        seed,
        horizon_periods,
        oracles,
        timebase,
        clocks,
        latency,
        faults,
        locks,
        engine,
    ) = args
    return fuzz_one(
        config,
        seed,
        index=index,
        horizon_periods=horizon_periods,
        oracles=oracles,
        clocks=clocks,
        latency=latency,
        faults=faults,
        locks=locks,
        timebase=timebase,
        engine=engine,
    )


@dataclass
class CampaignReport:
    """Aggregate of one campaign: counters, failures, counterexamples."""

    runs: int = 0
    elapsed: float = 0.0
    checks: dict[str, int] = field(default_factory=dict)
    skips: dict[str, int] = field(default_factory=dict)
    failed_outcomes: list[CaseOutcome] = field(default_factory=list)
    counterexamples: list[Counterexample] = field(default_factory=list)
    corpus_file: str | None = None

    @property
    def failure_count(self) -> int:
        return len(self.failed_outcomes)

    @property
    def ok(self) -> bool:
        return self.failure_count == 0

    def describe(self) -> str:
        rate = self.runs / self.elapsed if self.elapsed > 0 else 0.0
        lines = [
            f"fuzz campaign: {self.runs} run(s), "
            f"{self.failure_count} failure(s), "
            f"{self.elapsed:.1f} s ({rate:.1f} runs/s)"
        ]
        if self.checks:
            counts = " ".join(
                f"{name}={self.checks[name]}"
                for name in (*oracle_names(), DIFFERENTIAL_ORACLE)
                if name in self.checks
            )
            lines.append(f"  oracle checks: {counts}")
        for protocol, count in sorted(self.skips.items()):
            lines.append(
                f"  {protocol} skipped on {count} run(s) "
                f"(infeasible analysis bounds)"
            )
        for outcome in self.failed_outcomes:
            first_oracle = next(iter(outcome.failures))
            environment = outcome.environment_label
            lines.append(
                f"  FAIL seed={outcome.seed} {outcome.config.label}"
                f"{' ' + environment if environment else ''}: "
                f"[{first_oracle}] "
                f"{outcome.failures[first_oracle][0]}"
            )
        for record in self.counterexamples:
            lines.append(f"  shrunk: {record.describe()}")
        if self.corpus_file is not None:
            lines.append(f"  corpus: {self.corpus_file}")
        return "\n".join(lines)


def _shrink_outcome(
    outcome: CaseOutcome,
    *,
    horizon_periods: float,
    max_attempts: int,
    timebase: str = "float",
) -> Counterexample:
    """Regenerate the failing system and delta-debug it per oracle.

    The shrink re-judges every candidate in the *same environment*
    (clocks, latency) the failure was observed in -- a skew-induced
    counterexample usually vanishes under perfect clocks.
    """
    oracle = next(iter(outcome.failures))
    system = generate_system(outcome.config, outcome.seed)
    faults = outcome.faults
    if faults is not None:
        faults = dataclasses.replace(faults, seed=outcome.seed)
    locking = None
    if outcome.locks is not None:
        # Shrink starts from the injected system; candidate edits carry
        # (or drop) the drawn sections with their subtasks.
        system = outcome.locks.apply(system, outcome.seed)
        locking = outcome.locks.config

    def judge(candidate) -> list[str]:
        case = build_case(
            candidate,
            horizon_periods=horizon_periods,
            clocks=outcome.clocks,
            latency=outcome.latency,
            faults=faults,
            locking=locking,
            timebase=timebase,
        )
        if oracle == DIFFERENTIAL_ORACLE:
            float_case = build_case(
                candidate,
                horizon_periods=horizon_periods,
                clocks=outcome.clocks,
                latency=outcome.latency,
                faults=faults,
                locking=locking,
                timebase="float",
            )
            return compare_backends(float_case, case)
        failures, _checked = check_case(case, (oracle,))
        return failures.get(oracle, [])

    def still_fails(candidate) -> bool:
        return bool(judge(candidate))

    shrunk = shrink_system(system, still_fails, max_attempts=max_attempts)
    final_violations = judge(shrunk.system)
    violations = tuple(final_violations or outcome.failures[oracle])
    return Counterexample(
        oracle=oracle,
        system=shrunk.system,
        violations=violations,
        seed=outcome.seed,
        config=outcome.config,
        original_task_count=shrunk.original_task_count,
        shrink_attempts=shrunk.attempts,
        note=outcome.environment_label,
    )


def _case_stream(
    configs: Sequence[WorkloadConfig],
    runs: int | None,
    base_seed: int,
    horizon_periods: float,
    oracles: tuple[str, ...] | None,
    timebase: str,
    clock_configs: Sequence[ClockConfig | None],
    latencies: Sequence[float],
    fault_configs: Sequence[FaultConfig | None],
    lock_scenarios: Sequence[LockScenario | None],
    engine: str,
) -> Iterator[tuple]:
    # Clock, latency, fault and lock rotations advance at different
    # strides so a long campaign covers their full cross product, while
    # short ones still see every clock configuration early.
    index = 0
    fault_stride = len(clock_configs) * len(latencies)
    lock_stride = fault_stride * len(fault_configs)
    while runs is None or index < runs:
        yield (
            index,
            configs[index % len(configs)],
            base_seed + index,
            horizon_periods,
            oracles,
            timebase,
            clock_configs[index % len(clock_configs)],
            latencies[(index // len(clock_configs)) % len(latencies)],
            fault_configs[(index // fault_stride) % len(fault_configs)],
            lock_scenarios[(index // lock_stride) % len(lock_scenarios)],
            engine,
        )
        index += 1


def run_campaign(
    *,
    runs: int | None = None,
    seconds: float | None = None,
    profile: str = "default",
    configs: Sequence[WorkloadConfig] | None = None,
    base_seed: int = 0,
    workers: int | None = None,
    horizon_periods: float = 5.0,
    oracles: tuple[str, ...] | None = None,
    shrink: bool = True,
    shrink_attempts: int = 300,
    corpus_path: str | None = None,
    fail_fast: bool = False,
    progress: Callable[[str], None] | None = None,
    clocks: str | Sequence[ClockConfig | None] = "none",
    latencies: Sequence[float] = (0.0,),
    faults: str | Sequence[FaultConfig | None] = "none",
    locks: str | Sequence[LockScenario | None] = "none",
    timebase: str = "float",
    engine: str = "reference",
) -> CampaignReport:
    """Run a fuzzing campaign and return its report.

    Exactly one of ``runs``/``seconds`` must be positive (both may be:
    the campaign stops at whichever budget runs out first).  ``configs``
    overrides the named ``profile``.  ``clocks`` is a
    :data:`CLOCK_ROTATIONS` name or an explicit rotation of clock
    configurations (``None`` entries mean no clock plumbing);
    ``latencies`` rotates cross-processor signal delays; ``faults`` is a
    :data:`FAULT_ROTATIONS` name or an explicit rotation of fault
    configurations (each case substitutes its own seed); ``locks`` is a
    :data:`LOCK_ROTATIONS` name or an explicit rotation of lock
    scenarios (each case draws its critical sections with its own
    seed).  Oracles gate themselves on the environment each case ran
    in.  With
    ``corpus_path`` set, every shrunk counterexample is appended there
    as JSONL.  With ``timebase="exact"`` every case runs under exact
    arithmetic with tolerance-free oracles and is differentially
    cross-checked against the float backend (the ``float-vs-exact``
    pseudo-oracle).  ``engine`` selects the simulation backend for
    every case (the batch-conformance CI campaign pins
    ``engine="reference"`` and judges the ``batch-vs-reference-identity``
    oracle, which re-simulates on the batch engine itself).
    """
    get_timebase(timebase)  # validate early, before spawning workers
    if engine not in ("reference", "batch"):
        raise ConfigurationError(
            f"unknown engine {engine!r}; known: reference, batch"
        )
    if isinstance(clocks, str):
        try:
            clock_configs: Sequence[ClockConfig | None] = (
                CLOCK_ROTATIONS[clocks]
            )
        except KeyError:
            raise ConfigurationError(
                f"unknown clock rotation {clocks!r}; "
                f"known: {', '.join(CLOCK_ROTATIONS)}"
            ) from None
    else:
        clock_configs = tuple(clocks)
    if not clock_configs:
        raise ConfigurationError(
            "campaign needs at least one clock configuration"
        )
    latencies = tuple(latencies)
    if not latencies:
        raise ConfigurationError("campaign needs at least one latency")
    if isinstance(faults, str):
        try:
            fault_configs: Sequence[FaultConfig | None] = (
                FAULT_ROTATIONS[faults]
            )
        except KeyError:
            raise ConfigurationError(
                f"unknown fault rotation {faults!r}; "
                f"known: {', '.join(FAULT_ROTATIONS)}"
            ) from None
    else:
        fault_configs = tuple(faults)
    if not fault_configs:
        raise ConfigurationError(
            "campaign needs at least one fault configuration"
        )
    if isinstance(locks, str):
        try:
            lock_scenarios: Sequence[LockScenario | None] = (
                LOCK_ROTATIONS[locks]
            )
        except KeyError:
            raise ConfigurationError(
                f"unknown lock rotation {locks!r}; "
                f"known: {', '.join(LOCK_ROTATIONS)}"
            ) from None
    else:
        lock_scenarios = tuple(locks)
    if not lock_scenarios:
        raise ConfigurationError(
            "campaign needs at least one lock scenario"
        )
    for value in latencies:
        if value < 0:
            raise ConfigurationError(
                f"latencies must be >= 0, got {value!r}"
            )
    if runs is None and seconds is None:
        raise ConfigurationError("campaign needs --runs and/or --seconds")
    if runs is not None and runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    if seconds is not None and seconds <= 0:
        raise ConfigurationError(f"seconds must be > 0, got {seconds}")
    if configs is None:
        try:
            configs = PROFILES[profile]
        except KeyError:
            raise ConfigurationError(
                f"unknown fuzz profile {profile!r}; "
                f"known: {', '.join(PROFILES)}"
            ) from None
    if not configs:
        raise ConfigurationError("campaign needs at least one configuration")
    worker_count = workers if workers is not None else (os.cpu_count() or 1)
    if worker_count < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")

    report = CampaignReport()
    started = time.perf_counter()
    deadline = None if seconds is None else started + seconds
    jobs = _case_stream(
        configs,
        runs,
        base_seed,
        horizon_periods,
        oracles,
        timebase,
        clock_configs,
        latencies,
        fault_configs,
        lock_scenarios,
        engine,
    )

    def out_of_time() -> bool:
        return deadline is not None and time.perf_counter() >= deadline

    def absorb(outcome: CaseOutcome) -> None:
        report.runs += 1
        for name in outcome.checked:
            report.checks[name] = report.checks.get(name, 0) + 1
        for protocol in outcome.skipped:
            report.skips[protocol] = report.skips.get(protocol, 0) + 1
        if outcome.failed:
            report.failed_outcomes.append(outcome)
        if progress is not None:
            verdict = "FAIL" if outcome.failed else "ok"
            environment = outcome.environment_label
            progress(
                f"run {report.runs}: seed={outcome.seed} "
                f"{outcome.config.label}"
                f"{' ' + environment if environment else ''} {verdict}"
            )

    stop = False
    if worker_count == 1:
        for job in jobs:
            if stop or out_of_time():
                break
            absorb(_job(job))
            if fail_fast and report.failed_outcomes:
                stop = True
    else:
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            in_flight = set()
            for job in jobs:
                if stop or out_of_time():
                    break
                in_flight.add(pool.submit(_job, job))
                while len(in_flight) >= 2 * worker_count:
                    done, in_flight = wait(
                        in_flight, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        absorb(future.result())
                    if fail_fast and report.failed_outcomes:
                        stop = True
                        break
            for future in in_flight:
                absorb(future.result())

    # Failures are ordered by case index so the report (and corpus) is
    # independent of pool completion order.
    report.failed_outcomes.sort(key=lambda outcome: outcome.index)

    if shrink:
        for outcome in report.failed_outcomes:
            record = _shrink_outcome(
                outcome,
                horizon_periods=horizon_periods,
                max_attempts=shrink_attempts,
                timebase=timebase,
            )
            report.counterexamples.append(record)
            if corpus_path is not None:
                report.corpus_file = str(
                    append_counterexample(record, corpus_path)
                )
            if progress is not None:
                progress(f"shrunk: {record.describe()}")

    report.elapsed = time.perf_counter() - started
    return report
