"""The oracle registry: paper-derived cross-checks over one fuzz case.

Each :class:`Oracle` states one relational claim of Sun & Liu (ICDCS
1996) -- simulator vs. analysis, protocol vs. protocol, or trace vs.
model -- and checks it on a :class:`~repro.fuzz.runner.FuzzCase`.  An
oracle returns human-readable violation strings; an empty list means the
claim held.  Oracles that do not apply to a case (protocol skipped,
analysis diverged, system too large for exhaustive search) report
*nothing* rather than failing: only a claim that was checkable and false
is a counterexample.

The catalog (paper references in each oracle's ``reference``):

``trace-invariants``
    Every recorded trace satisfies fixed-priority preemptive scheduling
    semantics (re-derived independently by
    :func:`repro.sim.trace_validation.validate_trace`).
``precedence``
    No protocol releases a successor before its predecessor instance
    completed (Section 2's precedence constraint).
``sa-pm-soundness``
    Simulated response times under PM, MPM and RG never exceed the
    SA/PM bounds (Section 4.2; validity for RG is Theorem 1).
``sa-ds-soundness``
    Simulated (intermediate) end-to-end response times under DS never
    exceed the SA/DS bounds (Section 4.3); checked only when Algorithm
    SA/DS accepted the system (a failed run leaves under-converged,
    unsound bounds).
``analysis-dominance``
    SA/DS task bounds dominate SA/PM task bounds (Section 4.3: DS
    admits more interference per busy period).
``pm-mpm-identity``
    PM and MPM produce identical schedules under ideal conditions
    (Section 3.1/3.3).
``rg-guard``
    RG never releases an instance before its release guard (Section
    3.2, release rule).
``rg-separation``
    Consecutive RG releases of one subtask are at least a period apart
    unless an idle point of its processor intervened (Theorem 1's
    premise: rule 1 spaces releases, only rule 2 may shorten).
``exhaustive-vs-bounds``
    On small systems, the exhaustively searched worst-case EER (a
    certified lower bound on the true worst case, Section 2) never
    exceeds the matching analysis bound.
``clock-perfect-identity``
    A case built with an explicitly *perfect* clock configuration is
    byte-identical to the same case built with no clock plumbing at all
    (the clock subsystem must be a strict no-op when every clock is
    ideal).
``sa-pm-skew-soundness``
    Under imperfect-but-bounded clocks, simulated MPM and RG response
    times never exceed the skew-inflated SA/PM bounds
    (:func:`repro.core.analysis.skew.analyze_sa_pm_skewed`).  PM is
    deliberately absent: its phase table breaks under unsynchronized
    clocks (Section 3.1), which is the separation the clock study
    demonstrates.
``fault-free-identity``
    A case built with an explicitly *zero-rate* fault configuration is
    byte-identical to the same case built with no fault plumbing at all
    (the fault plane must be a strict no-op when nothing can fire).
``rg-recovery-soundness``
    Under signal faults with full recovery armed (ack/retransmit
    watchdog plus duplicate suppression), the Release Guard run keeps
    its precedence guarantee: zero chain-precedence violations and
    zero unrecovered duplicate releases (the guard makes delivery
    idempotent; the watchdog makes it reliable).
``lock-free-identity``
    A case built with an explicit locking configuration on a system
    *without* critical sections is byte-identical to the same case
    built with no lock plumbing at all (the locking subsystem must be
    a strict no-op on a resource-free system).
``blocking-term-soundness``
    Under PM and MPM (whose timer releases are strictly periodic, the
    arrival pattern the blocking fixpoint assumes), each instance's
    measured lock-waiting time never exceeds the analyzed blocking
    term ``B_i,j``, and simulated responses never exceed the
    blocking-aware SA/PM bounds
    (:func:`repro.locks.analysis.analyze_sa_pm_blocking`).
``deadlock-freedom``
    Replaying every protocol's lock log as a mutex state machine shows
    mutual exclusion (one holder per resource at a time), grant
    discipline (acquire only by a pending requester of a free
    resource, release only by the holder), and progress (a free
    resource never sits idle while requests wait -- waiters are either
    granted at the release instant or cut off by the horizon).
``region-soundness``
    The parametric feasibility region (:mod:`repro.regions`) is an
    *inner* approximation: every point the region tier would serve --
    the verified corner, interior points, the request's own execution
    vector -- is confirmed schedulable by the direct analysis the
    admission service runs; exact-timebase corners are exact rationals
    and the JSON round-trip is lossless.
``batch-vs-reference-identity``
    On the batch engine's declared domain (float timebase, perfect
    clocks, no fault plane, no latency, no critical sections), every
    protocol re-simulated on the flat-array kernel produces a trace
    byte-identical to the reference kernel's -- compared at the packed
    column level, where ``0.0`` vs ``-0.0`` and dtype drift count as
    differences -- and never falls back (an in-domain fallback is
    itself a violation of the engine contract).
``durable-decision-identity``
    The admission service's durability layer
    (:mod:`repro.service.durability`) is a faithful codec: a freshly
    computed decision survives the checksummed persistence frame and
    the decision JSON round-trip byte-identically, and a single flipped
    byte inside the framed record is always detected (no silent
    corruption can reach a salvaged cache).

Oracle *applicability* encodes the paper's stated assumptions: the
identity and plain-soundness oracles demand ideal conditions (perfect
clocks, zero latency, no live faults, no shared resources -- the
blocking-aware oracles take over on locked cases); SA/DS soundness
tolerates imperfect clocks (DS uses no timers) but not latency or
faults; the
precedence oracle drops PM and MPM under imperfect clocks, where
timer-based releases may legitimately outrun their predecessors --
that is a finding for the skew study, not a simulator bug -- and under
live faults applies only when the fault environment is limited to
signal faults with full recovery (anything harsher legitimately loses
releases, which is the chaos study's finding).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ConfigurationError
from repro.fuzz.runner import CheckedReleaseGuard, FuzzCase
from repro.model.task import SubtaskId
from repro.sim.trace_validation import validate_trace
from repro.timebase import REL_EPS, fmt

__all__ = ["Oracle", "ORACLES", "check_case", "oracle_names"]

_TOL = 1e-6


def _tol(case: "FuzzCase") -> float:
    """Per-case comparison tolerance: the float guard, or exactly 0.

    Under the exact timebase there is no representation noise to
    forgive -- every relational claim of the paper is checked with
    plain ``==``/``<=``.
    """
    return 0 if case.timebase.exact else _TOL

#: Size gate for the exhaustive-search oracle: ``steps ** tasks``
#: simulations per protocol are affordable only on tiny systems.
EXHAUSTIVE_MAX_TASKS = 2
EXHAUSTIVE_STEPS = 3


@dataclass(frozen=True)
class Oracle:
    """One relational claim, checkable against a fuzz case."""

    name: str
    reference: str
    description: str
    check: Callable[[FuzzCase], list[str]]
    applies: Callable[[FuzzCase], bool]


# ---------------------------------------------------------------------------
# Trace-level oracles
# ---------------------------------------------------------------------------


def _check_trace_invariants(case: FuzzCase) -> list[str]:
    issues = []
    for protocol, result in case.results.items():
        # PM/MPM on skewed clocks legitimately release ahead of their
        # predecessors (the clock study's finding); the scheduling
        # invariants still apply, the precedence section does not --
        # mirroring the precedence oracle's own gating.
        precedence = case.clocks_perfect or protocol not in ("PM", "MPM")
        for issue in validate_trace(
            result.trace, check_precedence=precedence
        ):
            issues.append(f"{protocol}: {issue}")
    return issues


def _check_precedence(case: FuzzCase) -> list[str]:
    issues = []
    for protocol, result in case.results.items():
        if protocol in ("PM", "MPM") and not case.clocks_perfect:
            # Timer-based releases legitimately outrun predecessors when
            # the timers run on skewed clocks -- that is the clock
            # study's finding, not a conformance violation.
            continue
        for violation in result.trace.violations:
            issues.append(
                f"{protocol}: {violation.sid}#{violation.instance} released "
                f"at {fmt(violation.release_time)} before predecessor "
                f"{violation.predecessor} completed"
            )
    return issues


# ---------------------------------------------------------------------------
# Analysis-soundness oracles
# ---------------------------------------------------------------------------


def _soundness_issues(
    case: FuzzCase,
    protocol: str,
    task_bounds: tuple[float, ...],
    subtask_bounds: Mapping[SubtaskId, float] | None,
    algorithm: str,
) -> list[str]:
    """Observed task EERs (and optionally per-subtask figures) vs bounds."""
    issues = []
    tol = _tol(case)
    result = case.results[protocol]
    for i in range(len(case.system.tasks)):
        bound = task_bounds[i]
        observed = result.metrics.task(i).max_eer
        if math.isinf(bound) or math.isnan(observed):
            continue
        if observed > bound + tol * max(1.0, bound):
            issues.append(
                f"{protocol}: task T{i + 1} simulated EER {fmt(observed)} "
                f"exceeds {algorithm} bound {fmt(bound)}"
            )
    if subtask_bounds is None:
        return issues
    trace = result.trace
    for sid in case.system.subtask_ids:
        bound = subtask_bounds[sid]
        if math.isinf(bound):
            continue
        if protocol == "DS":
            observed_values = [
                trace.intermediate_eer_time(sid, m)
                for (s, m) in trace.completions
                if s == sid
            ]
            kind = "IEER"
        else:
            observed_values = trace.subtask_response_times(sid)
            kind = "response time"
        for value in observed_values:
            if value > bound + tol * max(1.0, bound):
                issues.append(
                    f"{protocol}: {sid} simulated {kind} {fmt(value)} exceeds "
                    f"{algorithm} bound {fmt(bound)}"
                )
                break
    return issues


def _check_sa_pm_soundness(case: FuzzCase) -> list[str]:
    issues = []
    for protocol in ("PM", "MPM", "RG"):
        if protocol in case.results:
            issues.extend(
                _soundness_issues(
                    case,
                    protocol,
                    case.sa_pm.task_bounds,
                    case.sa_pm.subtask_bounds,
                    "SA/PM",
                )
            )
    return issues


def _check_sa_ds_soundness(case: FuzzCase) -> list[str]:
    return _soundness_issues(
        case, "DS", case.sa_ds.task_bounds, case.sa_ds.subtask_bounds, "SA/DS"
    )


def _check_analysis_dominance(case: FuzzCase) -> list[str]:
    issues = []
    tol = _tol(case)
    for i in range(len(case.system.tasks)):
        pm = case.sa_pm.task_bounds[i]
        ds = case.sa_ds.task_bounds[i]
        if math.isinf(ds):
            continue  # DS failed where PM may not have -- that is dominance
        if ds < pm - tol * max(1.0, pm):
            issues.append(
                f"task T{i + 1}: SA/DS bound {fmt(ds)} below SA/PM bound "
                f"{fmt(pm)} (SA/DS must dominate)"
            )
    return issues


# ---------------------------------------------------------------------------
# Protocol-relational oracles
# ---------------------------------------------------------------------------


def _check_pm_mpm_identity(case: FuzzCase) -> list[str]:
    pm = case.results["PM"].trace
    mpm = case.results["MPM"].trace
    issues = []
    tol = _tol(case)
    horizon = case.results["PM"].horizon
    boundary = tol * max(1.0, horizon)
    for label, ours, theirs in (
        ("released by PM but not MPM", pm.releases, mpm.releases),
        ("released by MPM but not PM", mpm.releases, pm.releases),
    ):
        for key, time in ours.items():
            if key not in theirs and horizon - time > boundary:
                issues.append(
                    f"{key[0]}#{key[1]} {label} (at {fmt(time)})"
                )
    for key, pm_time in pm.releases.items():
        mpm_time = mpm.releases.get(key)
        if mpm_time is None:
            continue
        if abs(pm_time - mpm_time) > tol * max(1.0, pm_time):
            issues.append(
                f"{key[0]}#{key[1]} released at {fmt(pm_time)} under PM but "
                f"{fmt(mpm_time)} under MPM"
            )
    for key, pm_time in pm.completions.items():
        mpm_time = mpm.completions.get(key)
        if mpm_time is None:
            continue
        if abs(pm_time - mpm_time) > tol * max(1.0, pm_time):
            issues.append(
                f"{key[0]}#{key[1]} completed at {fmt(pm_time)} under PM but "
                f"{fmt(mpm_time)} under MPM"
            )
    return issues


def _check_rg_guard(case: FuzzCase) -> list[str]:
    controller = case.controllers.get("RG")
    if not isinstance(controller, CheckedReleaseGuard):
        return []
    return [
        f"RG: {sid}#{instance} released at {fmt(now)} before its guard "
        f"{fmt(guard)}"
        for sid, instance, now, guard in controller.early_releases
    ]


def _check_rg_separation(case: FuzzCase) -> list[str]:
    trace = case.results["RG"].trace
    system = case.system
    exact = case.timebase.exact
    issues = []
    by_subtask: dict[SubtaskId, list[tuple[int, float]]] = {}
    for (sid, m), time in trace.releases.items():
        by_subtask.setdefault(sid, []).append((m, time))
    for sid, entries in by_subtask.items():
        if sid.subtask_index == 0:
            continue  # first subtasks are environment-released
        period = system.period_of(sid)
        idle_points = trace.idle_points.get(
            system.subtask(sid).processor, []
        )
        entries.sort()
        sep_slack = 0 if exact else REL_EPS * max(1.0, period)
        idle_slack = 0 if exact else REL_EPS
        for (_m0, t0), (m1, t1) in zip(entries, entries[1:]):
            if t1 - t0 < period - sep_slack and not any(
                t0 < point <= t1 + idle_slack for point in idle_points
            ):
                issues.append(
                    f"RG: {sid}#{m1} released {fmt(t1 - t0)} < period "
                    f"{fmt(period)} after the previous release with no idle "
                    f"point in between"
                )
    return issues


# ---------------------------------------------------------------------------
# Clock-subsystem oracles
# ---------------------------------------------------------------------------


def _check_clock_perfect_identity(case: FuzzCase) -> list[str]:
    """A perfect clock configuration must be a strict no-op.

    Rebuilds the case with *no* clock plumbing (``clocks=None``) and
    demands byte-identical release and completion maps -- no tolerance,
    under either timebase.  Any drift here means the perfect-clock fast
    paths leak arithmetic into the schedule.
    """
    from repro.fuzz.runner import build_case

    reference = build_case(
        case.system,
        horizon_periods=case.horizon_periods,
        latency=case.latency,
        faults=case.faults,
        locking=case.locking,
        timebase=case.timebase,
    )
    issues = []
    if set(reference.results) != set(case.results):
        issues.append(
            f"protocols ran differ: {sorted(case.results)} with perfect "
            f"clocks vs {sorted(reference.results)} without clock plumbing"
        )
    for protocol in sorted(set(reference.results) & set(case.results)):
        ours = case.results[protocol].trace
        theirs = reference.results[protocol].trace
        for kind in ("releases", "completions"):
            if getattr(ours, kind) != getattr(theirs, kind):
                issues.append(
                    f"{protocol}: {kind} under an explicit perfect clock "
                    f"configuration differ from the clockless build"
                )
    return issues


def _check_sa_pm_skew_soundness(case: FuzzCase) -> list[str]:
    assert case.sa_pm_skew is not None
    issues = []
    # PM is excluded by design: under unsynchronized clocks its phase
    # table is broken (Section 3.1) and no duration-based inflation
    # covers it.
    for protocol in ("MPM", "RG"):
        if protocol in case.results:
            issues.extend(
                _soundness_issues(
                    case,
                    protocol,
                    case.sa_pm_skew.task_bounds,
                    case.sa_pm_skew.subtask_bounds,
                    "SA/PM-skew",
                )
            )
    return issues


# ---------------------------------------------------------------------------
# Fault-subsystem oracles
# ---------------------------------------------------------------------------


def _check_fault_free_identity(case: FuzzCase) -> list[str]:
    """A zero-rate fault configuration must be a strict no-op.

    Rebuilds the case with *no* fault plumbing (``faults=None``) and
    demands byte-identical release and completion maps -- no tolerance,
    under either timebase.  Any drift here means arming the fault plane
    leaks decisions (or arithmetic) into a run where nothing can fire.
    """
    from repro.fuzz.runner import build_case

    reference = build_case(
        case.system,
        horizon_periods=case.horizon_periods,
        clocks=case.clocks,
        latency=case.latency,
        locking=case.locking,
        timebase=case.timebase,
    )
    issues = []
    if set(reference.results) != set(case.results):
        issues.append(
            f"protocols ran differ: {sorted(case.results)} with a zero-rate "
            f"fault plane vs {sorted(reference.results)} without one"
        )
    for protocol in sorted(set(reference.results) & set(case.results)):
        ours = case.results[protocol].trace
        theirs = reference.results[protocol].trace
        for kind in ("releases", "completions"):
            if getattr(ours, kind) != getattr(theirs, kind):
                issues.append(
                    f"{protocol}: {kind} under a zero-rate fault "
                    f"configuration differ from the fault-free build"
                )
    return issues


def _rg_recovery_applies(case: FuzzCase) -> bool:
    faults = case.faults
    return (
        faults is not None
        and not faults.is_null
        and faults.signal_faults_only
        and faults.full_signal_recovery
        and "RG" in case.results
        and case.clocks_perfect
    )


def _check_rg_recovery_soundness(case: FuzzCase) -> list[str]:
    """RG under recovered signal faults keeps its precedence guarantee.

    With the watchdog retransmitting dropped signals and the guard
    suppressing duplicate releases, every delivered release is governed
    by the guard that rule 1/2 raised -- so the run must show zero
    chain-precedence violations and zero unrecovered duplicate
    releases.  Exhausted retransmits are *losses* (the chain stops),
    never precedence breaks.
    """
    result = case.results["RG"]
    issues = [
        f"RG: {violation.sid}#{violation.instance} released at "
        f"{fmt(violation.release_time)} before predecessor "
        f"{violation.predecessor} completed despite full signal recovery"
        for violation in result.trace.violations
    ]
    log = result.trace.faults
    if log is not None:
        for event in log.events_of("duplicate-release"):
            if not event.recovered:
                issues.append(
                    f"RG: duplicate release of {event.sid}#{event.instance} "
                    f"at {fmt(event.time)} not suppressed despite "
                    f"suppress_duplicates"
                )
    return issues


# ---------------------------------------------------------------------------
# Lock-subsystem oracles
# ---------------------------------------------------------------------------


def _check_lock_free_identity(case: FuzzCase) -> list[str]:
    """A locking configuration on a resource-free system is a no-op.

    Rebuilds the case with *no* lock plumbing (``locking=None`` on a
    system without critical sections) and demands byte-identical
    release and completion maps -- no tolerance, under either timebase.
    Any drift here means selecting a locking protocol leaks decisions
    (or arithmetic) into a run with nothing to lock.
    """
    from repro.fuzz.runner import build_case

    reference = build_case(
        case.system,
        horizon_periods=case.horizon_periods,
        clocks=case.clocks,
        latency=case.latency,
        faults=case.faults,
        timebase=case.timebase,
    )
    issues = []
    if set(reference.results) != set(case.results):
        issues.append(
            f"protocols ran differ: {sorted(case.results)} with a locking "
            f"configuration vs {sorted(reference.results)} without lock "
            f"plumbing"
        )
    for protocol in sorted(set(reference.results) & set(case.results)):
        ours = case.results[protocol].trace
        theirs = reference.results[protocol].trace
        if ours.locks is not None:
            issues.append(
                f"{protocol}: a lock log was recorded on a resource-free "
                f"system"
            )
        for kind in ("releases", "completions"):
            if getattr(ours, kind) != getattr(theirs, kind):
                issues.append(
                    f"{protocol}: {kind} under an explicit locking "
                    f"configuration differ from the lock-free build"
                )
    return issues


def _blocking_term_applies(case: FuzzCase) -> bool:
    # PM/MPM timer releases are strictly periodic -- the arrival
    # pattern the blocking fixpoint's (floor(W/p) + 1) count assumes.
    # DS/RG releases jitter with completions, so their requests can
    # bunch beyond that count; they are covered by deadlock-freedom
    # and the lock-aware trace validator instead.
    return (
        not case.locks_free
        and case.clocks_perfect
        and case.latency == 0
        and case.faults_null
        and any(p in case.results for p in ("PM", "MPM"))
    )


def _check_blocking_term_soundness(case: FuzzCase) -> list[str]:
    """Measured lock waits and responses vs the blocking-aware bounds.

    For PM and MPM: every instance's total acquire-minus-request
    waiting time must stay within its analyzed blocking term
    ``B_i,j``, and simulated response times within the blocking-aware
    SA/PM bounds the controllers were built from.
    """
    from repro.locks.analysis import resolved_blocking_terms

    assert case.locking is not None and case.sa_pm_blocking is not None
    terms = resolved_blocking_terms(
        case.system, case.locking, timebase=case.timebase
    )
    tol = _tol(case)
    issues = []
    for protocol in ("PM", "MPM"):
        result = case.results.get(protocol)
        if result is None or result.trace.locks is None:
            continue
        for (sid, instance), wait in result.trace.locks.waits().items():
            bound = terms.get(sid, 0.0)
            if math.isinf(bound):
                continue
            if wait > bound + tol * max(1.0, bound):
                issues.append(
                    f"{protocol}: {sid}#{instance} waited {fmt(wait)} for "
                    f"its lock(s), above the blocking term {fmt(bound)}"
                )
        issues.extend(
            _soundness_issues(
                case,
                protocol,
                case.sa_pm_blocking.task_bounds,
                case.sa_pm_blocking.subtask_bounds,
                case.sa_pm_blocking.algorithm,
            )
        )
    return issues


#: Same-timestamp replay order: requests register first, then the
#: release frees the resource, then the handoff acquire takes it.
_LOCK_KIND_ORDER = {"request": 0, "release": 1, "acquire": 2}


def _replay_mutex(log) -> list[str]:
    """Replay one lock log as a per-resource mutex state machine."""
    issues: list[str] = []
    by_resource: dict[str, list[tuple[float, int, int, object]]] = {}
    for position, event in enumerate(log):
        by_resource.setdefault(event.resource, []).append(
            (event.time, _LOCK_KIND_ORDER[event.kind], position, event)
        )
    for resource, entries in sorted(by_resource.items()):
        entries.sort(key=lambda entry: entry[:3])
        holder: tuple | None = None
        waiting: list[tuple] = []
        previous_time: float | None = None
        for time_, _rank, _position, event in entries:
            if (
                previous_time is not None
                and time_ > previous_time
                and holder is None
                and waiting
            ):
                sid, instance = waiting[0]
                issues.append(
                    f"{resource}: free at {fmt(previous_time)} while "
                    f"{sid}#{instance} waited (granted only later, if ever)"
                )
                break
            previous_time = time_
            key = (event.sid, event.instance)
            if event.kind == "request":
                waiting.append(key)
            elif event.kind == "acquire":
                if holder is not None:
                    issues.append(
                        f"{resource}: {event.sid}#{event.instance} acquired "
                        f"at {fmt(time_)} while "
                        f"{holder[0]}#{holder[1]} still held it"
                    )
                    break
                if key not in waiting:
                    issues.append(
                        f"{resource}: {event.sid}#{event.instance} acquired "
                        f"at {fmt(time_)} without a pending request"
                    )
                    break
                waiting.remove(key)
                holder = key
            else:  # release
                if holder != key:
                    issues.append(
                        f"{resource}: {event.sid}#{event.instance} released "
                        f"at {fmt(time_)} without holding it"
                    )
                    break
                holder = None
        else:
            if holder is None and waiting:
                sid, instance = waiting[0]
                issues.append(
                    f"{resource}: run ended with the resource free while "
                    f"{sid}#{instance} still waited (grant lost at the "
                    f"last release)"
                )
    return issues


def _check_deadlock_freedom(case: FuzzCase) -> list[str]:
    issues = []
    for protocol, result in case.results.items():
        log = result.trace.locks
        if log is None:
            continue
        issues.extend(
            f"{protocol}: {issue}" for issue in _replay_mutex(log)
        )
    return issues


# ---------------------------------------------------------------------------
# Batch-engine conformance
# ---------------------------------------------------------------------------


def _batch_identity_applies(case: FuzzCase) -> bool:
    # The batch engine's declared domain, exactly as
    # repro.sim.batch.backend.batch_fallback_reason states it.  Note
    # ``faults is None`` is stricter than ``faults_null``: even a
    # zero-rate fault plane forces the reference kernel (the plane
    # hooks the event loop).  The case itself must have run on the
    # reference kernel -- comparing batch against batch proves nothing.
    return (
        bool(case.results)
        and not case.timebase.exact
        and case.clocks_perfect
        and case.faults is None
        and case.latency == 0
        and case.locks_free
        and all(r.engine == "reference" for r in case.results.values())
    )


def _check_batch_reference_identity(case: FuzzCase) -> list[str]:
    """Re-simulate every protocol on the batch engine; demand identity.

    Fresh controllers are built exactly as :func:`build_case` built the
    originals (PM/MPM timers from the same SA/PM bounds), so the two
    runs differ in *nothing but the engine*.  Traces are compared in
    packed form -- :meth:`PackedTrace.identical` is byte-for-byte per
    column -- which is the same contract the golden-trace corpus and
    the conformance test layer enforce.
    """
    from repro.core.protocols.direct import DirectSynchronization
    from repro.core.protocols.modified_pm import ModifiedPhaseModification
    from repro.core.protocols.phase_modification import PhaseModification
    from repro.core.protocols.release_guard import ReleaseGuard
    from repro.sim.batch import encode
    from repro.sim.simulator import simulate

    clock_map = (
        None
        if case.clocks is None
        else case.clocks.build(case.system.processors)
    )
    issues = []
    for protocol in sorted(case.results):
        reference = case.results[protocol]
        record_idle = False
        if protocol == "DS":
            controller = DirectSynchronization()
        elif protocol == "RG":
            controller = ReleaseGuard()
            record_idle = True
        else:  # PM / MPM -- same bounds the original controllers used
            bounds = dict(case.sa_pm_blocking.subtask_bounds)
            controller = (
                PhaseModification(bounds)
                if protocol == "PM"
                else ModifiedPhaseModification(bounds)
            )
        result = simulate(
            case.system,
            controller,
            horizon_periods=case.horizon_periods,
            record_segments=True,
            record_idle_points=record_idle,
            clocks=clock_map,
            locking=case.locking,
            timebase=case.timebase,
            engine="batch",
        )
        if result.engine != "batch":
            issues.append(
                f"{protocol}: batch engine fell back to the reference "
                f"kernel ({result.engine_fallback}) on a case inside its "
                f"declared domain"
            )
            continue
        if result.events_processed != reference.events_processed:
            issues.append(
                f"{protocol}: batch engine processed "
                f"{result.events_processed} events, reference "
                f"{reference.events_processed}"
            )
        packed = result.packed_trace
        assert packed is not None
        expected = encode(reference.trace)
        if not expected.identical(packed):
            issues.append(
                f"{protocol}: batch trace differs from reference "
                f"({expected.describe_diff(packed)})"
            )
    return issues


# ---------------------------------------------------------------------------
# Region-subsystem conformance
# ---------------------------------------------------------------------------

#: Size gate for the region oracle: the coordinate ascent bisects once
#: per dimension, so cap the dimensionality to keep per-case cost flat.
REGION_MAX_DIMENSIONS = 24


def _region_applies(case: FuzzCase) -> bool:
    return len(case.system.subtask_ids) <= REGION_MAX_DIMENSIONS


def _check_region_soundness(case: FuzzCase) -> list[str]:
    """Feasibility-region claims vs the direct analyses (inner box).

    Builds the case's region under the case's timebase with a coarse
    search (the soundness claim is resolution-independent) and demands
    that every point the region tier would serve analysis-free agrees
    with the direct analysis dispatch the admission service runs: the
    verified corner itself, its half-scale interior point, and -- when
    covered -- the request's own execution vector.  Needs no simulation
    results, so it applies to every case within the size gate.
    """
    from fractions import Fraction

    from repro.regions import (
        compute_region,
        execution_vector,
        probe_point,
        region_from_dict,
        region_to_dict,
        system_at,
    )
    from repro.service.requests import AdmissionRequest

    request = AdmissionRequest(
        system=case.system,
        shared_resources=not case.locks_free,
    )
    region = compute_region(
        request,
        timebase=case.timebase,
        tolerance=1 / 8,
        max_factor=4.0,
        ascent_rounds=1,
    )
    issues = []
    exact = case.timebase.exact
    if exact:
        for analysis, corner in region.corners.items():
            for name, value in zip(
                region.dimensions, corner or ()
            ):
                if isinstance(value, float):
                    issues.append(
                        f"{analysis}: exact-timebase corner component "
                        f"{name}={value!r} is a float, not a rational"
                    )
    if region_from_dict(region_to_dict(region)) != region:
        issues.append("region JSON round-trip is not lossless")
    e0 = tuple(
        case.timebase.convert(e)
        for e in execution_vector(case.system)
    )
    half = Fraction(1, 2) if exact else 0.5
    for analysis, corner in region.corners.items():
        if corner is None:
            continue
        points = [
            ("corner", corner),
            ("half-scale interior point", tuple(u * half for u in corner)),
        ]
        if region.covers(analysis, e0):
            points.append(("request execution vector", e0))
        for label, point in points:
            if not region.covers(analysis, point):
                issues.append(
                    f"{analysis}: {label} not covered by its own box"
                )
            elif not probe_point(
                request,
                analysis,
                system_at(case.system, point),
                case.timebase,
            ):
                issues.append(
                    f"{analysis}: {label} is inside the verified box but "
                    f"direct analysis judges it unschedulable -- the "
                    f"region would serve an unsound ACCEPT"
                )
    return issues


# ---------------------------------------------------------------------------
# Service durability-layer conformance
# ---------------------------------------------------------------------------


def _check_durable_decision_identity(case: FuzzCase) -> list[str]:
    """The durability frame is lossless for healthy records, loud for torn.

    Computes the case's admission decision from scratch, pushes it
    through the exact pipeline the decision cache persists with
    (``decision_to_dict`` -> JSON -> ``frame_line``) and back
    (``unframe_line`` -> JSON -> ``decision_from_dict``), and demands
    identity at every layer.  Then flips one byte inside the framed
    record's body and demands the checksum rejects it: salvage-on-load
    is only sound if corruption can never masquerade as a valid record.
    Needs no simulation results.
    """
    import json

    from repro.service.durability import (
        FrameError,
        frame_line,
        unframe_line,
    )
    from repro.service.engine import compute_decision
    from repro.service.requests import (
        AdmissionRequest,
        decision_from_dict,
        decision_to_dict,
    )

    request = AdmissionRequest(
        system=case.system,
        shared_resources=not case.locks_free,
    )
    decision = compute_decision(request)
    body = json.dumps(decision_to_dict(decision), sort_keys=True)
    framed = frame_line(body)
    issues: list[str] = []
    recovered_body, was_framed = unframe_line(framed)
    if not was_framed:
        issues.append(
            "frame_line output was not recognized as a framed record"
        )
    if recovered_body != body:
        issues.append("the frame round-trip altered the record body")
    try:
        recovered = decision_from_dict(json.loads(recovered_body))
    except Exception as exc:  # noqa: BLE001 -- any decode failure is the finding
        issues.append(f"framed decision failed to decode: {exc}")
        return issues
    if recovered != decision:
        issues.append(
            "the decision JSON round-trip through the durability frame "
            "is not lossless"
        )
    # One flipped byte mid-body must trip the checksum.
    mid = len(framed) - len(body) // 2 - 1
    flipped = "x" if framed[mid] != "x" else "y"
    torn = framed[:mid] + flipped + framed[mid + 1 :]
    try:
        unframe_line(torn)
    except FrameError:
        pass
    else:
        issues.append(
            "a flipped byte inside the framed record went undetected -- "
            "corruption could masquerade as a valid cache entry"
        )
    return issues


# ---------------------------------------------------------------------------
# Exhaustive search vs analysis (small systems only)
# ---------------------------------------------------------------------------


def _exhaustive_applies(case: FuzzCase) -> bool:
    return (
        len(case.system.tasks) <= EXHAUSTIVE_MAX_TASKS
        and "DS" in case.results
        # The exhaustive search re-simulates under ideal conditions, so
        # its witnesses only bound the ideal-condition worst case.
        and case.ideal
    )


def _check_exhaustive(case: FuzzCase) -> list[str]:
    from repro.core.analysis.exhaustive import search_worst_case_eer

    issues = []
    pairs = [("DS", case.sa_ds)]
    if "PM" in case.results:
        pairs.append(("PM", case.sa_pm))
    for protocol, analysis in pairs:
        if analysis.failed:
            continue
        try:
            search = search_worst_case_eer(
                case.system,
                protocol,
                steps=EXHAUSTIVE_STEPS,
                horizon_periods=case.horizon_periods,
            )
        except ConfigurationError:
            continue  # combination cap -- treat as not applicable
        for i in range(len(case.system.tasks)):
            bound = analysis.task_bounds[i]
            observed = search.worst_eer[i]
            if observed > bound + _TOL * max(1.0, bound):
                issues.append(
                    f"{protocol}: exhaustive search found task T{i + 1} "
                    f"EER {fmt(observed)} above the "
                    f"{analysis.algorithm} bound {fmt(bound)} "
                    f"(witness phases {search.witness_phases[i]})"
                )
    return issues


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def _always(_case: FuzzCase) -> bool:
    return True


def _needs(*protocols: str) -> Callable[[FuzzCase], bool]:
    return lambda case: all(p in case.results for p in protocols)


ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        Oracle(
            "trace-invariants",
            "Section 2 (task model), Section 3 (protocols)",
            "every trace satisfies fixed-priority preemptive semantics",
            _check_trace_invariants,
            _always,
        ),
        Oracle(
            "precedence",
            "Section 2 (precedence constraints)",
            "no successor released before its predecessor completed",
            _check_precedence,
            # Live faults legitimately break precedence (that is the
            # chaos study's finding) unless the environment is limited
            # to signal faults with full recovery armed.
            lambda case: case.faults_null
            or (
                case.faults.signal_faults_only
                and case.faults.full_signal_recovery
            ),
        ),
        Oracle(
            "sa-pm-soundness",
            "Section 4.2, Theorem 1",
            "PM/MPM/RG simulated responses never exceed SA/PM bounds",
            _check_sa_pm_soundness,
            # The plain bounds are stated under ideal conditions; with
            # skewed clocks or latency the skew-aware oracle takes over.
            lambda case: case.ideal
            and any(p in case.results for p in ("PM", "MPM", "RG")),
        ),
        Oracle(
            "sa-ds-soundness",
            "Section 4.3",
            "DS simulated (I)EER times never exceed SA/DS bounds",
            _check_sa_ds_soundness,
            # Applies only when Algorithm SA/DS *accepted*: on failure
            # the fixed-point iteration stops early, leaving bounds that
            # are under-converged (monotone from below), hence unsound.
            # Clock skew is irrelevant (DS arms no timers), but signal
            # latency adds unmodeled delay, so zero latency is required.
            # Shared resources add blocking the base bounds do not
            # model (the blocking-aware oracles cover locked cases).
            lambda case: "DS" in case.results
            and not case.sa_ds.failed
            and case.latency == 0
            and case.faults_null
            and case.locks_free,
        ),
        Oracle(
            "analysis-dominance",
            "Section 4.3 (SA/DS pessimism)",
            "SA/DS task bounds dominate SA/PM task bounds",
            _check_analysis_dominance,
            _always,
        ),
        Oracle(
            "pm-mpm-identity",
            "Section 3.1/3.3",
            "PM and MPM schedules are identical under ideal conditions",
            _check_pm_mpm_identity,
            # "Ideal conditions" is part of the claim: skewed clocks (or
            # latency on MPM's relay signals) split the two schedules.
            lambda case: case.ideal
            and all(p in case.results for p in ("PM", "MPM")),
        ),
        Oracle(
            "rg-guard",
            "Section 3.2 (release rule)",
            "RG never releases before the governing guard",
            _check_rg_guard,
            _needs("RG"),
        ),
        Oracle(
            "rg-separation",
            "Theorem 1 (premise)",
            "consecutive RG releases a period apart unless an idle point "
            "intervened",
            _check_rg_separation,
            # Trace times are *true* time; guards space releases on the
            # local clock, so the full-period claim needs perfect clocks
            # (drift compresses true-time separation by O(rho * p)).
            # Crash-restart replays deferred releases back to back at
            # the restart instant, so crashes void the claim too.
            lambda case: "RG" in case.results
            and case.clocks_perfect
            and (case.faults is None or not case.faults.crashes),
        ),
        Oracle(
            "clock-perfect-identity",
            "clock subsystem contract (docs/simulator.md)",
            "an explicitly perfect clock configuration is byte-identical "
            "to no clock plumbing",
            _check_clock_perfect_identity,
            lambda case: case.clocks is not None
            and case.clocks.is_perfect,
        ),
        Oracle(
            "sa-pm-skew-soundness",
            "Section 4.2 + clock-skew envelope (docs/analysis.md)",
            "MPM/RG simulated responses never exceed skew-inflated SA/PM "
            "bounds under bounded-skew clocks",
            _check_sa_pm_skew_soundness,
            lambda case: case.sa_pm_skew is not None
            and case.latency == 0
            and case.faults_null
            and case.locks_free
            and any(p in case.results for p in ("MPM", "RG")),
        ),
        Oracle(
            "fault-free-identity",
            "fault-plane contract (docs/faults.md)",
            "an explicitly zero-rate fault configuration is "
            "byte-identical to no fault plumbing",
            _check_fault_free_identity,
            lambda case: case.faults is not None and case.faults.is_null,
        ),
        Oracle(
            "rg-recovery-soundness",
            "Section 3.2 + recovery layer (docs/faults.md)",
            "RG keeps precedence (no violations, no unsuppressed "
            "duplicates) under signal faults with full recovery",
            _check_rg_recovery_soundness,
            _rg_recovery_applies,
        ),
        Oracle(
            "lock-free-identity",
            "locking-subsystem contract (docs/locking.md)",
            "an explicit locking configuration on a resource-free "
            "system is byte-identical to no lock plumbing",
            _check_lock_free_identity,
            lambda case: case.locking is not None and case.locks_free,
        ),
        Oracle(
            "blocking-term-soundness",
            "DPCP blocking bound (docs/locking.md)",
            "PM/MPM measured lock waits stay within the blocking terms "
            "and responses within the blocking-aware SA/PM bounds",
            _check_blocking_term_soundness,
            _blocking_term_applies,
        ),
        Oracle(
            "deadlock-freedom",
            "locking-subsystem contract (docs/locking.md)",
            "every lock log replays as a correct mutex: one holder at a "
            "time, grant discipline, no starved waiter on a free "
            "resource",
            _check_deadlock_freedom,
            # Crash-restart abandons holders and waiters mid-request,
            # which legitimately interrupts the request lifecycle.
            lambda case: not case.locks_free
            and (case.faults is None or not case.faults.crashes),
        ),
        Oracle(
            "region-soundness",
            "region-subsystem contract (docs/regions.md)",
            "every point the feasibility region would serve "
            "analysis-free is confirmed schedulable by direct analysis",
            _check_region_soundness,
            _region_applies,
        ),
        Oracle(
            "batch-vs-reference-identity",
            "batch-engine contract (docs/batch-engine.md)",
            "re-simulating on the batch engine reproduces the reference "
            "trace byte-for-byte, with no in-domain fallback",
            _check_batch_reference_identity,
            _batch_identity_applies,
        ),
        Oracle(
            "durable-decision-identity",
            "durability-layer contract (docs/service.md)",
            "a computed decision survives the checksummed persistence "
            "frame byte-identically, and a flipped byte is detected",
            _check_durable_decision_identity,
            # Same size gate as the region oracle: the check pays one
            # extra analysis dispatch per case.
            _region_applies,
        ),
        Oracle(
            "exhaustive-vs-bounds",
            "Section 2 (exhaustive search), Section 5",
            "searched worst-case EER stays below the analysis bound on "
            "small systems",
            _check_exhaustive,
            _exhaustive_applies,
        ),
    )
}


def oracle_names() -> tuple[str, ...]:
    """All registered oracle names, in registry order."""
    return tuple(ORACLES)


def check_case(
    case: FuzzCase, names: tuple[str, ...] | None = None
) -> tuple[dict[str, list[str]], tuple[str, ...]]:
    """Run oracles over a case.

    Returns ``(failures, checked)``: violations keyed by oracle name
    (only oracles that found any), and the names of the oracles that
    applied to this case.  Unknown names raise
    :class:`~repro.errors.ConfigurationError`.
    """
    selected = names if names is not None else oracle_names()
    unknown = [name for name in selected if name not in ORACLES]
    if unknown:
        raise ConfigurationError(
            f"unknown oracle(s) {', '.join(unknown)}; "
            f"known: {', '.join(ORACLES)}"
        )
    failures: dict[str, list[str]] = {}
    checked: list[str] = []
    for name in selected:
        oracle = ORACLES[name]
        if not oracle.applies(case):
            continue
        checked.append(name)
        issues = oracle.check(case)
        if issues:
            failures[name] = issues
    return failures, tuple(checked)
