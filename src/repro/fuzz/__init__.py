"""Differential conformance fuzzing: simulator vs. analysis oracles.

The fuzzer generates seeded random systems with the paper's workload
generator, runs all four protocols through the simulator, and checks a
registry of paper-derived oracles on every run -- trace invariants,
analysis soundness, PM==MPM schedule identity, Release Guard
conformance, and exhaustive-search cross-checks on small systems.  Any
failure is delta-debugged to a minimal counterexample and persisted to
a JSONL corpus that the test suite replays forever after.

Entry points: :func:`~repro.fuzz.campaign.run_campaign` (budgeted
campaigns, process-pool parallel), :func:`~repro.fuzz.campaign.fuzz_one`
(one seeded case), and the ``repro-rts fuzz`` / ``fuzz-replay`` CLI
subcommands.
"""

from repro.fuzz.campaign import (
    PROFILES,
    CampaignReport,
    CaseOutcome,
    fuzz_one,
    run_campaign,
)
from repro.fuzz.corpus import (
    Counterexample,
    ReplayOutcome,
    append_counterexample,
    load_corpus,
    replay_corpus,
)
from repro.fuzz.oracles import ORACLES, Oracle, check_case, oracle_names
from repro.fuzz.runner import CheckedReleaseGuard, FuzzCase, build_case
from repro.fuzz.shrink import ShrinkResult, shrink_system

__all__ = [
    "ORACLES",
    "PROFILES",
    "CampaignReport",
    "CaseOutcome",
    "CheckedReleaseGuard",
    "Counterexample",
    "FuzzCase",
    "Oracle",
    "ReplayOutcome",
    "ShrinkResult",
    "append_counterexample",
    "build_case",
    "check_case",
    "fuzz_one",
    "load_corpus",
    "oracle_names",
    "replay_corpus",
    "run_campaign",
    "shrink_system",
]
