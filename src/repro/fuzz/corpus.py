"""Counterexample corpus: JSONL persistence and regression replay.

Every counterexample the fuzzer finds is persisted as one JSON line --
the shrunk system, the failing oracle, the generator coordinates
``(config, seed)`` that produced the original, and the violation
messages observed.  The corpus lives under ``tests/corpus/`` and is
replayed by the test suite and by ``repro-rts fuzz-replay``: after the
underlying bug is fixed, each entry must pass its oracle forever after.

Format (``repro-fuzz-counterexample-v1``), one document per line::

    {"format": "...", "oracle": "rg-separation", "seed": 17,
     "config": {...} | null, "system": {repro-system-v1},
     "violations": [...], "original_task_count": 5, ...}

Lines starting with ``#`` and blank lines are ignored, so corpus files
can carry comments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ConfigurationError
from repro.fuzz.oracles import check_case, oracle_names
from repro.fuzz.runner import build_case
from repro.io import (
    config_from_dict,
    config_to_dict,
    system_from_dict,
    system_to_dict,
)
from repro.model.system import System
from repro.workload.config import WorkloadConfig

__all__ = [
    "Counterexample",
    "ReplayOutcome",
    "append_counterexample",
    "load_corpus",
    "replay_corpus",
]

_FORMAT = "repro-fuzz-counterexample-v1"
#: Default corpus file name inside a corpus directory.
DEFAULT_FILENAME = "counterexamples.jsonl"


@dataclass(frozen=True)
class Counterexample:
    """One persisted (usually shrunk) oracle failure."""

    oracle: str
    system: System
    violations: tuple[str, ...]
    seed: int | None = None
    config: WorkloadConfig | None = None
    original_task_count: int | None = None
    shrink_attempts: int | None = None
    note: str = ""

    def describe(self) -> str:
        origin = f"seed {self.seed}" if self.seed is not None else "ad hoc"
        return (
            f"[{self.oracle}] {self.system.name}: "
            f"{len(self.system.tasks)} task(s), "
            f"{self.system.subtask_count} subtask(s) ({origin}); "
            f"first violation: "
            f"{self.violations[0] if self.violations else 'n/a'}"
        )


def counterexample_to_dict(record: Counterexample) -> dict[str, Any]:
    """JSON-ready form of one counterexample."""
    return {
        "format": _FORMAT,
        "oracle": record.oracle,
        "seed": record.seed,
        "config": (
            None if record.config is None else config_to_dict(record.config)
        ),
        "system": system_to_dict(record.system),
        "violations": list(record.violations),
        "original_task_count": record.original_task_count,
        "shrink_attempts": record.shrink_attempts,
        "note": record.note,
    }


def counterexample_from_dict(data: dict[str, Any]) -> Counterexample:
    """Rebuild a counterexample from :func:`counterexample_to_dict`."""
    if data.get("format") != _FORMAT:
        raise ConfigurationError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    if data["oracle"] not in oracle_names():
        raise ConfigurationError(
            f"corpus entry names unknown oracle {data['oracle']!r}"
        )
    return Counterexample(
        oracle=data["oracle"],
        system=system_from_dict(data["system"]),
        violations=tuple(data.get("violations", ())),
        seed=data.get("seed"),
        config=(
            None
            if data.get("config") is None
            else config_from_dict(data["config"])
        ),
        original_task_count=data.get("original_task_count"),
        shrink_attempts=data.get("shrink_attempts"),
        note=data.get("note", ""),
    )


def _corpus_file(path: str | Path) -> Path:
    """Resolve a corpus argument: a file, or a directory's default file."""
    target = Path(path)
    if target.is_dir() or target.suffix == "":
        return target / DEFAULT_FILENAME
    return target


def append_counterexample(
    record: Counterexample, path: str | Path
) -> Path:
    """Append one counterexample to a corpus file (creating it, and its
    parent directory, as needed).  Returns the file written."""
    target = _corpus_file(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as handle:
        handle.write(json.dumps(counterexample_to_dict(record)) + "\n")
    return target


def load_corpus(path: str | Path) -> list[Counterexample]:
    """Load every counterexample under ``path``.

    ``path`` may be one ``.jsonl`` file or a directory, in which case
    every ``*.jsonl`` file in it is read (sorted by name).  A missing
    path yields an empty corpus.
    """
    target = Path(path)
    if target.is_dir():
        files: Iterable[Path] = sorted(target.glob("*.jsonl"))
    elif target.exists():
        files = [target]
    else:
        return []
    records = []
    for file in files:
        for number, line in enumerate(
            file.read_text().splitlines(), start=1
        ):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                records.append(
                    counterexample_from_dict(json.loads(stripped))
                )
            except ConfigurationError:
                raise
            except (ValueError, KeyError, TypeError) as exc:
                raise ConfigurationError(
                    f"{file}:{number}: bad corpus line: {exc}"
                ) from exc
    return records


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying one corpus entry against the current code."""

    record: Counterexample
    failures: dict[str, list[str]]

    @property
    def passed(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        verdict = "ok" if self.passed else "STILL FAILING"
        summary = self.record.describe()
        if self.passed:
            return f"{verdict}: {summary}"
        details = "; ".join(
            issue for issues in self.failures.values() for issue in issues
        )
        return f"{verdict}: {summary} -- {details}"


def replay_corpus(
    records: Iterable[Counterexample],
    *,
    horizon_periods: float = 5.0,
) -> list[ReplayOutcome]:
    """Re-run each entry's oracle on its system with the current code.

    A healthy corpus replays clean: entries document *fixed* bugs.  Any
    outcome with failures means a regression (or an entry added for a
    bug not yet fixed).
    """
    outcomes = []
    for record in records:
        case = build_case(
            record.system,
            seed=record.seed,
            config=record.config,
            horizon_periods=horizon_periods,
        )
        failures, _checked = check_case(case, (record.oracle,))
        outcomes.append(ReplayOutcome(record=record, failures=failures))
    return outcomes
