"""Build one fuzz *case*: every protocol simulated, both analyses run.

A :class:`FuzzCase` is the shared evidence the oracle registry
(:mod:`repro.fuzz.oracles`) judges: the four protocol traces (recorded
with segments, so :func:`repro.sim.trace_validation.validate_trace` can
re-derive the scheduling rules), the SA/PM and SA/DS analysis results,
and per-protocol run metadata.  Protocols that cannot run on a given
system -- PM/MPM need finite SA/PM bounds for every non-last subtask --
are *skipped* with a recorded reason rather than failed: an infeasible
system is not a counterexample.

The RG run uses :class:`CheckedReleaseGuard`, a Release Guard that also
records any release happening before the guard that governed it, and is
simulated with idle-point recording on so that Theorem 1's release-
separation argument is checkable from the trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.clocks.config import ClockConfig
from repro.core.analysis.results import AnalysisResult
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.analysis.skew import analyze_sa_pm_skewed
from repro.core.protocols.direct import DirectSynchronization
from repro.core.protocols.modified_pm import ModifiedPhaseModification
from repro.core.protocols.phase_modification import PhaseModification
from repro.core.protocols.release_guard import ReleaseGuard
from repro.errors import ConfigurationError
from repro.faults import FaultConfig
from repro.locks.analysis import (
    analyze_sa_ds_blocking,
    analyze_sa_pm_blocking,
)
from repro.locks.config import LockingConfig
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.sim.interfaces import ReleaseController
from repro.sim.network import FixedLatency
from repro.sim.simulator import SimulationResult, simulate
from repro.timebase import FLOAT, Timebase, get_timebase
from repro.workload.config import WorkloadConfig

__all__ = ["CheckedReleaseGuard", "FuzzCase", "build_case"]

#: Protocols a case tries to run, in the paper's order.
CASE_PROTOCOLS = ("DS", "PM", "MPM", "RG")


class CheckedReleaseGuard(ReleaseGuard):
    """Release Guard that records releases arriving before their guard.

    The kernel invokes :meth:`on_release` at the instant an instance is
    released, *before* rule 1 raises the guard -- so ``self.guards[sid]``
    still holds the guard that governed this release.  A correct RG
    implementation never releases early; anything recorded here is a
    protocol-conformance violation (Section 3.2, release rule).

    The class opts into the batch engine (``batch_equivalent``): its
    only addition over stock RG is the ``early_releases`` diagnostic,
    which never alters a schedule and stays empty on the batch engine's
    supported domain (the rg-guard-conformance oracle that reads it
    judges reference runs).
    """

    #: Explicit batch-engine opt-in (see repro.sim.batch.backend): the
    #: subclass changes nothing observable about the schedule.
    batch_equivalent = "RG"

    def __init__(self) -> None:
        super().__init__()
        #: (sid, instance, local release time, governing guard) per early
        #: release.
        self.early_releases: list[tuple[SubtaskId, int, float, float]] = []

    def on_release(self, sid: SubtaskId, instance: int, now: float) -> None:
        assert self.kernel is not None and self.system is not None
        # Only successor subtasks are *governed* by their guard: first
        # subtasks are environment-released (true-time periodic) and
        # never receive signals, so their guard is bookkeeping nobody
        # consults -- on a drifting clock it can lag the environment's
        # period without any protocol rule being broken.  The check reads
        # the same local clock the protocol does: comparing true-time
        # `now` against a local guard would spuriously flag every
        # release on a clock running behind.
        if sid.subtask_index > 0:
            local_now = self._local_now(self.system.subtask(sid).processor)
            guard = self.guards.get(sid, local_now)
            if self.kernel.timebase.lt(local_now, guard):
                self.early_releases.append(
                    (sid, instance, local_now, guard)
                )
        super().on_release(sid, instance, now)


@dataclass
class FuzzCase:
    """Everything the oracles need to judge one system."""

    system: System
    sa_pm: AnalysisResult
    sa_ds: AnalysisResult
    horizon_periods: float
    seed: int | None = None
    config: WorkloadConfig | None = None
    #: Arithmetic backend the case was built under.
    timebase: Timebase = FLOAT
    #: Per-processor clock configuration; None means all perfect.
    clocks: ClockConfig | None = None
    #: Cross-processor signal latency every simulation ran with.
    latency: float = 0.0
    #: Fault environment every simulation ran under; None = no plane.
    faults: FaultConfig | None = None
    #: Locking configuration every simulation ran with.  Always set when
    #: the system declares critical sections (defaulting to DPCP); may
    #: also be set on a resource-free system, where the kernel treats it
    #: as a strict no-op (the lock-free-identity oracle's subject).
    locking: LockingConfig | None = None
    #: Skew-inflated SA/PM bounds; present iff the clocks are imperfect.
    sa_pm_skew: AnalysisResult | None = None
    #: Blocking-aware analyses.  On a resource-free system these are the
    #: *same objects* as ``sa_pm``/``sa_ds`` (the exact-reduction
    #: contract); with critical sections they carry the DPCP / DPCP-p
    #: blocking terms and agent interference, and the PM/MPM timer
    #: controllers are built from ``sa_pm_blocking`` -- blocking-unaware
    #: timers would release successors before their blocked
    #: predecessors complete.
    sa_pm_blocking: AnalysisResult | None = None
    sa_ds_blocking: AnalysisResult | None = None
    #: Protocol name -> simulation result (only protocols that ran).
    results: dict[str, SimulationResult] = field(default_factory=dict)
    #: Protocol name -> reason it was skipped.
    skipped: dict[str, str] = field(default_factory=dict)
    #: Controller objects, for oracle introspection (e.g. the RG guard log).
    controllers: dict[str, ReleaseController] = field(default_factory=dict)

    @property
    def clocks_perfect(self) -> bool:
        """True when every processor clock is ideal."""
        return self.clocks is None or self.clocks.is_perfect

    @property
    def faults_null(self) -> bool:
        """True when no fault can fire (no plane, or a zero-rate one)."""
        return self.faults is None or self.faults.is_null

    @property
    def locks_free(self) -> bool:
        """True when the system declares no critical sections."""
        return not self.system.has_critical_sections

    @property
    def ideal(self) -> bool:
        """Perfect clocks, zero signal latency, no live faults *and* no
        shared resources -- the Section 3 assumptions the strictest
        oracles (PM/MPM identity, plain SA/PM soundness, exhaustive
        search) are stated under.  Locked cases are judged by the
        blocking-aware oracles instead."""
        return (
            self.clocks_perfect
            and self.latency == 0
            and self.faults_null
            and self.locks_free
        )

    @property
    def label(self) -> str:
        parts = [self.system.name]
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.config is not None:
            parts.append(self.config.label)
        if self.clocks is not None and not self.clocks.is_perfect:
            parts.append(self.clocks.label)
        if self.latency:
            parts.append(f"latency={self.latency}")
        if self.faults is not None and not self.faults.is_null:
            parts.append(self.faults.label)
        if self.locking is not None and not self.locks_free:
            parts.append(self.locking.label)
        return " ".join(parts)


def _pm_bounds_ok(result: AnalysisResult, system: System) -> bool:
    """PM/MPM can run iff every non-last subtask has a finite bound."""
    for task_index, task in enumerate(system.tasks):
        for j in range(task.chain_length - 1):
            if math.isinf(result.subtask_bounds[SubtaskId(task_index, j)]):
                return False
    return True


def build_case(
    system: System,
    *,
    seed: int | None = None,
    config: WorkloadConfig | None = None,
    horizon_periods: float = 5.0,
    sa_ds_max_iterations: int = 120,
    clocks: ClockConfig | None = None,
    latency: float = 0.0,
    faults: FaultConfig | None = None,
    locking: LockingConfig | None = None,
    timebase: Timebase | str = "float",
    engine: str = "reference",
) -> FuzzCase:
    """Run all four protocols and both analyses over ``system``.

    Every simulation records segments (for the trace validator); the RG
    run additionally records idle points (for the release-separation
    oracle).  The result is deterministic: the simulator is a pure
    function of the system, clock configuration, latency and fault
    environment -- no randomness enters after generation
    (:class:`ResyncClock` offsets and fault decisions are derived from
    their configs' seeds).  ``clocks`` assigns per-processor local
    clocks (imperfect clocks additionally produce the skew-inflated
    SA/PM result on ``case.sa_pm_skew``); ``latency`` is a uniform
    cross-processor signal delay; ``faults`` arms the fault plane for
    every protocol's run (each run gets its own plane from the same
    config, so all four protocols face the same fault decisions).
    ``locking`` selects the locking protocol arbitrating any critical
    sections the system declares (a system with sections defaults to
    DPCP; on a resource-free system the config is a strict no-op).  On
    a resourceful system the PM/MPM controllers take their timers from
    the *blocking-aware* SA/PM bounds -- blocking-unaware timers would
    release successors before their blocked predecessors complete.
    ``timebase`` selects the arithmetic backend for both the analyses
    and the simulations; under ``"exact"`` the oracles judge with zero
    tolerance.  ``engine`` selects the simulation backend for every
    protocol run; cases outside the batch engine's domain (clocks,
    faults, locks, latency, non-float timebase) fall back to the
    reference kernel explicitly, with the reason recorded on each
    result's ``engine_fallback``.
    """
    tb = get_timebase(timebase)
    if latency < 0 or not math.isfinite(latency):
        raise ConfigurationError(
            f"latency must be finite and >= 0, got {latency!r}"
        )
    if locking is None and system.has_critical_sections:
        locking = LockingConfig()
    sa_pm = analyze_sa_pm(system, timebase=tb)
    sa_ds = analyze_sa_ds(
        system, max_iterations=sa_ds_max_iterations, timebase=tb
    )
    if system.has_critical_sections:
        sa_pm_blocking = analyze_sa_pm_blocking(
            system, locking=locking, timebase=tb
        )
        sa_ds_blocking = analyze_sa_ds_blocking(
            system,
            locking=locking,
            max_iterations=sa_ds_max_iterations,
            timebase=tb,
        )
    else:
        # Exact reduction: the blocking-aware analyses *are* the base
        # analyses on a resource-free system -- same objects.
        sa_pm_blocking = sa_pm
        sa_ds_blocking = sa_ds
    sa_pm_skew = None
    if clocks is not None and not clocks.is_perfect:
        sa_pm_skew = analyze_sa_pm_skewed(system, clocks=clocks, timebase=tb)
    case = FuzzCase(
        system=system,
        sa_pm=sa_pm,
        sa_ds=sa_ds,
        horizon_periods=horizon_periods,
        seed=seed,
        config=config,
        timebase=tb,
        clocks=clocks,
        latency=latency,
        faults=faults,
        locking=locking,
        sa_pm_skew=sa_pm_skew,
        sa_pm_blocking=sa_pm_blocking,
        sa_ds_blocking=sa_ds_blocking,
    )
    clock_map = None if clocks is None else clocks.build(system.processors)
    latency_model = FixedLatency(latency) if latency > 0 else None

    pm_runnable = _pm_bounds_ok(sa_pm_blocking, system)
    for protocol in CASE_PROTOCOLS:
        record_idle = False
        if protocol == "DS":
            controller: ReleaseController = DirectSynchronization()
        elif protocol == "RG":
            controller = CheckedReleaseGuard()
            record_idle = True
        else:  # PM / MPM
            if not pm_runnable:
                algorithm = sa_pm_blocking.algorithm
                case.skipped[protocol] = (
                    f"{algorithm} bound infinite for a non-last subtask; "
                    "the timer protocols cannot place releases"
                )
                continue
            bounds = dict(sa_pm_blocking.subtask_bounds)
            controller = (
                PhaseModification(bounds)
                if protocol == "PM"
                else ModifiedPhaseModification(bounds)
            )
        case.controllers[protocol] = controller
        case.results[protocol] = simulate(
            system,
            controller,
            horizon_periods=horizon_periods,
            record_segments=True,
            record_idle_points=record_idle,
            latency_model=latency_model,
            clocks=clock_map,
            timebase=tb,
            faults=faults,
            locking=locking,
            engine=engine,
        )
    return case
