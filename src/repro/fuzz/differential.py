"""Differential backend checking: float vs exact timebase.

The exact timebase is the reference semantics -- scaled-integer /
rational arithmetic with no tolerance anywhere.  The float backend is
the fast default, *believed* to agree with it everywhere the epsilon
guards were tuned correctly.  This module turns that belief into a
fuzzable claim: build the same case under both backends and flag any
observable disagreement.

``compare_backends`` checks, in order of severity:

* **analysis verdicts** -- SA/PM and SA/DS schedulability and failure
  flags must match (a flip here means an epsilon guard changed a
  certification decision);
* **skipped protocols** -- the same protocols must have been runnable;
* **release/completion sets** -- the same instances must be released
  and completed;
* **completion times** -- per instance, the float completion must match
  the exact completion to within a relative ``_TIME_RTOL`` (float
  arithmetic accumulates ulp-level error over a simulation, so exact
  equality is not expected -- but anything beyond ~1e-6 relative means
  an epsilon guard steered the *schedule*, not just the arithmetic).

Events inside a ``_TIME_RTOL`` band at the simulation horizon are
excluded from the set comparisons: the horizon itself is a float-
computed quantity (``default_horizon`` evaluates ``phase + k * period``
in float), so whether an event lands exactly *on* it is decided by the
last ulp of float rounding -- the two backends legitimately disagree
there, and the band keeps boundary noise from masquerading as a
schedule divergence.

The campaign exposes this as the pseudo-oracle ``float-vs-exact``.
"""

from __future__ import annotations

from repro.fuzz.runner import FuzzCase
from repro.timebase import fmt

__all__ = ["DIFFERENTIAL_ORACLE", "compare_backends"]

#: Name the campaign reports differential findings under.
DIFFERENTIAL_ORACLE = "float-vs-exact"

#: Relative agreement demanded of float completion times against the
#: exact reference.  Far above accumulated ulp noise over a simulation,
#: far below model granularity.
_TIME_RTOL = 1e-6

#: Cap on per-case reported disagreements (one real divergence tends to
#: cascade through every later event; the first few localize it).
_MAX_REPORTS = 10


def _verdict_issues(float_case: FuzzCase, exact_case: FuzzCase) -> list[str]:
    issues = []
    for name, f_res, e_res in (
        ("SA/PM", float_case.sa_pm, exact_case.sa_pm),
        ("SA/DS", float_case.sa_ds, exact_case.sa_ds),
    ):
        if f_res.schedulable != e_res.schedulable:
            issues.append(
                f"{name} schedulability flips: float says "
                f"{f_res.schedulable}, exact says {e_res.schedulable}"
            )
        if f_res.failed != e_res.failed:
            issues.append(
                f"{name} failure flag flips: float says {f_res.failed}, "
                f"exact says {e_res.failed}"
            )
    return issues


def compare_backends(
    float_case: FuzzCase, exact_case: FuzzCase
) -> list[str]:
    """All observable disagreements between the two backends' cases.

    Both cases must have been built from the same system with the same
    horizon; an empty list means the backends agree.
    """
    issues = _verdict_issues(float_case, exact_case)

    float_skipped = set(float_case.skipped)
    exact_skipped = set(exact_case.skipped)
    if float_skipped != exact_skipped:
        issues.append(
            f"skipped protocols differ: float skipped "
            f"{sorted(float_skipped) or 'none'}, exact skipped "
            f"{sorted(exact_skipped) or 'none'}"
        )

    for protocol in sorted(
        set(float_case.results) & set(exact_case.results)
    ):
        f_run = float_case.results[protocol]
        e_run = exact_case.results[protocol]
        f_trace, e_trace = f_run.trace, e_run.trace
        # Horizon-boundary band: events this close to the horizon may
        # exist under one backend only (see module docstring).
        cut = f_run.horizon - _TIME_RTOL * max(1.0, f_run.horizon)

        def core(mapping) -> set:
            return {key for key, time in mapping.items() if time < cut}

        for kind, f_map, e_map in (
            ("releases", f_trace.releases, e_trace.releases),
            ("completions", f_trace.completions, e_trace.completions),
        ):
            only_float = sorted(core(f_map) - core(e_map))
            only_exact = sorted(core(e_map) - core(f_map))
            if only_float:
                issues.append(
                    f"{protocol}: {len(only_float)} {kind} only under "
                    f"float, first {only_float[0]}"
                )
            if only_exact:
                issues.append(
                    f"{protocol}: {len(only_exact)} {kind} only under "
                    f"exact, first {only_exact[0]}"
                )
        reported = 0
        for key in sorted(
            core(f_trace.completions) & core(e_trace.completions)
        ):
            f_time = f_trace.completions[key]
            e_time = float(e_trace.completions[key])
            if abs(f_time - e_time) > _TIME_RTOL * max(1.0, abs(e_time)):
                issues.append(
                    f"{protocol}: {key[0]}#{key[1]} completes at "
                    f"{fmt(f_time)} under float but {fmt(e_time)} under "
                    f"exact"
                )
                reported += 1
                if reported >= _MAX_REPORTS:
                    issues.append(
                        f"{protocol}: further completion-time "
                        f"disagreements suppressed"
                    )
                    break

    if len(issues) > _MAX_REPORTS:
        issues = issues[:_MAX_REPORTS] + [
            f"... {len(issues) - _MAX_REPORTS} further disagreement(s) "
            f"suppressed"
        ]
    return issues
