"""The PM-miss-under-skew finder: a targeted separation search.

The clock subsystem's headline claim (Section 3.1 vs 3.2) is a
*separation*: under clocks that are merely offset -- not even drifting
-- PM breaks while MPM and RG do not.  PM's phase table is an absolute
local-time schedule, so a processor whose clock runs behind releases
every downstream subtask late (deadline misses) and one running ahead
releases them early (precedence violations); MPM and RG only measure
durations, which an offset leaves untouched.

:func:`find_pm_miss_under_skew` searches seeds for a witness case where
all three hold at once:

* PM under the skewed clocks misbehaves -- deadline misses or
  precedence violations;
* PM under perfect clocks is clean (the skew, not the workload, is the
  cause);
* MPM and RG under the *same* skewed clocks stay within the
  skew-inflated SA/PM bounds and keep precedence (their clock-freedom
  is real, not luck).

The default clock configuration is a slow offset of about half the
smallest period: large enough to push PM's tail subtasks past their
deadlines at moderate utilization, while provably invisible to the
duration-measuring protocols.  The finder is deterministic -- a
``(config, clocks, seed)`` triple fully reproduces its witness -- and
doubles as the end-to-end evidence required by the clock study (the
``clock-study`` experiment sweeps the same separation over resync
precision).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.config import ClockConfig
from repro.fuzz.oracles import check_case
from repro.fuzz.runner import FuzzCase, build_case
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

__all__ = ["SkewWitness", "find_pm_miss_under_skew", "DEFAULT_SKEW_CONFIG"]

#: Workload the finder searches by default: utilization low enough that
#: Algorithm SA/PM regularly *accepts* the system -- the separation is
#: only evidence when PM was guaranteed to work under perfect clocks.
DEFAULT_SKEW_CONFIG = WorkloadConfig(
    subtasks_per_task=3,
    utilization=0.6,
    tasks=4,
    processors=3,
    period_min=100.0,
    period_max=1000.0,
    period_scale=300.0,
)

#: Clock configuration the finder uses by default: a pure offset on the
#: order of the faster periods.  Sign alternates per processor (see
#: :meth:`ClockConfig.build`), so the witness usually shows both
#: failure modes: late releases (deadline misses) on the slow
#: processors and early releases (precedence violations) on the fast
#: ones.
DEFAULT_SKEW_CLOCKS = ClockConfig(kind="offset", offset=150.0)


@dataclass(frozen=True)
class SkewWitness:
    """One seed separating PM from MPM/RG under skewed clocks."""

    seed: int
    clocks: ClockConfig
    config: WorkloadConfig
    pm_misses: int
    pm_violations: int
    skewed_case: FuzzCase
    perfect_case: FuzzCase

    def describe(self) -> str:
        return (
            f"seed={self.seed} {self.clocks.label}: PM suffers "
            f"{self.pm_misses} deadline miss(es) and "
            f"{self.pm_violations} precedence violation(s) while MPM/RG "
            f"meet the skew-inflated SA/PM bounds"
        )


def _pm_clean(case: FuzzCase) -> bool:
    """PM ran, missed nothing, violated nothing."""
    result = case.results.get("PM")
    if result is None:
        return False
    return (
        result.metrics.total_deadline_misses == 0
        and not result.trace.violations
    )


def _mpm_rg_within_bounds(case: FuzzCase) -> bool:
    """MPM and RG ran, kept precedence, and met the skewed bounds."""
    for protocol in ("MPM", "RG"):
        result = case.results.get(protocol)
        if result is None or result.trace.violations:
            return False
    failures, checked = check_case(case, ("sa-pm-skew-soundness",))
    return "sa-pm-skew-soundness" in checked and not failures


def find_pm_miss_under_skew(
    *,
    config: WorkloadConfig = DEFAULT_SKEW_CONFIG,
    clocks: ClockConfig = DEFAULT_SKEW_CLOCKS,
    base_seed: int = 0,
    max_seeds: int = 50,
    horizon_periods: float = 5.0,
    require_misses: bool = True,
    timebase: str = "float",
) -> SkewWitness | None:
    """Search seeds for a PM-vs-MPM/RG separation witness.

    Returns the first witness found, or ``None`` after ``max_seeds``
    seeds.  Seeds whose system Algorithm SA/PM does not accept are
    skipped outright: an overloaded workload missing deadlines says
    nothing about clocks.  With ``require_misses`` (the default) the
    witness must show actual PM *deadline misses*; without it,
    precedence violations alone qualify (those appear at much smaller
    offsets).
    """
    for seed in range(base_seed, base_seed + max_seeds):
        system = generate_system(config, seed)
        skewed = build_case(
            system,
            seed=seed,
            config=config,
            horizon_periods=horizon_periods,
            clocks=clocks,
            timebase=timebase,
        )
        if not skewed.sa_pm.schedulable:
            continue
        pm_result = skewed.results.get("PM")
        if pm_result is None:
            continue
        misses = pm_result.metrics.total_deadline_misses
        violations = len(pm_result.trace.violations)
        if require_misses and misses == 0:
            continue
        if misses == 0 and violations == 0:
            continue
        if not _mpm_rg_within_bounds(skewed):
            continue
        perfect = build_case(
            system,
            seed=seed,
            config=config,
            horizon_periods=horizon_periods,
            timebase=timebase,
        )
        if not _pm_clean(perfect):
            continue
        return SkewWitness(
            seed=seed,
            clocks=clocks,
            config=config,
            pm_misses=misses,
            pm_violations=violations,
            skewed_case=skewed,
            perfect_case=perfect,
        )
    return None
