"""repro -- synchronization protocols in distributed real-time systems.

A production-quality reproduction of Jun Sun & Jane W.-S. Liu,
"Synchronization Protocols in Distributed Real-Time Systems" (ICDCS
1996): the DS, PM, MPM and RG synchronization protocols, the SA/PM and
SA/DS schedulability analyses, a discrete-event simulator for
fixed-priority end-to-end task chains, the paper's synthetic workload
generator, and an experiment harness regenerating every figure of the
evaluation.

Quickstart::

    from repro import example_two, run_protocol, analyze

    system = example_two()
    print(analyze(system, "DS").describe())      # SA/DS: T3 bound = 7 > 6
    result = run_protocol(system, "RG")
    print(result.average_eer(2))                  # T3 meets its deadline
"""

from repro.advisor import Recommendation, recommend_protocol
from repro.api import (
    admit,
    admit_many,
    analyze,
    compare_protocols,
    fuzz_once,
    run_protocol,
)
from repro.core.analysis import (
    FAILURE_FACTOR,
    AnalysisResult,
    analyze_sa_ds,
    analyze_sa_pm,
)
from repro.core.protocols import (
    PROTOCOL_COSTS,
    PROTOCOL_NAMES,
    DirectSynchronization,
    ModifiedPhaseModification,
    PhaseModification,
    ReleaseGuard,
    make_controller,
)
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    ModelError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.model import (
    Subtask,
    SubtaskId,
    System,
    Task,
    proportional_deadline_monotonic,
    validate_system,
)
from repro.service import (
    AdmissionController,
    AdmissionDecision,
    AdmissionRequest,
    DecisionCache,
    ServiceMetrics,
)
from repro.sim import SimulationResult, Trace, simulate
from repro.workload import (
    PAPER_GRID,
    WorkloadConfig,
    example_two,
    generate_system,
    monitor_task_example,
    paper_grid,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRequest",
    "AnalysisError",
    "AnalysisResult",
    "ConfigurationError",
    "DecisionCache",
    "DirectSynchronization",
    "FAILURE_FACTOR",
    "ModelError",
    "ModifiedPhaseModification",
    "PAPER_GRID",
    "PROTOCOL_COSTS",
    "PROTOCOL_NAMES",
    "PhaseModification",
    "Recommendation",
    "ReleaseGuard",
    "ReproError",
    "recommend_protocol",
    "ServiceMetrics",
    "SimulationError",
    "SimulationResult",
    "Subtask",
    "SubtaskId",
    "System",
    "Task",
    "Trace",
    "WorkloadConfig",
    "WorkloadError",
    "admit",
    "admit_many",
    "analyze",
    "analyze_sa_ds",
    "analyze_sa_pm",
    "compare_protocols",
    "example_two",
    "fuzz_once",
    "generate_system",
    "make_controller",
    "monitor_task_example",
    "paper_grid",
    "proportional_deadline_monotonic",
    "run_protocol",
    "simulate",
    "validate_system",
    "__version__",
]
