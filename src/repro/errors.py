"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one type to handle any library
failure.  The subclasses partition the failure domains:

* :class:`ModelError` -- an ill-formed task set, subtask, or system
  description (non-positive period, empty chain, unknown processor, ...).
* :class:`ConfigurationError` -- an ill-formed experiment or workload
  configuration (bad utilization, bad grid, ...).
* :class:`AnalysisError` -- a schedulability analysis could not run, e.g.
  the busy-period iteration was asked to analyse an overloaded processor.
* :class:`SimulationError` -- the discrete-event simulation detected an
  internal inconsistency (events out of order, precedence violation, ...).
* :class:`WorkloadError` -- the synthetic workload generator could not
  satisfy the requested constraints.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception deliberately raised by this library."""


class ModelError(ReproError):
    """An ill-formed task, subtask, processor, or system description."""


class ConfigurationError(ReproError):
    """An invalid experiment, workload, or simulation configuration."""


class AnalysisError(ReproError):
    """A schedulability analysis could not be carried out.

    Note that an *unschedulable* system is not an error: analyses report
    unschedulability through their result objects.  This exception covers
    cases where the analysis itself is inapplicable, e.g. a processor with
    utilization above 1 handed to the busy-period iteration, or an
    iteration cap exceeded.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class WorkloadError(ReproError):
    """The synthetic workload generator could not satisfy its constraints."""
