"""The paper's contribution: synchronization protocols + their analyses."""

from repro.core import analysis, protocols

__all__ = ["analysis", "protocols"]
