"""Result containers for schedulability analyses.

Both analyses produce, for every subtask, an upper bound -- a response
time bound for SA/PM (valid for the PM, MPM and RG protocols), an IEER
bound for SA/DS -- and, for every task, an upper bound on the end-to-end
response (EER) time.  Infinity encodes the paper's *failure* condition
(a bound exceeding ``failure_factor`` times the period).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.model.system import System
from repro.model.task import SubtaskId
from repro.timebase import REL_EPS

__all__ = ["AnalysisResult", "FAILURE_FACTOR"]

#: The paper declares a bound larger than 300 periods "for all practical
#: purposes equal to infinity".
FAILURE_FACTOR = 300.0


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one schedulability analysis over one system.

    Attributes
    ----------
    algorithm:
        ``"SA/PM"``, ``"SA/DS"`` or ``"holistic"``.
    subtask_bounds:
        For SA/PM: upper bounds ``R_i,j`` on subtask response times.
        For SA/DS: upper bounds on subtask IEER times (completion of
        ``T_i,j(m)`` minus release of ``T_i,1(m)``).
        ``math.inf`` marks a failed (diverged) bound.
    task_bounds:
        Upper bounds on the end-to-end response time of each task, by
        task index; ``math.inf`` on failure.
    iterations:
        Outer iterations used (1 for SA/PM; the fixed-point pass count
        for SA/DS).
    """

    system: System
    algorithm: str
    subtask_bounds: Mapping[SubtaskId, float]
    task_bounds: tuple[float, ...]
    iterations: int = 1
    notes: tuple[str, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # Failure / schedulability queries
    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        """True when any task's bound is infinite (the paper's failure)."""
        return any(math.isinf(bound) for bound in self.task_bounds)

    @property
    def all_finite(self) -> bool:
        """True when every task bound is finite."""
        return not self.failed

    def task_bound(self, task_index: int) -> float:
        """The EER upper bound of one task."""
        return self.task_bounds[task_index]

    def subtask_bound(self, sid: SubtaskId) -> float:
        """The per-subtask bound (response time or IEER, per algorithm)."""
        return self.subtask_bounds[sid]

    def is_task_schedulable(self, task_index: int) -> bool:
        """EER bound no greater than the task's relative deadline.

        Bounds from an exact-timebase analysis (ints/Fractions) are
        compared with a plain ``<=``; float bounds keep the historical
        relative guard.  Python compares rationals against the float
        deadline exactly, so no conversion is needed here.
        """
        deadline = self.system.tasks[task_index].relative_deadline
        bound = self.task_bounds[task_index]
        if not isinstance(bound, float):
            return bound <= deadline
        return bound <= deadline + REL_EPS * max(1.0, deadline)

    @property
    def schedulable(self) -> bool:
        """True iff every task's bound is within its deadline."""
        return all(
            self.is_task_schedulable(index)
            for index in range(len(self.system.tasks))
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line summary of the bounds, for reports and the CLI."""
        lines = [
            f"{self.algorithm} analysis of {self.system.name!r} "
            f"({self.iterations} iteration(s)):"
        ]
        for index, task in enumerate(self.system.tasks):
            bound = self.task_bounds[index]
            deadline = task.relative_deadline
            verdict = (
                "FAIL (unbounded)"
                if math.isinf(bound)
                else ("ok" if self.is_task_schedulable(index) else "MISS")
            )
            shown = "inf" if math.isinf(bound) else f"{bound:g}"
            label = task.name or f"T{index + 1}"
            lines.append(
                f"  {label}: EER bound {shown} vs deadline {deadline:g} "
                f"[{verdict}]"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
