"""Sensitivity analysis: breakdown execution-time scaling.

A classic summary of schedulability margin: the largest factor by which
*all* execution times can be scaled before the system stops being
certifiably schedulable.  A factor above 1 measures headroom; below 1,
the relative overload.  Comparing the factor under SA/PM (the PM/MPM/RG
verdict) against SA/DS (the DS verdict) prices the protocol choice in
capacity terms -- by how much faster a processor must be before DS
becomes certifiable -- turning the paper's Figure-13 bound ratios into
an engineering number.

The search is a bisection over the scaling factor; each probe scales
every subtask's execution time and re-runs the chosen analysis.
Monotonicity (larger executions never help) makes bisection exact up to
the requested tolerance.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.errors import ConfigurationError
from repro.model.system import System
from repro.timebase import ABS_EPS

__all__ = ["scale_execution_times", "breakdown_scaling"]


def scale_execution_times(system: System, factor: float) -> System:
    """A copy of ``system`` with every execution time multiplied."""
    if factor <= 0:
        raise ConfigurationError(f"factor must be > 0, got {factor!r}")
    return system.with_tasks(
        task.with_subtasks(
            tuple(
                replace(stage, execution_time=stage.execution_time * factor)
                for stage in task.subtasks
            )
        )
        for task in system.tasks
    )


def _schedulable(system: System, analysis: str, sa_ds_max_iterations: int) -> bool:
    if system.max_utilization >= 1.0 - ABS_EPS:
        return False
    if analysis == "SA/DS":
        return analyze_sa_ds(
            system, max_iterations=sa_ds_max_iterations
        ).schedulable
    return analyze_sa_pm(system).schedulable


def breakdown_scaling(
    system: System,
    analysis: str = "SA/PM",
    *,
    tolerance: float = 1e-3,
    max_factor: float = 16.0,
    sa_ds_max_iterations: int = 60,
) -> float:
    """The largest execution-time scaling keeping the system certifiable.

    Returns a factor in ``(0, max_factor]``; 0.0 when the system is
    unschedulable at *any* positive scale the search can resolve (i.e.
    below ``tolerance``).  ``analysis`` is ``"SA/PM"`` or ``"SA/DS"``.
    """
    if analysis not in ("SA/PM", "SA/DS"):
        raise ConfigurationError(
            f"analysis must be 'SA/PM' or 'SA/DS', got {analysis!r}"
        )
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be > 0, got {tolerance!r}")
    if max_factor <= 0:
        raise ConfigurationError(
            f"max_factor must be > 0, got {max_factor!r}"
        )

    def ok(factor: float) -> bool:
        return _schedulable(
            scale_execution_times(system, factor),
            analysis,
            sa_ds_max_iterations,
        )

    if ok(max_factor):
        return max_factor
    low, high = 0.0, max_factor
    # Seed the bracket with factor 1 to save probes in the common case.
    if ok(1.0):
        low = 1.0
    else:
        high = 1.0
    while high - low > tolerance:
        mid = (low + high) / 2
        if mid <= 0:
            break
        if ok(mid):
            low = mid
        else:
            high = mid
    return low
