"""Sensitivity analysis: breakdown execution-time scaling.

A classic summary of schedulability margin: the largest factor by which
*all* execution times can be scaled before the system stops being
certifiably schedulable.  A factor above 1 measures headroom; below 1,
the relative overload.  Comparing the factor under SA/PM (the PM/MPM/RG
verdict) against SA/DS (the DS verdict) prices the protocol choice in
capacity terms -- by how much faster a processor must be before DS
becomes certifiable -- turning the paper's Figure-13 bound ratios into
an engineering number.

The search is a bisection over the scaling factor; each probe scales
every subtask's execution time and re-runs the chosen analysis.
Monotonicity (larger executions never help) makes bisection exact up to
the requested tolerance.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.errors import ConfigurationError
from repro.model.system import System
from repro.timebase import ABS_EPS

__all__ = ["scale_execution_times", "breakdown_scaling"]


def _scale_subtask(stage, factor):
    """One subtask with execution time *and* critical sections scaled.

    Critical sections are intervals of the subtask's own execution, so
    they must scale with it: leaving them fixed would reject any
    downscaling outright (a section ending beyond the shrunken
    execution time is a model error) and silently under-scale the
    blocking terms on upscaling, breaking the proportionality the
    breakdown search relies on.  The end offset is clamped against the
    scaled execution time to absorb the one-ulp float rounding of
    ``start*f + duration*f`` versus ``end*f``.
    """
    execution_time = stage.execution_time * factor
    sections = []
    for section in stage.critical_sections:
        start = section.start * factor
        duration = section.duration * factor
        if start + duration > execution_time:
            duration = execution_time - start
        sections.append(replace(section, start=start, duration=duration))
    return replace(
        stage,
        execution_time=execution_time,
        critical_sections=tuple(sections),
    )


def scale_execution_times(system: System, factor: float) -> System:
    """A copy of ``system`` with every execution time multiplied.

    Critical sections scale proportionally with their subtask, so a
    lock-aware system stays a valid model at every factor and the
    blocking-aware analyses see consistently scaled contention.
    """
    if factor <= 0:
        raise ConfigurationError(f"factor must be > 0, got {factor!r}")
    return system.with_tasks(
        task.with_subtasks(
            tuple(_scale_subtask(stage, factor) for stage in task.subtasks)
        )
        for task in system.tasks
    )


def _schedulable(system: System, analysis: str, sa_ds_max_iterations: int) -> bool:
    if system.max_utilization >= 1.0 - ABS_EPS:
        return False
    if system.has_critical_sections:
        # Sectioned systems are certified by the blocking-aware
        # variants (exactly the base analyses on section-free input),
        # so the breakdown factor prices the same verdict the
        # admission service actually uses.
        from repro.locks import analyze_sa_ds_blocking, analyze_sa_pm_blocking

        if analysis == "SA/DS":
            return analyze_sa_ds_blocking(
                system, max_iterations=sa_ds_max_iterations
            ).schedulable
        return analyze_sa_pm_blocking(system).schedulable
    if analysis == "SA/DS":
        return analyze_sa_ds(
            system, max_iterations=sa_ds_max_iterations
        ).schedulable
    return analyze_sa_pm(system).schedulable


def breakdown_scaling(
    system: System,
    analysis: str = "SA/PM",
    *,
    tolerance: float = 1e-3,
    max_factor: float = 16.0,
    sa_ds_max_iterations: int = 60,
) -> float:
    """The largest execution-time scaling keeping the system certifiable.

    Returns a factor in ``(0, max_factor]``; 0.0 when the system is
    unschedulable at *any* positive scale the search can resolve (i.e.
    below ``tolerance``).  ``analysis`` is ``"SA/PM"`` or ``"SA/DS"``.
    """
    if analysis not in ("SA/PM", "SA/DS"):
        raise ConfigurationError(
            f"analysis must be 'SA/PM' or 'SA/DS', got {analysis!r}"
        )
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be > 0, got {tolerance!r}")
    if max_factor <= 0:
        raise ConfigurationError(
            f"max_factor must be > 0, got {max_factor!r}"
        )

    def ok(factor: float) -> bool:
        return _schedulable(
            scale_execution_times(system, factor),
            analysis,
            sa_ds_max_iterations,
        )

    if ok(max_factor):
        return max_factor
    low, high = 0.0, max_factor
    # Seed the bracket with factor 1 to save probes in the common case.
    if ok(1.0):
        low = 1.0
    else:
        high = 1.0
    while high - low > tolerance:
        mid = (low + high) / 2
        if mid <= 0:
            break
        if ok(mid):
            low = mid
        else:
            high = mid
    return low
