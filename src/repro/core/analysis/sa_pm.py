"""Algorithm SA/PM -- schedulability analysis for PM, MPM and RG.

Section 4.1 of the paper: under the PM or MPM protocol every subtask is
strictly periodic, so Lehoczky's busy-period analysis bounds each
subtask's response time (Steps 1-4, Eqs. 1-5) and the EER bound of a task
is the sum of its subtask bounds (Step 5, Eq. 6).

Section 4.2 (Lemma 1 / Theorem 1) proves the *same* bounds are valid
under the Release Guard protocol: rule 2 never fires inside a busy
period, so subtasks are periodic within every busy period, and the sum of
subtask bounds dominates the release-guard delays along the chain.
Callers therefore use this one analysis for all three protocols.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.analysis.busy_period import SubtaskBusyPeriod, analyze_subtask
from repro.core.analysis.results import AnalysisResult
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.timebase import FLOAT, Timebase, get_timebase

__all__ = ["analyze_sa_pm", "sa_pm_subtask_details"]


def sa_pm_subtask_details(
    system: System,
    blocking: Mapping[SubtaskId, float] | None = None,
    *,
    jitter: Mapping[SubtaskId, float] | None = None,
    timebase: Timebase | str = FLOAT,
) -> dict[SubtaskId, SubtaskBusyPeriod]:
    """Steps 1-4 for every subtask: full busy-period records.

    ``jitter`` is *interference* jitter (suspension-as-jitter deferral
    of lock-holding subtasks -- see :mod:`repro.locks.analysis`): it
    widens the arrival windows of interfering subtasks but is never
    applied to the analyzed subtask's own releases, which stay strictly
    periodic under PM/MPM/RG.  An infinite blocking term short-circuits
    to a diverged record (the exact backend cannot represent infinite
    demand).
    """
    blocking = blocking or {}
    jitter = jitter or {}
    timebase = get_timebase(timebase)
    details: dict[SubtaskId, SubtaskBusyPeriod] = {}
    for sid in system.subtask_ids:
        own_blocking = blocking.get(sid, 0.0)
        if math.isinf(own_blocking):
            details[sid] = SubtaskBusyPeriod(
                sid=sid,
                busy_period=None,
                instance_count=0,
                per_instance_bounds=(),
                bound=None,
            )
            continue
        details[sid] = analyze_subtask(
            system,
            sid,
            {other: value for other, value in jitter.items() if other != sid},
            blocking=own_blocking,
            timebase=timebase,
        )
    return details


def analyze_sa_pm(
    system: System,
    *,
    blocking: Mapping[SubtaskId, float] | None = None,
    jitter: Mapping[SubtaskId, float] | None = None,
    timebase: Timebase | str = FLOAT,
) -> AnalysisResult:
    """Run Algorithm SA/PM over a system.

    Returns an :class:`AnalysisResult` whose ``subtask_bounds`` are the
    response-time bounds ``R_i,j`` and whose ``task_bounds`` are the EER
    bounds ``R_i = sum_j R_i,j``.  A subtask on a processor whose
    interference utilization reaches 1 gets an infinite bound (and so
    does its task); no exception is raised for unschedulable systems.

    ``blocking`` optionally charges a per-subtask blocking term ``B_i,j``
    into every demand equation (non-preemptive sections, dedicated
    communication resources -- the Section 6 extension); ``jitter``
    charges interference jitter per *interfering* subtask
    (suspension-as-jitter for lock-induced deferrals, see
    :func:`sa_pm_subtask_details`).  Under the exact ``timebase`` the
    bounds come out as scaled integers/rationals and the EER sums are
    exact.
    """
    timebase = get_timebase(timebase)
    details = sa_pm_subtask_details(
        system, blocking, jitter=jitter, timebase=timebase
    )
    subtask_bounds = {
        sid: (math.inf if record.bound is None else record.bound)
        for sid, record in details.items()
    }
    task_bounds = []
    for task_index, task in enumerate(system.tasks):
        total = timebase.zero
        for j in range(task.chain_length):
            total += subtask_bounds[SubtaskId(task_index, j)]
        task_bounds.append(total)
    return AnalysisResult(
        system=system,
        algorithm="SA/PM",
        subtask_bounds=subtask_bounds,
        task_bounds=tuple(task_bounds),
        iterations=1,
    )
