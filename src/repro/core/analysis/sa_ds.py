"""Algorithms IEERT and SA/DS -- schedulability analysis for DS.

Under Direct Synchronization the releases of later subtasks inherit the
response-time variability of their predecessors and can *clump*; plain
busy-period analysis does not apply.  Algorithm IEERT (Fig. 10 of the
paper) bounds the *intermediate end-to-end response* (IEER) time of every
subtask -- completion of ``T_i,j(m)`` minus the release of ``T_i,1(m)`` --
by treating each subtask's current IEER-bound-of-predecessor as release
jitter in the interference terms:

    D_i,j   = lfp { t = sum_{H ∪ self} ceil((t + R_u,v-1)/p_u) e_u,v }
    M_i,j   = ceil((D_i,j + R_i,j-1) / p_i)
    C_i,j(m)= lfp { t = m e_i,j + sum_H ceil((t + R_u,v-1)/p_u) e_u,v }
    R'_i,j(m) = C_i,j(m) + R_i,j-1 - (m-1) p_i
    R'_i,j  = max_m R'_i,j(m)

Algorithm SA/DS (Fig. 11) iterates IEERT from the optimistic seed
``R_i,j = sum_{k<=j} e_i,k`` until the bounds reach a fixed point
(Theorem 2: any positive fixed point is a correct bound) -- or until some
task's bound exceeds the paper's failure cutoff of 300 periods, in which
case the bound is reported "for all practical purposes infinite".
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.analysis.busy_period import analyze_subtask
from repro.core.analysis.results import FAILURE_FACTOR, AnalysisResult
from repro.errors import AnalysisError
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.timebase import FLOAT, REL_EPS, Timebase, get_timebase

__all__ = ["ieert_pass", "analyze_sa_ds", "initial_ieer_bounds"]

#: Convergence tolerance of the outer fixed point, relative to the bound
#: (float timebase only; the exact timebase converges on equality).
_CONVERGENCE_RTOL = REL_EPS


def initial_ieer_bounds(
    system: System, *, timebase: Timebase | str = FLOAT
) -> dict[SubtaskId, float]:
    """The SA/DS seed: cumulative execution times along each chain."""
    timebase = get_timebase(timebase)
    if timebase.exact:
        # Accumulate in exact arithmetic (the float cumulative sums would
        # seed the iteration with representation noise).
        bounds: dict[SubtaskId, float] = {}
        for task_index, task in enumerate(system.tasks):
            total = timebase.zero
            for j in range(task.chain_length):
                sid = SubtaskId(task_index, j)
                total += timebase.convert(
                    system.subtask(sid).execution_time
                )
                bounds[sid] = total
        return bounds
    return {
        sid: system.tasks[sid.task_index].cumulative_execution_time(
            sid.subtask_index
        )
        for sid in system.subtask_ids
    }


def _jitter_view(
    system: System, bounds: Mapping[SubtaskId, float]
) -> dict[SubtaskId, float]:
    """Release jitter per subtask: its predecessor's IEER bound, 0 for
    first subtasks (``R_u,0 = 0`` in the paper's notation)."""
    view: dict[SubtaskId, float] = {}
    for sid in system.subtask_ids:
        predecessor = sid.predecessor
        view[sid] = bounds[predecessor] if predecessor is not None else 0
    return view


def ieert_pass(
    system: System,
    bounds: Mapping[SubtaskId, float],
    *,
    failure_factor: float | None = FAILURE_FACTOR,
    timebase: Timebase | str = FLOAT,
    blocking: Mapping[SubtaskId, float] | None = None,
    extra_jitter: Mapping[SubtaskId, float] | None = None,
) -> dict[SubtaskId, float]:
    """One application of Algorithm IEERT: new bounds from old bounds.

    Infinite *input* bounds are propagated: any subtask whose predecessor
    or interference jitter is infinite gets an infinite output bound.
    With ``failure_factor`` set, the per-instance loop aborts early once
    an instance's bound exceeds ``failure_factor * p_i`` and reports the
    subtask bound as infinite (sound, since the true maximum is at least
    as large).  ``blocking`` optionally charges a per-subtask blocking
    term into every demand equation (remote-blocking under DPCP/DPCP-p
    locking -- see :mod:`repro.locks.analysis`); an infinite blocking
    term makes the subtask's bound infinite outright.  ``extra_jitter``
    adds suspension-as-jitter deferral on top of the IEERT jitter of
    *interfering* subtasks (lock holders defer their execution while
    away on a synchronization processor); it is never applied to the
    analyzed subtask's own jitter, whose blocking term already covers
    its waits.
    """
    timebase = get_timebase(timebase)
    jitter = _jitter_view(system, bounds)
    blocking = blocking or {}
    extra = extra_jitter or {}
    new_bounds: dict[SubtaskId, float] = {}
    for sid in system.subtask_ids:
        period = timebase.convert(system.period_of(sid))
        interferers = list(system.interference_set(sid))
        relevant = [jitter[sid]] + [
            jitter[other] + extra.get(other, 0) for other in interferers
        ]
        own_blocking = blocking.get(sid, 0)
        if any(math.isinf(j) for j in relevant) or math.isinf(own_blocking):
            new_bounds[sid] = math.inf
            continue
        cutoff = (
            timebase.convert(failure_factor) * period
            if failure_factor is not None
            else None
        )
        adjusted = dict(jitter)
        for other in interferers:
            if other in extra:
                adjusted[other] = jitter[other] + extra[other]
        record = analyze_subtask(
            system,
            sid,
            adjusted,
            abort_above=cutoff,
            blocking=own_blocking,
            timebase=timebase,
        )
        new_bounds[sid] = math.inf if record.bound is None else record.bound
    return new_bounds


def analyze_sa_ds(
    system: System,
    *,
    failure_factor: float = FAILURE_FACTOR,
    max_iterations: int = 300,
    timebase: Timebase | str = FLOAT,
    blocking: Mapping[SubtaskId, float] | None = None,
    extra_jitter: Mapping[SubtaskId, float] | None = None,
) -> AnalysisResult:
    """Run Algorithm SA/DS over a system.

    Returns an :class:`AnalysisResult` whose ``subtask_bounds`` are IEER
    bounds and whose ``task_bounds`` are the IEER bounds of last subtasks
    (= the EER bounds).  ``result.failed`` is True when some task's bound
    exceeded the failure cutoff (reported as infinity), reproducing the
    paper's failure statistic for Figure 12.  ``blocking`` and
    ``extra_jitter`` are handed to every IEERT pass (see
    :func:`ieert_pass`); both default to the resource-free base case.

    Raises
    ------
    AnalysisError
        Only if the iteration neither converges nor trips the cutoff
        within ``max_iterations`` passes -- the monotone iteration makes
        this practically unreachable; it guards against degenerate float
        behaviour.
    """
    if max_iterations < 1:
        raise AnalysisError(
            f"max_iterations must be >= 1, got {max_iterations!r}"
        )
    timebase = get_timebase(timebase)
    bounds = initial_ieer_bounds(system, timebase=timebase)
    cutoff_factor = timebase.convert(failure_factor)
    periods = {
        task_index: timebase.convert(task.period)
        for task_index, task in enumerate(system.tasks)
    }
    notes: list[str] = []
    iterations = 0
    failed = False
    while True:
        iterations += 1
        new_bounds = ieert_pass(
            system,
            bounds,
            failure_factor=failure_factor,
            timebase=timebase,
            blocking=blocking,
            extra_jitter=extra_jitter,
        )
        # The paper's failure cutoff, checked at task level: a task whose
        # EER bound exceeds failure_factor periods is declared unbounded.
        for task_index, task in enumerate(system.tasks):
            last = SubtaskId(task_index, task.chain_length - 1)
            if new_bounds[last] > cutoff_factor * periods[task_index]:
                new_bounds[last] = math.inf
        if any(math.isinf(value) for value in new_bounds.values()):
            failed = True
            bounds = new_bounds
            notes.append(
                f"failure cutoff ({failure_factor:g} periods) tripped after "
                f"{iterations} IEERT pass(es)"
            )
            break
        if timebase.exact:
            converged = new_bounds == bounds
        else:
            converged = all(
                abs(new_bounds[sid] - bounds[sid])
                <= _CONVERGENCE_RTOL * max(1.0, bounds[sid])
                for sid in system.subtask_ids
            )
        bounds = new_bounds
        if converged:
            break
        if iterations >= max_iterations:
            # The monotone iteration is still growing after many passes:
            # it is creeping toward the cutoff.  Declaring failure here
            # matches the paper's practical reading of such bounds as
            # infinite, at a tiny risk of misclassifying a very slowly
            # converging system.
            failed = True
            for sid in system.subtask_ids:
                if system.is_last(sid):
                    bounds = dict(bounds)
                    bounds[sid] = math.inf
            notes.append(
                f"no fixed point within {max_iterations} IEERT passes; "
                f"bounds still growing -- declared failure"
            )
            break
    task_bounds = []
    for task_index, task in enumerate(system.tasks):
        last = SubtaskId(task_index, task.chain_length - 1)
        value = bounds[last]
        # IEER bounds grow along a chain, so an infinite bound anywhere on
        # the chain means the task's EER bound is infinite -- even when the
        # iteration stopped before recomputing the last subtask.
        chain_diverged = any(
            math.isinf(bounds[SubtaskId(task_index, j)])
            for j in range(task.chain_length)
        )
        task_bounds.append(
            math.inf
            if (
                chain_diverged
                or value > cutoff_factor * periods[task_index]
            )
            else value
        )
    if failed:
        # Bounds of tasks that had not yet exceeded the cutoff when the
        # iteration stopped are not converged; in a failed result only the
        # infinities are meaningful.
        notes.append(
            "non-infinite bounds in a failed result are lower estimates "
            "(iteration stopped at the failure cutoff)"
        )
    return AnalysisResult(
        system=system,
        algorithm="SA/DS",
        subtask_bounds=bounds,
        task_bounds=tuple(task_bounds),
        iterations=iterations,
        notes=tuple(notes),
    )
