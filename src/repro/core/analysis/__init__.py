"""Schedulability analyses: SA/PM (valid for PM, MPM, RG) and SA/DS."""

from repro.core.analysis.busy_period import (
    SubtaskBusyPeriod,
    analyze_subtask,
    interference_terms,
)
from repro.core.analysis.fixpoint import ceil_tolerant, solve_fixed_point
from repro.core.analysis.local_deadline import analyze_local_deadline
from repro.core.analysis.overheads import (
    analyze_with_overhead,
    inflate_for_overhead,
)
from repro.core.analysis.results import FAILURE_FACTOR, AnalysisResult
from repro.core.analysis.sa_ds import (
    analyze_sa_ds,
    ieert_pass,
    initial_ieer_bounds,
)
from repro.core.analysis.sa_pm import analyze_sa_pm, sa_pm_subtask_details
from repro.core.analysis.sensitivity import (
    breakdown_scaling,
    scale_execution_times,
)

__all__ = [
    "FAILURE_FACTOR",
    "AnalysisResult",
    "SubtaskBusyPeriod",
    "analyze_local_deadline",
    "analyze_sa_ds",
    "analyze_sa_pm",
    "analyze_subtask",
    "analyze_with_overhead",
    "breakdown_scaling",
    "ceil_tolerant",
    "inflate_for_overhead",
    "scale_execution_times",
    "ieert_pass",
    "initial_ieer_bounds",
    "interference_terms",
    "sa_pm_subtask_details",
    "solve_fixed_point",
]
