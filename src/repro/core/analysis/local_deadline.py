"""The prior-art baseline: local-deadline ("loose synchronization")
analysis.

Before end-to-end analyses like the paper's, distributed deadlines were
handled by *slicing*: give every subtask a local deadline (here the
paper's proportional deadlines ``PD_i,j``), verify each subtask meets
its local deadline assuming strictly periodic releases, and declare the
task schedulable when every slice holds -- the approach the conclusion
attributes to prior work such as Chatterjee & Strosnider [21].

The verdict is only *sound* under a protocol that actually keeps
subtask releases periodic (PM/MPM, or RG inside busy periods); its
interest here is as a baseline showing what the paper's Algorithm SA/PM
buys: SA/PM sums *actual* response-time bounds instead of fixed
deadline slices, so it certifies systems the slicing method rejects
(a stage may overrun its slice while the chain still meets the
end-to-end deadline).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.analysis.results import AnalysisResult
from repro.core.analysis.sa_pm import sa_pm_subtask_details
from repro.model.priority import proportional_deadline
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.timebase import REL_EPS

__all__ = ["analyze_local_deadline"]


def analyze_local_deadline(
    system: System,
    strategy: Callable[[System, SubtaskId], float] = proportional_deadline,
) -> AnalysisResult:
    """Slice end-to-end deadlines and check each slice.

    ``strategy`` picks the local deadlines (default: the paper's
    proportional deadlines; see :mod:`repro.model.deadlines` for the
    Kao & Garcia-Molina alternatives).  Per subtask the "bound" reported
    is its local deadline when the busy-period response bound fits
    inside the slice, and infinity otherwise; a task's bound is its
    end-to-end deadline when every slice holds, infinity otherwise.
    Comparing ``schedulable`` against
    :func:`repro.core.analysis.analyze_sa_pm`'s shows the precision the
    paper's method gains.

    Note that only slice assignments whose per-task slices sum to at
    most the end-to-end deadline give a sound end-to-end verdict (PD,
    EQS and EQF do; UD and ED intentionally over-allocate and serve as
    per-stage checks, not end-to-end ones).
    """
    details = sa_pm_subtask_details(system)
    subtask_bounds: dict[SubtaskId, float] = {}
    task_bounds: list[float] = []
    for task_index, task in enumerate(system.tasks):
        all_hold = True
        for j in range(task.chain_length):
            sid = SubtaskId(task_index, j)
            slice_deadline = strategy(system, sid)
            response = details[sid].bound
            holds = (
                response is not None
                and response
                <= slice_deadline + REL_EPS * max(1.0, slice_deadline)
            )
            subtask_bounds[sid] = slice_deadline if holds else math.inf
            all_hold = all_hold and holds
        task_bounds.append(
            task.relative_deadline if all_hold else math.inf
        )
    return AnalysisResult(
        system=system,
        algorithm="local-deadline",
        subtask_bounds=subtask_bounds,
        task_bounds=tuple(task_bounds),
        iterations=1,
        notes=(
            "baseline slicing analysis; sound only for protocols that "
            "keep subtask releases periodic (PM/MPM/RG)",
        ),
    )
