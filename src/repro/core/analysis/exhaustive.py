"""Exhaustive worst-case search over task phases.

Section 2 of the paper: "The actual worst-case EER times of tasks can be
found only via exhaustive search, which is too time consuming to be
practical even for small systems."  For *small* systems it is, however,
affordable -- and valuable: comparing the searched worst case against
the analysis bounds quantifies exactly the pessimism that makes the RG
protocol attractive (its average EER stays near DS's even though its
*estimated* worst case matches PM's).

The search simulates the system under every combination of task phases
drawn from a per-task grid of ``steps`` offsets in ``[0, p_i)`` and
records the largest observed EER time per task.  Phases are the only
free timing parameter in the paper's model (executions are at WCET and
first releases strictly periodic), so with enough steps and horizon the
search converges on the true worst case; any result is at minimum a
certified *lower* bound on it, which already suffices to expose
analysis pessimism (bound / searched-worst >= 1 measures it).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.api import run_protocol
from repro.errors import ConfigurationError
from repro.model.system import System
from repro.model.task import SubtaskId

__all__ = ["WorstCaseSearch", "search_worst_case_eer"]


@dataclass(frozen=True)
class WorstCaseSearch:
    """Result of one exhaustive phase search."""

    protocol: str
    worst_eer: tuple[float, ...]
    witness_phases: tuple[tuple[float, ...], ...]
    combinations: int

    def pessimism(self, bounds: Sequence[float]) -> list[float]:
        """Per-task ratio of an analysis bound to the searched worst case.

        1.0 means the bound is tight (at least at the searched
        granularity); larger values measure analysis pessimism.  NaN for
        tasks with an infinite bound or no observed completion.
        """
        ratios = []
        for bound, observed in zip(bounds, self.worst_eer):
            if math.isfinite(bound) and observed > 0:
                ratios.append(bound / observed)
            else:
                ratios.append(float("nan"))
        return ratios


def search_worst_case_eer(
    system: System,
    protocol: str,
    *,
    steps: int = 4,
    horizon_periods: float = 10.0,
    max_combinations: int = 4096,
    bounds: Mapping[SubtaskId, float] | None = None,
) -> WorstCaseSearch:
    """Search the worst EER time of every task over a phase grid.

    Parameters
    ----------
    steps:
        Grid resolution per task: phases ``k * p_i / steps`` for
        ``k in 0..steps-1``.  The total number of simulations is
        ``steps ** len(tasks)``; :class:`ConfigurationError` is raised
        when it would exceed ``max_combinations``.
    bounds:
        Forwarded to the PM/MPM controllers (see
        :func:`repro.api.run_protocol`).
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    combinations = steps ** len(system.tasks)
    if combinations > max_combinations:
        raise ConfigurationError(
            f"{steps}^{len(system.tasks)} = {combinations} phase "
            f"combinations exceed max_combinations={max_combinations}; "
            f"reduce steps or raise the cap"
        )
    worst = [0.0] * len(system.tasks)
    witness: list[tuple[float, ...]] = [()] * len(system.tasks)
    grids = [
        [k * task.period / steps for k in range(steps)]
        for task in system.tasks
    ]
    for phases in itertools.product(*grids):
        candidate = system.with_phases(list(phases))
        result = run_protocol(
            candidate,
            protocol,
            bounds=bounds,
            horizon_periods=horizon_periods,
        )
        for task_index in range(len(system.tasks)):
            observed = result.metrics.task(task_index).max_eer
            if not math.isnan(observed) and observed > worst[task_index]:
                worst[task_index] = observed
                witness[task_index] = tuple(phases)
    return WorstCaseSearch(
        protocol=protocol.upper(),
        worst_eer=tuple(worst),
        witness_phases=tuple(witness),
        combinations=combinations,
    )
