"""Skew-aware SA/PM: schedulability bounds under imperfect local clocks.

Algorithm SA/PM (Section 4.1/4.2) assumes every protocol timer measures
time perfectly.  With the clock models of :mod:`repro.clocks` the timers
of MPM and the guards of RG run on *local* clocks inside a drift
envelope ``|rate| <= rho`` with step discontinuities up to ``jump``
(resynchronization).  A pure offset cancels for both protocols (they
only measure durations), so the residual error is:

* an MPM relay timer armed for local duration ``R_i,k`` fires within
  ``[R / (1 + rho), R / (1 - rho) + jump]`` of true time -- a one-sided
  stretch of at most ``delta_i,k = R_i,k * rho / (1 - rho) + jump``;
* an RG rule-1 guard of period ``p_i`` spans a true duration at least
  ``p_i / (1 + rho) - jump`` -- consecutive releases may compress below
  the period by ``delta_g_i,j = p_i * rho / (1 - rho) + jump``
  (conservatively using the same first-order envelope).

This module folds both effects into the jitter-generalized busy-period
core (:mod:`repro.core.analysis.busy_period`), which is exactly the
machinery Algorithm SA/DS uses for its release wander:

1. run plain SA/PM to get the unskewed per-subtask bounds ``R0``;
2. give every subtask ``T_i,j`` the release jitter
   ``J_i,j = sum_{k<j} 2 * delta_i,k + delta_g_i,j`` (timer stretch can
   move each chained release both ways; the guard term covers RG's
   period compression);
3. re-run the busy-period analysis with that jitter map, yielding
   ``R1``;
4. report the skew-inflated subtask bounds ``R1_i,j + delta_i,j`` and
   task bounds ``R_i = sum_j (R1_i,j + delta_i,j)``.

With ``rho = jump = 0`` every correction vanishes and the result equals
plain SA/PM bit for bit.  The inflation is a conservative first-order
envelope -- our extension in the spirit of the parametric-sensitivity
literature (PAPERS.md), not a theorem of the paper -- and it is
validated empirically by the fuzz oracle ``sa-pm-skew-soundness``
(MPM/RG simulated under bounded-skew clocks stay within these bounds).

**PM is deliberately out of scope**: its phase table lives in absolute
local time, so a clock *offset* shifts its releases against the
environment's true-time arrivals -- no duration-based inflation can
repair that, which is the paper's Section 3 argument against PM on
unsynchronized platforms (and what the ``clock-study`` experiment
demonstrates).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Mapping

from repro.clocks.config import ClockConfig
from repro.clocks.models import ClockMap
from repro.core.analysis.busy_period import analyze_subtask
from repro.core.analysis.results import AnalysisResult
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.errors import ConfigurationError
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.timebase import FLOAT, Timebase, get_timebase

__all__ = ["analyze_sa_pm_skewed", "skew_terms"]


def _stretch_factor(rate, timebase: Timebase):
    """``rate / (1 - rate)`` without falling back to float when exact."""
    denominator = 1 - rate
    if timebase.exact:
        denominator = Fraction(denominator)
    return rate / denominator


def skew_terms(
    system: System,
    *,
    rate: float,
    jump: float,
    timebase: Timebase | str = FLOAT,
) -> tuple[dict[SubtaskId, float], dict[SubtaskId, float]]:
    """The per-subtask timer-stretch and release-jitter terms.

    Returns ``(delta, jitter)``: ``delta[sid]`` is the one-sided stretch
    of the stage timer armed for ``R0[sid]`` plus the guard-compression
    term of the subtask's own period; ``jitter[sid]`` is the accumulated
    release wobble used as ``J_i,j`` in the busy-period core.  Both are
    identically zero when ``rate == jump == 0``.
    """
    tb = get_timebase(timebase)
    if not (0 <= rate) or not (0 <= jump) or not math.isfinite(jump):
        raise ConfigurationError(
            f"skew analysis needs rate >= 0 and finite jump >= 0, "
            f"got rate={rate!r} jump={jump!r}"
        )
    base = analyze_sa_pm(system, timebase=tb)
    delta: dict[SubtaskId, float] = {}
    jitter: dict[SubtaskId, float] = {}
    if rate >= 1:
        # The drift envelope no longer bounds durations from above.
        for sid in system.subtask_ids:
            delta[sid] = math.inf
            jitter[sid] = math.inf
        return delta, jitter
    rate_c = tb.convert(rate)
    jump_c = tb.convert(jump)
    stretch = _stretch_factor(rate_c, tb)
    skewed = rate != 0 or jump != 0
    for task_index, task in enumerate(system.tasks):
        accumulated = tb.zero
        for j in range(task.chain_length):
            sid = SubtaskId(task_index, j)
            bound = base.subtask_bounds[sid]
            if math.isinf(bound):
                delta[sid] = math.inf
            elif skewed:
                delta[sid] = stretch * bound + jump_c
            else:
                delta[sid] = tb.zero
            if j == 0 or not skewed:
                # First subtasks are environment-released in true time.
                jitter[sid] = tb.zero
            else:
                period = tb.convert(system.period_of(sid))
                guard_term = stretch * period + jump_c
                jitter[sid] = (
                    accumulated + guard_term
                    if not math.isinf(accumulated)
                    else math.inf
                )
            if math.isinf(delta[sid]) or math.isinf(accumulated):
                accumulated = math.inf
            else:
                accumulated = accumulated + 2 * delta[sid]
    return delta, jitter


def analyze_sa_pm_skewed(
    system: System,
    *,
    rate: float = 0.0,
    jump: float = 0.0,
    clocks: ClockMap | ClockConfig | None = None,
    blocking: Mapping[SubtaskId, float] | None = None,
    timebase: Timebase | str = FLOAT,
) -> AnalysisResult:
    """Algorithm SA/PM inflated by a clock-skew envelope.

    ``rate`` (the drift envelope rho) and ``jump`` (the largest resync
    step) may be given directly, or derived from a
    :class:`~repro.clocks.ClockMap` / :class:`~repro.clocks.ClockConfig`
    via ``clocks`` (explicit numbers win when both are present and
    larger).  The returned bounds are valid for MPM and RG under any
    clock assignment inside the envelope; see the module docstring for
    why PM is excluded.  With ``rate = jump = 0`` the result equals
    :func:`~repro.core.analysis.sa_pm.analyze_sa_pm` exactly.
    """
    tb = get_timebase(timebase)
    if clocks is not None:
        if isinstance(clocks, ClockConfig):
            rate = max(rate, clocks.rate_bound())
            jump = max(jump, clocks.jump_bound())
        else:
            rate = max(rate, clocks.max_rate())
            jump = max(jump, clocks.max_jump())
    delta, jitter = skew_terms(system, rate=rate, jump=jump, timebase=tb)
    blocking = blocking or {}
    subtask_bounds: dict[SubtaskId, float] = {}
    for sid in system.subtask_ids:
        if math.isinf(delta[sid]) or math.isinf(jitter[sid]):
            subtask_bounds[sid] = math.inf
            continue
        if any(math.isinf(jitter[other]) for other in system.subtask_ids):
            # An unbounded wobble anywhere poisons every demand equation.
            subtask_bounds[sid] = math.inf
            continue
        record = analyze_subtask(
            system,
            sid,
            jitter,
            blocking=blocking.get(sid, 0.0),
            timebase=tb,
        )
        if record.bound is None:
            subtask_bounds[sid] = math.inf
        else:
            subtask_bounds[sid] = record.bound + delta[sid]
    task_bounds = []
    for task_index, task in enumerate(system.tasks):
        total = tb.zero
        for j in range(task.chain_length):
            total += subtask_bounds[SubtaskId(task_index, j)]
        task_bounds.append(total)
    return AnalysisResult(
        system=system,
        algorithm="SA/PM-skew",
        subtask_bounds=subtask_bounds,
        task_bounds=tuple(task_bounds),
        iterations=2,
    )
