"""Busy-period analysis: the computational core of SA/PM and SA/DS.

This implements the five-step scheme of Section 4 in a form general
enough to serve both algorithms.  For one subtask ``T_i,j`` with
interference set ``H_i,j`` (same processor, priority higher or equal),
given a *release-jitter* value ``J_u,v`` for every subtask:

1. busy-period length
   ``D_i,j = lfp { t = sum_{H ∪ {self}} ceil((t + J_u,v)/p_u) e_u,v }``
2. instance count ``M_i,j = ceil((D_i,j + J_i,j)/p_i)``
3. per-instance completion
   ``C_i,j(m) = lfp { t = m e_i,j + sum_H ceil((t + J_u,v)/p_u) e_u,v }``
4. per-instance bound ``R_i,j(m) = C_i,j(m) + J_i,j - (m-1) p_i``
5. subtask bound ``R_i,j = max_m R_i,j(m)``

With ``J == 0`` this is exactly Algorithm SA/PM's steps 1-4 (Lehoczky's
analysis for strictly periodic subtasks, Eqs. 1-5); with
``J_u,v = R_u,v-1`` (the predecessor's IEER bound) it is the body of
Algorithm IEERT, where the clumping of DS releases is modelled as release
jitter and the result is an IEER bound rather than a response-time bound.

Divergence handling: when the interference utilization is >= 1 the busy
period has no finite bound and the subtask's bound is reported as
``None`` (infinite).  Otherwise every least fixed point is finite and the
iteration is run with an analytic cap as a safety net.  ``abort_above``
lets SA/DS cut the ``m`` loop as soon as some instance provably exceeds
the paper's 300-period failure cutoff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.core.analysis.fixpoint import solve_fixed_point
from repro.errors import AnalysisError
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.timebase import ABS_EPS, FLOAT, Timebase

__all__ = ["SubtaskBusyPeriod", "analyze_subtask", "interference_terms"]

#: Interference term: (execution time, period, subtask id).
Term = tuple[float, float, SubtaskId]


@dataclass(frozen=True)
class SubtaskBusyPeriod:
    """Full per-subtask analysis record (Steps 1-5 for one subtask).

    ``bound`` is ``None`` when the analysis diverged (utilization >= 1) or
    was aborted via ``abort_above`` -- in both cases the caller treats the
    bound as infinite.
    """

    sid: SubtaskId
    busy_period: float | None
    instance_count: int
    per_instance_bounds: tuple[float, ...]
    bound: float | None
    aborted: bool = False

    @property
    def critical_instance(self) -> int | None:
        """1-based index of the instance attaining the bound, if finite."""
        if self.bound is None or not self.per_instance_bounds:
            return None
        worst = max(self.per_instance_bounds)
        return self.per_instance_bounds.index(worst) + 1


def interference_terms(system: System, sid: SubtaskId) -> list[Term]:
    """The ``H_i,j`` terms (e, p, id) interfering with ``sid``."""
    return [
        (
            system.subtask(other).execution_time,
            system.period_of(other),
            other,
        )
        for other in system.interference_set(sid)
    ]


def _demand(
    terms: Sequence[Term],
    jitter: Mapping[SubtaskId, float],
    base: float,
    timebase: Timebase,
) -> "callable":
    """Build ``W(t) = base + sum ceil((t + J)/p) e`` over ``terms``."""

    packed = [(e, p, jitter.get(other, 0)) for (e, p, other) in terms]

    if timebase.exact:
        # Floor division works on ints and Fractions alike and skips the
        # normalized-Fraction construction a true division would pay for;
        # ``-(-a // b)`` is exact ceiling division for positive periods.
        def demand(t: float) -> float:
            total = base
            for e, p, j in packed:
                total += -(-(t + j) // p) * e
            return total

        return demand

    ceil = timebase.ceil

    def demand(t: float) -> float:
        total = base
        for e, p, j in packed:
            total += ceil((t + j) / p) * e
        return total

    return demand


def _rescale_inputs(
    period, blocking, jitter, terms, own_term, abort_above
):
    """Scale every (rational) input by the LCM of the denominators.

    Converted floats are dyadic rationals (``n / 2**k``), so the LCM is
    just the largest denominator and every scaled value is an exact
    machine integer.  Returns ``None`` when a non-rational value (an
    infinity sentinel) is present, in which case the caller keeps the
    generic Fraction arithmetic.
    """
    values = [period, blocking, own_term[0]]
    values.extend(v for (e, p, _sid) in terms for v in (e, p))
    values.extend(jitter.values())
    if abort_above is not None:
        values.append(abort_above)
    if not all(isinstance(v, (int, Fraction)) for v in values):
        return None
    scale = 1
    for value in values:
        if isinstance(value, Fraction):
            d = value.denominator
            scale = scale * d // math.gcd(scale, d)

    def up(value):
        if isinstance(value, Fraction):
            return value.numerator * (scale // value.denominator)
        return value * scale

    period_s = up(period)
    return (
        period_s,
        up(blocking),
        {other: up(v) for other, v in jitter.items()},
        [(up(e), up(p), other) for (e, p, other) in terms],
        (up(own_term[0]), period_s, own_term[2]),
        up(abort_above) if abort_above is not None else None,
        scale,
    )


def analyze_subtask(
    system: System,
    sid: SubtaskId,
    jitter: Mapping[SubtaskId, float] | None = None,
    *,
    abort_above: float | None = None,
    blocking: float = 0.0,
    timebase: Timebase = FLOAT,
) -> SubtaskBusyPeriod:
    """Run Steps 1-5 for one subtask under the given jitter assignment.

    Parameters
    ----------
    jitter:
        Release jitter ``J_u,v`` per subtask; missing entries are 0.
        ``None`` means the SA/PM case (all zero).
    abort_above:
        When given, the per-instance loop stops as soon as some
        ``R_i,j(m)`` exceeds this value, reporting the bound as infinite
        (``None`` with ``aborted=True``).  SA/DS uses the paper's
        300-period failure cutoff here to keep diverging analyses cheap.
    blocking:
        A constant blocking term ``B_i,j`` added to every demand
        equation -- the standard way to account for non-preemptive
        sections or dedicated communication resources (the paper's
        Section 2 suggests modelling dedicated links "as blocking times
        of the sending subtasks", and Section 6 lists resource
        contention as the open extension).  Under priority-ceiling-style
        resource protocols one lower-priority critical section can block
        each busy period.
    timebase:
        Arithmetic backend: the default float backend reproduces the
        historical tolerant iteration; the exact backend converts every
        parameter to scaled-integer/rational form and solves the fixed
        points with exact ceilings and ``==`` convergence.
    """
    jitter = jitter or {}
    subtask = system.subtask(sid)
    period = timebase.convert(system.period_of(sid))
    own_jitter_raw = jitter.get(sid, 0)
    if own_jitter_raw < 0:
        raise AnalysisError(f"negative jitter for {sid}: {own_jitter_raw!r}")
    if blocking < 0:
        raise AnalysisError(f"negative blocking for {sid}: {blocking!r}")
    blocking = timebase.convert(blocking)
    jitter = {
        other: timebase.convert(value) for other, value in jitter.items()
    }
    own_jitter = jitter.get(sid, 0)
    terms = [
        (timebase.convert(e), timebase.convert(p), other)
        for (e, p, other) in interference_terms(system, sid)
    ]
    own_term: Term = (timebase.convert(subtask.execution_time), period, sid)
    if abort_above is not None:
        abort_above = timebase.convert(abort_above)

    # Exact fast path: rescale the whole analysis by the LCM of every
    # denominator in play, so the fixpoint iterations below run on plain
    # machine integers (ceiling division, int compares) instead of
    # normalized Fractions paying a gcd per operation.  Results are
    # descaled on the way out; the arithmetic is identical.
    descale = None
    if timebase.exact:
        scaled = _rescale_inputs(
            period, blocking, jitter, terms, own_term, abort_above
        )
        if scaled is not None:
            period, blocking, jitter, terms, own_term, abort_above, scale = (
                scaled
            )
            own_jitter = jitter.get(sid, 0)
            if scale > 1:
                descale = lambda v: timebase.convert(Fraction(v, scale))

    # Ratios (utilizations, caps) must stay exact under the exact
    # backend even when the operands are (scaled) ints.
    ratio = Fraction if timebase.exact else (lambda a, b: a / b)

    # Divergence pre-check: the long-run demand rate of H ∪ {self}.
    level_utilization = sum(
        ratio(e, p) for (e, p, _sid) in terms + [own_term]
    )
    diverged = (
        level_utilization >= 1
        if timebase.exact
        else level_utilization >= 1.0 - ABS_EPS
    )
    if diverged:
        return SubtaskBusyPeriod(
            sid=sid,
            busy_period=None,
            instance_count=0,
            per_instance_bounds=(),
            bound=None,
        )

    # Analytic caps: a demand W(t) = base + sum ceil((t + J)/p) e obeys
    # W(t) <= base + U' t + sum (J/p + 1) e with U' the terms' utilization,
    # so its least fixed point is at most (base + sum (J/p + 1) e)/(1 - U').
    # Doubling gives a safety net that a correct iteration can never hit.
    slack = 1 - level_utilization
    jitter_load_all = sum(
        (ratio(jitter.get(other, 0), p) + 1) * e
        for (e, p, other) in terms + [own_term]
    )
    cap_busy = 2 * ratio(jitter_load_all + blocking, slack) + period

    interference_utilization = sum(ratio(e, p) for (e, p, _sid) in terms)
    interference_slack = 1 - interference_utilization
    jitter_load_interference = sum(
        (ratio(jitter.get(other, 0), p) + 1) * e for (e, p, other) in terms
    )

    # Step 1: busy-period length D_i,j (self term included).
    all_demand = _demand(terms + [own_term], jitter, blocking, timebase)
    start = sum(e for (e, _p, _sid) in terms + [own_term]) + blocking
    busy_period = solve_fixed_point(
        all_demand, start, cap_busy, timebase=timebase
    )
    if busy_period is None:  # pragma: no cover - cap is analytic, see above
        return SubtaskBusyPeriod(
            sid=sid,
            busy_period=None,
            instance_count=0,
            per_instance_bounds=(),
            bound=None,
        )

    # Step 2: number of instances in the busy period.
    if timebase.exact:
        instance_count = max(1, -(-(busy_period + own_jitter) // period))
    else:
        instance_count = max(
            1, timebase.ceil((busy_period + own_jitter) / period)
        )

    # Steps 3-5: completion bound per instance, response/IEER bound, max.
    out = descale if descale is not None else (lambda v: v)
    execution_time = own_term[0]
    interference = _demand(terms, jitter, timebase.zero, timebase)
    per_instance: list[float] = []
    previous_completion = timebase.zero
    for m in range(1, instance_count + 1):
        base = m * execution_time + blocking

        def completion_demand(t: float, _base: float = base) -> float:
            return _base + interference(t)

        cap_completion = (
            2 * ratio(base + jitter_load_interference, interference_slack)
            + period
        )
        warm_start = max(base, previous_completion + execution_time)
        completion = solve_fixed_point(
            completion_demand, warm_start, cap_completion, timebase=timebase
        )
        if completion is None:  # pragma: no cover - analytic cap
            return SubtaskBusyPeriod(
                sid=sid,
                busy_period=out(busy_period),
                instance_count=instance_count,
                per_instance_bounds=tuple(out(v) for v in per_instance),
                bound=None,
            )
        previous_completion = completion
        instance_bound = completion + own_jitter - (m - 1) * period
        per_instance.append(instance_bound)
        if abort_above is not None and instance_bound > abort_above:
            return SubtaskBusyPeriod(
                sid=sid,
                busy_period=out(busy_period),
                instance_count=instance_count,
                per_instance_bounds=tuple(out(v) for v in per_instance),
                bound=None,
                aborted=True,
            )

    return SubtaskBusyPeriod(
        sid=sid,
        busy_period=out(busy_period),
        instance_count=instance_count,
        per_instance_bounds=tuple(out(v) for v in per_instance),
        bound=out(max(per_instance)),
    )
