"""Fixed-point iteration utilities shared by all analyses.

Every bound in the paper is the least positive solution of an equation of
the form ``t = W(t)`` where ``W`` is a non-decreasing, piecewise-constant
*demand* function built from ceiling terms (Eqs. 1 and 3, and their
jittered variants in Algorithm IEERT).  The classic iteration

    t_0 = W(0+),  t_{k+1} = W(t_k)

converges to the least fixed point from below whenever one exists; when
the demand's long-run rate is >= 1 it diverges, which the caller detects
with a cap.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import AnalysisError
from repro.timebase import FLOAT, REL_EPS, Timebase, fmt

__all__ = ["ceil_tolerant", "solve_fixed_point", "DEFAULT_MAX_ITERATIONS"]

#: Relative tolerance swallowing float noise in ceiling arguments, so that
#: e.g. ``ceil(5.000000000001)`` counts as 5, not 6.  Demands are built
#: from sums/products of workload parameters, where errors are ~1e-15
#: relative; the shared guard is far above the noise and far below model
#: granularity.  The exact timebase needs no slack: its ceilings are
#: plain ``math.ceil`` over rationals.
_CEIL_SLACK = REL_EPS

#: Iteration budget; demand fixed points of realistic systems converge in
#: well under a thousand steps, so hitting this indicates a degenerate
#: input (e.g. utilization exactly 1 with incommensurate periods).
DEFAULT_MAX_ITERATIONS = 100_000


def ceil_tolerant(value: float) -> int:
    """Ceiling with a small backward tolerance for float noise."""
    return math.ceil(value - _CEIL_SLACK)


def solve_fixed_point(
    demand: Callable[[float], float],
    start: float,
    cap: float,
    *,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    timebase: Timebase = FLOAT,
) -> float | None:
    """Least fixed point of ``demand`` at or above ``start``.

    Returns ``None`` when the iterate exceeds ``cap`` (the caller treats
    this as "effectively infinite" -- the paper's failure condition).

    Under the float timebase, convergence means the iterate grew by less
    than the shared relative guard; under the exact timebase it means
    ``W(t) == t`` -- the demand is piecewise constant over rationals, so
    the iteration lands on the least fixed point exactly.

    Raises
    ------
    AnalysisError
        If the iteration neither converges nor passes the cap within
        ``max_iterations`` steps -- possible only for pathological demand
        functions (non-monotone, or creeping by denormal increments).
    """
    if start <= 0:
        raise AnalysisError(f"fixed-point start must be > 0, got {start!r}")
    current = start
    for _ in range(max_iterations):
        if current > cap:
            return None
        nxt = demand(current)
        if timebase.exact:
            if nxt < current:
                raise AnalysisError(
                    "demand function is not monotone: "
                    f"W({fmt(current)}) = {fmt(nxt)} < {fmt(current)}"
                )
            if nxt == current:
                return nxt
        else:
            if nxt < current - REL_EPS * max(1.0, abs(current)):
                raise AnalysisError(
                    "demand function is not monotone: "
                    f"W({current:g}) = {nxt:g} < {current:g}"
                )
            if nxt - current <= REL_EPS * max(1.0, abs(current)):
                return nxt
        current = nxt
    raise AnalysisError(
        f"fixed-point iteration did not settle within {max_iterations} "
        f"steps (last iterate {fmt(current)}, cap {fmt(cap)})"
    )
