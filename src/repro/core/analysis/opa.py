"""Audsley's Optimal Priority Assignment (OPA) for subtasks.

The paper assumes subtask priorities "have been assigned according to
some priority assignment algorithm" and cites Audsley's optimal
assignment [6] among the candidates; its evaluation uses the simpler
Proportional-Deadline-Monotonic heuristic.  This module implements the
real thing for the paper's model: per processor, assign priority levels
from lowest to highest, at each level picking any subtask whose
busy-period response bound fits its local deadline when every
still-unassigned subtask is presumed higher-priority.

Audsley's argument applies because the busy-period bound of a subtask
depends only on the *set* of higher-or-equal-priority subtasks on its
processor, not on their relative order: if any total order is feasible,
the greedy level-by-level search finds one.  The local deadlines default
to the paper's proportional deadlines, so the schedulability notion
matches the slicing view (:mod:`repro.core.analysis.local_deadline`).

Note on power: for any *fixed* map of local deadlines (each at most its
task's period), deadline-monotonic ordering is already optimal on a
single processor (Leung & Whitehead), so with the default deadlines OPA
accepts exactly the systems PD-monotonic slicing accepts -- a fact the
test suite pins.  Its value here is (a) as an independently derived
check of that optimality, and (b) for custom ``local_deadline``
functions produced by deadline-assignment algorithms, where a caller
may want feasibility w.r.t. deadlines that are not the sorting key.
"""

from __future__ import annotations

from typing import Callable

from repro.core.analysis.busy_period import analyze_subtask
from repro.model.priority import proportional_deadline
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.timebase import REL_EPS

__all__ = ["audsley_assignment"]

#: Maps (system, subtask) to the subtask's local deadline.
LocalDeadline = Callable[[System, SubtaskId], float]


def _fits(
    system: System,
    sid: SubtaskId,
    higher: set[SubtaskId],
    deadline: float,
) -> bool:
    """Does ``sid`` meet ``deadline`` with exactly ``higher`` above it?"""
    probe_priorities: dict[SubtaskId, int] = {}
    for other in system.subtask_ids:
        if other == sid:
            probe_priorities[other] = 1
        elif other in higher:
            probe_priorities[other] = 0
        else:
            probe_priorities[other] = 2
    probe = system.with_priorities(probe_priorities)
    record = analyze_subtask(probe, sid)
    return record.bound is not None and record.bound <= deadline + (
        REL_EPS * max(1.0, deadline)
    )


def audsley_assignment(
    system: System,
    local_deadline: LocalDeadline = proportional_deadline,
) -> System | None:
    """Find a feasible per-processor priority assignment, or None.

    Returns a copy of ``system`` with dense per-processor priorities
    (0 = highest) under which every subtask's busy-period response bound
    fits its local deadline -- or ``None`` when no fixed-priority order
    achieves that (in which case no order does, by OPA's optimality).
    """
    assignment: dict[SubtaskId, int] = {}
    for processor in system.processors:
        local = list(system.subtasks_on(processor))
        unassigned = set(local)
        # Assign from the lowest level upward.
        for level in range(len(local) - 1, -1, -1):
            placed = None
            for candidate in sorted(unassigned):
                higher = unassigned - {candidate}
                deadline = local_deadline(system, candidate)
                if _fits(system, candidate, higher, deadline):
                    placed = candidate
                    break
            if placed is None:
                return None
            assignment[placed] = level
            unassigned.remove(placed)
    return system.with_priorities(assignment)
