"""Overhead-aware analysis -- the Section 3.3 accounting, implemented.

The paper notes that the interrupt and context-switch costs of each
protocol "can be easily taken into account in the schedulability
analysis"; the standard way is to inflate every subtask's execution
time by the per-instance overhead before running the analysis.  This
module does exactly that, so the cost model of
:mod:`repro.core.protocols.costs` becomes quantitative: with the same
platform costs, DS and PM charge one interrupt per instance, MPM and RG
two, and everyone pays two context switches.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.analysis.results import AnalysisResult
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.protocols.costs import overhead_per_instance
from repro.errors import ConfigurationError
from repro.timebase import ABS_EPS
from repro.model.system import System

__all__ = ["inflate_for_overhead", "analyze_with_overhead"]


def inflate_for_overhead(
    system: System,
    protocol: str,
    *,
    interrupt_cost: float,
    context_switch_cost: float,
) -> System:
    """A copy of ``system`` with every execution time inflated by the
    protocol's per-instance overhead.

    Raises :class:`ConfigurationError` when the inflation pushes any
    processor's utilization above 1 -- the platform cannot even pay for
    the protocol's bookkeeping.
    """
    overhead = overhead_per_instance(
        protocol,
        interrupt_cost=interrupt_cost,
        context_switch_cost=context_switch_cost,
    )
    inflated = system.with_tasks(
        task.with_subtasks(
            tuple(
                replace(stage, execution_time=stage.execution_time + overhead)
                for stage in task.subtasks
            )
        )
        for task in system.tasks
    )
    for processor, utilization in inflated.utilizations().items():
        if utilization > 1.0 + ABS_EPS:
            raise ConfigurationError(
                f"overhead of protocol {protocol!r} overloads processor "
                f"{processor!r}: utilization {utilization:.4f} > 1"
            )
    return inflated


def analyze_with_overhead(
    system: System,
    protocol: str,
    *,
    interrupt_cost: float,
    context_switch_cost: float,
    **analysis_kwargs,
) -> AnalysisResult:
    """Run the protocol's analysis on the overhead-inflated system.

    DS uses Algorithm SA/DS; PM, MPM and RG use Algorithm SA/PM -- each
    on a copy of the system whose execution times include the protocol's
    per-instance interrupt and context-switch costs.
    """
    inflated = inflate_for_overhead(
        system,
        protocol,
        interrupt_cost=interrupt_cost,
        context_switch_cost=context_switch_cost,
    )
    canonical = protocol.upper()
    if canonical == "DS":
        return analyze_sa_ds(inflated, **analysis_kwargs)
    return analyze_sa_pm(inflated, **analysis_kwargs)
