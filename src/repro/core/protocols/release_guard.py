"""The Release Guard (RG) protocol -- Section 3.2 of the paper.

Each subtask ``T_i,j`` carries a *release guard* ``g_i,j``: the earliest
instant its next instance may be released.  When the synchronization
signal announcing the completion of the predecessor instance arrives:

* if the current time is at or past the guard, release immediately;
* otherwise hold the release until the guard is due.

The guard is updated by two rules:

1. when an instance of ``T_i,j`` is released, ``g_i,j := now + p_i``
   (so consecutive releases are separated by at least the period -- the
   subtask is periodic inside every busy period, which is what makes
   Algorithm SA/PM's bounds valid, Theorem 1);
2. ``g_i,j := now`` whenever ``now`` is an *idle point* of the subtask's
   processor (Definition 1: every instance released before ``now`` has
   completed).  Rule 2 lets held releases go early without lengthening
   anyone's worst-case response time, which is why RG's average EER times
   beat PM's.

Idle points reach this controller through two paths, both per the
definition: the kernel fires :meth:`on_idle` when a completion empties a
processor, and :meth:`on_signal` treats a signal arriving at an idle
processor as an idle point before consulting the guard.

RG needs no global clock, no global load information, and no
schedulability-analysis output at run time -- one guard variable per
subtask and one timer per held release.

Guards are *local wall-clock* values: rule 1 adds one period to the
processor's local reading and rule 2 resets to the local reading, so all
guard arithmetic measures durations on the local clock.  With perfect
clocks (the default) every conversion is the identity; under skewed
clocks a pure offset cancels entirely and only drift-proportional error
accrues -- the paper's argument for RG needing no clock synchronization.
"""

from __future__ import annotations

from collections import deque

from repro.model.task import ProcessorId, SubtaskId
from repro.sim.interfaces import ReleaseController

__all__ = ["ReleaseGuard"]


class ReleaseGuard(ReleaseController):
    """Guarded releases with the paper's two update rules.

    Guard comparisons go through the kernel's timebase: tolerant under
    the float backend (a signal arriving within float noise of the guard
    counts as on time), exact under the exact backend.
    """

    name = "RG"

    def __init__(self) -> None:
        super().__init__()
        #: Release guard per subtask; absent means 0 (initial value).
        self.guards: dict[SubtaskId, float] = {}
        #: Held releases per subtask: FIFO of instance indices whose
        #: signal arrived before the guard was due.
        self.pending: dict[SubtaskId, deque[int]] = {}
        #: Subtask periods, converted into the kernel's timebase once.
        self._periods: dict[SubtaskId, float] = {}

    def start(self) -> None:
        assert self.kernel is not None and self.system is not None
        timebase = self.kernel.timebase
        # The initial guard value ("0" in the paper) means *no constraint
        # yet*: on a local clock it is the clock's reading at boot, not
        # the literal zero -- otherwise a clock booting behind true time
        # would hold early releases against a guard that is artificially
        # in its future.  With perfect clocks this is exactly zero.
        self.guards = {
            sid: self.kernel.local_time(self.system.subtask(sid).processor)
            for sid in self.system.subtask_ids
        }
        self.pending = {sid: deque() for sid in self.system.subtask_ids}
        self._periods = {
            sid: timebase.convert(self.system.period_of(sid))
            for sid in self.system.subtask_ids
        }

    # ------------------------------------------------------------------
    # Guard rules
    # ------------------------------------------------------------------
    def _local_now(self, processor: ProcessorId) -> float:
        """The processor's local wall-clock reading (now, with perfect
        clocks)."""
        assert self.kernel is not None
        return self.kernel.local_time(processor)

    def on_release(self, sid: SubtaskId, instance: int, now: float) -> None:
        # Rule 1: next release of this subtask no earlier than one period
        # from now, measured on the subtask's own processor clock.
        assert self.system is not None
        processor = self.system.subtask(sid).processor
        self.guards[sid] = self._local_now(processor) + self._periods[sid]

    def on_idle(self, processor: ProcessorId, now: float) -> None:
        self._apply_rule_two(processor, now)

    def _apply_rule_two(self, processor: ProcessorId, now: float) -> None:
        """Reset every guard on ``processor`` to its local *now* and let
        held releases go."""
        assert self.system is not None
        local = self.system.subtasks_on(processor)
        local_now = self._local_now(processor)
        for sid in local:
            self.guards[sid] = local_now
        # Release the head of every non-empty hold queue: all of them are
        # entitled to go at this instant.  Each release re-raises that
        # subtask's guard via rule 1, so deeper queue entries wait for the
        # new guard.
        for sid in local:
            if self.pending[sid]:
                self._release_head(sid, now)

    # ------------------------------------------------------------------
    # Signal path
    # ------------------------------------------------------------------
    def on_completion(self, sid: SubtaskId, instance: int, now: float) -> None:
        assert self.kernel is not None and self.system is not None
        successor = self.system.successor_of(sid)
        if successor is not None:
            self.kernel.send_signal(successor, instance)

    def on_signal(self, sid: SubtaskId, instance: int, now: float) -> None:
        assert self.kernel is not None and self.system is not None
        processor = self.system.subtask(sid).processor
        if not self.kernel.idle_points_lost and self.kernel.is_idle(
            processor
        ):
            # Definition 1: a signal arriving at an idle processor arrives
            # at an idle point, so rule 2 applies before the guard check.
            # When the fault plane breaks idle-point detection the check
            # is skipped and RG degrades gracefully to rule-1-only
            # operation: guards are only ever raised, never reset, so
            # held releases wait for their guard timers -- correct
            # (Theorem 1 only needs rule 1), merely less responsive.
            self.kernel.trace.note_idle_point(processor, now)
            self._apply_rule_two(processor, now)
        if not self.pending[sid] and self.kernel.timebase.geq(
            self._local_now(processor), self.guards[sid]
        ):
            self.kernel.release(sid, instance)
        else:
            self.pending[sid].append(instance)
            self._arm_guard_timer(sid)

    # ------------------------------------------------------------------
    # Held-release machinery
    # ------------------------------------------------------------------
    def _release_head(self, sid: SubtaskId, now: float) -> None:
        assert self.kernel is not None
        instance = self.pending[sid].popleft()
        self.kernel.release(sid, instance)
        if self.pending[sid]:
            self._arm_guard_timer(sid)

    def _arm_guard_timer(self, sid: SubtaskId) -> None:
        """Schedule a wake-up at the current guard of ``sid``.

        Timers are checked lazily when they fire: rule 2 may already have
        released the held instance, or rule 1 may have pushed the guard
        further out (in which case a fresh timer exists).  Stale timers
        are no-ops.  The guard is a local wall-clock instant, so the
        wake-up is scheduled at its true-time crossing.

        The wake-up lives on the subtask's processor, so under fault
        injection it may be lost or die with a crash window.  RG
        partially self-heals: the next signal or idle point on the
        processor re-arms or releases the held instance.
        """
        assert self.kernel is not None and self.system is not None
        processor = self.system.subtask(sid).processor
        head = self.pending[sid][0] if self.pending[sid] else None
        due = self.kernel.true_time_of_local(processor, self.guards[sid])
        if due < self.kernel.now:
            # Self-heal: a lost guard timer can leave the head pending
            # past its guard; the next signal re-arms here, and the
            # guard instant is already behind us.  Wake up immediately
            # -- the guard check in the fired callback still governs.
            due = self.kernel.now
        self.kernel.schedule_timer(
            due,
            lambda now, s=sid: self._guard_timer_fired(s, now),
            processor=processor,
            sid=sid,
            instance=head,
        )

    def _guard_timer_fired(self, sid: SubtaskId, now: float) -> None:
        assert self.kernel is not None and self.system is not None
        processor = self.system.subtask(sid).processor
        if self.pending[sid] and self.kernel.timebase.geq(
            self._local_now(processor), self.guards[sid]
        ):
            self._release_head(sid, now)

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and examples)
    # ------------------------------------------------------------------
    def held_count(self, sid: SubtaskId) -> int:
        """Number of releases currently held behind the guard of ``sid``."""
        return len(self.pending.get(sid, ()))
