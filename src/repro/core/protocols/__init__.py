"""The paper's synchronization protocols: DS, PM, MPM and RG."""

from repro.core.protocols.costs import (
    PROTOCOL_COSTS,
    ProtocolCosts,
    overhead_per_instance,
)
from repro.core.protocols.direct import DirectSynchronization
from repro.core.protocols.factory import (
    PROTOCOL_NAMES,
    make_controller,
    pm_bounds_for,
)
from repro.core.protocols.modified_pm import ModifiedPhaseModification
from repro.core.protocols.phase_modification import (
    PhaseModification,
    compute_modified_phases,
)
from repro.core.protocols.release_guard import ReleaseGuard

__all__ = [
    "PROTOCOL_COSTS",
    "PROTOCOL_NAMES",
    "DirectSynchronization",
    "ModifiedPhaseModification",
    "PhaseModification",
    "ProtocolCosts",
    "ReleaseGuard",
    "compute_modified_phases",
    "make_controller",
    "overhead_per_instance",
    "pm_bounds_for",
]
