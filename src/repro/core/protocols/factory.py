"""Construct protocol controllers by name, wiring in analysis bounds.

PM and MPM need per-subtask response-time bounds before they can run;
when the caller does not supply them, this factory obtains them from
Algorithm SA/PM -- exactly the dependency on schedulability analysis that
Section 3.1 criticizes PM/MPM for (and that RG avoids).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.protocols.direct import DirectSynchronization
from repro.core.protocols.modified_pm import ModifiedPhaseModification
from repro.core.protocols.phase_modification import PhaseModification
from repro.core.protocols.release_guard import ReleaseGuard
from repro.errors import ConfigurationError
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.sim.interfaces import ReleaseController

__all__ = ["PROTOCOL_NAMES", "make_controller", "pm_bounds_for"]

#: Canonical protocol names, in the paper's order of introduction.
PROTOCOL_NAMES = ("DS", "PM", "MPM", "RG")


def pm_bounds_for(system: System) -> dict[SubtaskId, float]:
    """Response-time bounds for PM/MPM, from Algorithm SA/PM.

    Raises :class:`ConfigurationError` when any *non-last* subtask's
    bound is infinite: PM/MPM cannot schedule releases without finite
    bounds for the chain prefix.
    """
    result = analyze_sa_pm(system)
    bounds = dict(result.subtask_bounds)
    for task_index, task in enumerate(system.tasks):
        for j in range(task.chain_length - 1):
            sid = SubtaskId(task_index, j)
            if math.isinf(bounds[sid]):
                raise ConfigurationError(
                    f"SA/PM bound of {sid} is infinite; the PM/MPM "
                    f"protocols need finite bounds for all non-last "
                    f"subtasks"
                )
    return bounds


def make_controller(
    name: str,
    system: System,
    *,
    bounds: Mapping[SubtaskId, float] | None = None,
) -> ReleaseController:
    """Build the named protocol's controller for ``system``.

    ``bounds`` (PM/MPM only) overrides the SA/PM-derived response-time
    bounds -- useful for failure injection and what-if studies.
    """
    canonical = name.upper()
    if canonical == "DS":
        return DirectSynchronization()
    if canonical == "RG":
        return ReleaseGuard()
    if canonical in ("PM", "MPM"):
        effective = dict(bounds) if bounds is not None else pm_bounds_for(system)
        if canonical == "PM":
            return PhaseModification(effective)
        return ModifiedPhaseModification(effective)
    raise ConfigurationError(
        f"unknown protocol {name!r}; known: {', '.join(PROTOCOL_NAMES)}"
    )
