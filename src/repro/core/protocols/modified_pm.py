"""The Modified Phase Modification (MPM) protocol -- Section 3.1.

MPM keeps PM's timing discipline -- the interval between the releases of
``T_i,j`` and ``T_i,j+1`` equals the bound ``R_i,j`` -- but anchors it to
each instance's *actual* release instead of a global phase table.  When an
instance of ``T_i,j`` is released at ``t``, its scheduler arms a local
timer at ``t + R_i,j``; when the timer fires, the predecessor instance
must have completed (``R_i,j`` is an upper bound), so a synchronization
signal is sent and the successor is released on receipt.

Because the timer is relative to the local release, MPM needs neither
global clock synchronization nor strictly periodic first releases: under
release jitter the whole chain simply shifts with the jittered release.
Under ideal conditions MPM and PM produce identical schedules
(verified by tests and by the shared analysis, Algorithm SA/PM).

The optional overrun check the paper mentions (the timer can detect that
the instance has not finished by ``t + R_i,j``) is implemented: overruns
are counted on the controller, and the signal is sent anyway -- the
simulator's precedence-violation tracking captures the consequence.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ConfigurationError
from repro.model.task import SubtaskId
from repro.sim.interfaces import ReleaseController

__all__ = ["ModifiedPhaseModification"]


class ModifiedPhaseModification(ReleaseController):
    """Timer-relayed Phase Modification.

    Parameters
    ----------
    bounds:
        Per-subtask response-time upper bounds ``R_i,j`` (output of
        Algorithm SA/PM).  Needed for every non-last subtask.
    """

    name = "MPM"

    def __init__(self, bounds: Mapping[SubtaskId, float]) -> None:
        super().__init__()
        self.bounds = dict(bounds)
        #: Instances whose response-time budget elapsed before completion.
        self.overruns: list[tuple[SubtaskId, int, float]] = []

    def _bound(self, sid: SubtaskId) -> float:
        try:
            bound = self.bounds[sid]
        except KeyError:
            raise ConfigurationError(
                f"MPM protocol needs a response-time bound for {sid}"
            ) from None
        if not bound > 0 or bound != bound or bound == float("inf"):
            raise ConfigurationError(
                f"MPM protocol needs a positive finite bound for {sid}, "
                f"got {bound!r}"
            )
        assert self.kernel is not None
        # Converted into the kernel's timebase so `now + bound` matches
        # PM's phase-table arithmetic exactly under the exact backend.
        return self.kernel.timebase.convert(bound)

    def on_release(self, sid: SubtaskId, instance: int, now: float) -> None:
        assert self.kernel is not None and self.system is not None
        successor = self.system.successor_of(sid)
        if successor is None:
            return
        # The relay timer measures a *duration* on the releasing
        # processor's local clock (Section 3.1: MPM needs no global
        # clock).  A pure clock offset cancels here -- only drift and
        # resync-jump error accrue; with a perfect clock this is exactly
        # ``now + bound`` as before.  It lives on the releasing
        # processor: under fault injection it may be lost (the successor
        # instance is then never released) and it dies with that
        # processor's crash window.
        processor = self.system.subtask(sid).processor
        self.kernel.schedule_timer(
            self.kernel.true_time_after_local_duration(
                processor, self._bound(sid)
            ),
            lambda fire_time, s=sid, m=instance: self._timer_fired(
                s, m, fire_time
            ),
            processor=processor,
            sid=sid,
            instance=instance,
        )

    def _timer_fired(self, sid: SubtaskId, instance: int, now: float) -> None:
        assert self.kernel is not None and self.system is not None
        if (sid, instance) not in self.kernel.trace.completions:
            self.overruns.append((sid, instance, now))
        successor = self.system.successor_of(sid)
        if successor is not None:
            self.kernel.send_signal(successor, instance)

    # on_signal inherits the immediate-release default: the receiving
    # scheduler releases the successor as soon as the signal arrives.
