"""Implementation-complexity and run-time-overhead model -- Section 3.3.

The paper compares the four protocols on static attributes: which
interrupt support they need, how many state variables they keep per
subtask, how many interrupts each subtask instance incurs, and whether
they need global clock synchronization or global load information.  This
module encodes that table so the comparison can be regenerated
programmatically (benchmark E10) and so the overhead can be charged into
analyses when desired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError

__all__ = ["ProtocolCosts", "PROTOCOL_COSTS", "overhead_per_instance"]


@dataclass(frozen=True)
class ProtocolCosts:
    """Static cost attributes of one synchronization protocol."""

    protocol: str
    needs_timer_interrupt: bool
    needs_sync_interrupt: bool
    variables_per_subtask: int
    interrupts_per_instance: int
    context_switches_per_instance: int
    needs_clock_sync: bool
    needs_global_load_info: bool

    def describe(self) -> str:
        """One-line human-readable summary."""
        supports = []
        if self.needs_timer_interrupt:
            supports.append("timer")
        if self.needs_sync_interrupt:
            supports.append("sync")
        return (
            f"{self.protocol}: interrupts={'+'.join(supports) or 'none'}, "
            f"vars/subtask={self.variables_per_subtask}, "
            f"interrupts/instance={self.interrupts_per_instance}, "
            f"ctx-switches/instance={self.context_switches_per_instance}, "
            f"clock-sync={'yes' if self.needs_clock_sync else 'no'}, "
            f"global-load-info={'yes' if self.needs_global_load_info else 'no'}"
        )


#: Section 3.3 verbatim: DS needs only the sync interrupt and no state;
#: PM needs only the timer (and clock sync, and the R_i,j table -- global
#: load information); MPM and RG need both interrupt kinds; PM/MPM store
#: one response-time bound per subtask, RG stores one guard; every
#: protocol pays two context switches per instance under fixed-priority
#: scheduling.
PROTOCOL_COSTS: Mapping[str, ProtocolCosts] = {
    "DS": ProtocolCosts(
        protocol="DS",
        needs_timer_interrupt=False,
        needs_sync_interrupt=True,
        variables_per_subtask=0,
        interrupts_per_instance=1,
        context_switches_per_instance=2,
        needs_clock_sync=False,
        needs_global_load_info=False,
    ),
    "PM": ProtocolCosts(
        protocol="PM",
        needs_timer_interrupt=True,
        needs_sync_interrupt=False,
        variables_per_subtask=1,
        interrupts_per_instance=1,
        context_switches_per_instance=2,
        needs_clock_sync=True,
        needs_global_load_info=True,
    ),
    "MPM": ProtocolCosts(
        protocol="MPM",
        needs_timer_interrupt=True,
        needs_sync_interrupt=True,
        variables_per_subtask=1,
        interrupts_per_instance=2,
        context_switches_per_instance=2,
        needs_clock_sync=False,
        needs_global_load_info=True,
    ),
    "RG": ProtocolCosts(
        protocol="RG",
        needs_timer_interrupt=True,
        needs_sync_interrupt=True,
        variables_per_subtask=1,
        interrupts_per_instance=2,
        context_switches_per_instance=2,
        needs_clock_sync=False,
        needs_global_load_info=False,
    ),
}


def overhead_per_instance(
    protocol: str,
    *,
    interrupt_cost: float,
    context_switch_cost: float,
) -> float:
    """Run-time overhead charged to each subtask instance.

    The paper notes these costs "can easily be taken into account in the
    schedulability analysis" by inflating execution times; this helper
    computes the inflation for a given platform cost model.
    """
    if interrupt_cost < 0 or context_switch_cost < 0:
        raise ConfigurationError("overhead costs must be >= 0")
    try:
        costs = PROTOCOL_COSTS[protocol]
    except KeyError:
        known = ", ".join(sorted(PROTOCOL_COSTS))
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; known: {known}"
        ) from None
    return (
        costs.interrupts_per_instance * interrupt_cost
        + costs.context_switches_per_instance * context_switch_cost
    )
