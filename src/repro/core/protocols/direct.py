"""The Direct Synchronization (DS) protocol -- Section 3 of the paper.

When an instance of a subtask completes, the scheduler on its processor
sends a synchronization signal to the scheduler of the processor where the
immediate successor executes; the successor instance is released the
moment the signal arrives.  DS is the cheapest protocol (one interrupt per
instance, no per-subtask state) and yields the shortest average EER times,
but releases of later subtasks can *clump*, which makes the worst-case
analysis (Algorithm SA/DS) pessimistic and sometimes unbounded.

Under fault injection (:mod:`repro.faults`) DS is the most exposed
protocol: it keeps no per-subtask state, so a dropped signal silences
the rest of the chain for that instance (only the kernel's retransmit
watchdog can save it), and a duplicated signal double-releases the
successor unless the kernel's duplicate-release suppression absorbs it
-- DS has no guard to make delivery idempotent, unlike RG.
"""

from __future__ import annotations

from repro.model.task import SubtaskId
from repro.sim.interfaces import ReleaseController

__all__ = ["DirectSynchronization"]


class DirectSynchronization(ReleaseController):
    """Release each successor the instant its predecessor completes."""

    name = "DS"

    def on_completion(self, sid: SubtaskId, instance: int, now: float) -> None:
        assert self.kernel is not None and self.system is not None
        successor = self.system.successor_of(sid)
        if successor is not None:
            self.kernel.send_signal(successor, instance)

    # on_signal inherits the immediate-release default, which is exactly
    # the DS behaviour.
