"""The Phase Modification (PM) protocol -- Section 3.1 of the paper.

PM (after Bettati) makes *every* subtask strictly periodic: subtask
``T_i,j`` is released by a local timer at

    f_i,j = f_i + sum_{k<j} R_i,k        (then every p_i thereafter)

where ``R_i,k`` is an upper bound on the response time of ``T_i,k``
obtained from schedulability analysis (Algorithm SA/PM,
:mod:`repro.core.analysis.sa_pm`).  If the bounds are correct, clocks are
synchronized, and first subtasks are strictly periodic, every predecessor
instance has completed by the time its successor is released.

The protocol's documented weaknesses are reproducible with this
implementation: feed it understated bounds, or a release-jitter model, and
the simulator records the resulting precedence violations.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ConfigurationError
from repro.model.system import System
from repro.model.task import SubtaskId
from repro.sim.interfaces import ReleaseController
from repro.timebase import FLOAT, Timebase

__all__ = ["PhaseModification", "compute_modified_phases"]


def compute_modified_phases(
    system: System,
    bounds: Mapping[SubtaskId, float],
    *,
    timebase: Timebase = FLOAT,
) -> dict[SubtaskId, float]:
    """The PM phases ``f_i,j = f_i + sum_{k<j} R_i,k`` for every subtask.

    ``bounds`` must contain a finite response-time bound for every
    non-last subtask (bounds of last subtasks are not needed to place any
    phase, but are accepted).  Phases are accumulated in ``timebase``
    arithmetic, so under the exact backend the identity between PM's
    phase table and MPM's relative timers holds with ``==``.
    """
    phases: dict[SubtaskId, float] = {}
    for task_index, task in enumerate(system.tasks):
        offset = timebase.convert(task.phase)
        for j in range(task.chain_length):
            sid = SubtaskId(task_index, j)
            phases[sid] = offset
            if j < task.chain_length - 1:
                try:
                    bound = bounds[sid]
                except KeyError:
                    raise ConfigurationError(
                        f"PM protocol needs a response-time bound for {sid}"
                    ) from None
                if not bound > 0 or bound != bound or bound == float("inf"):
                    raise ConfigurationError(
                        f"PM protocol needs a positive finite bound for "
                        f"{sid}, got {bound!r}"
                    )
                offset += timebase.convert(bound)
    return phases


class PhaseModification(ReleaseController):
    """Release every subtask strictly periodically at its modified phase.

    Parameters
    ----------
    bounds:
        Per-subtask response-time upper bounds ``R_i,j`` (typically the
        output of Algorithm SA/PM).  Bounds for the last subtask of each
        chain are optional.
    """

    name = "PM"

    def __init__(self, bounds: Mapping[SubtaskId, float]) -> None:
        super().__init__()
        self.bounds = dict(bounds)
        self.phases: dict[SubtaskId, float] = {}

    def start(self) -> None:
        assert self.kernel is not None and self.system is not None
        self.phases = compute_modified_phases(
            self.system, self.bounds, timebase=self.kernel.timebase
        )
        for task_index, task in enumerate(self.system.tasks):
            # j = 0 is released by the environment (which, absent jitter,
            # fires at exactly f_i + m * p_i -- the same schedule PM wants).
            for j in range(1, task.chain_length):
                sid = SubtaskId(task_index, j)
                self._schedule_release(sid, 0)

    def _schedule_release(self, sid: SubtaskId, instance: int) -> None:
        assert self.kernel is not None and self.system is not None
        period = self.kernel.timebase.convert(self.system.period_of(sid))
        # The phase table is a *local wall-clock* schedule: PM's timers
        # fire when the subtask's own processor clock reads f_i,j + m*p_i
        # (Section 3.1 -- this is exactly why PM needs synchronized
        # clocks; an offset or drift skews these releases against the
        # true-time environment releases of the first subtasks).
        local_when = self.phases[sid] + instance * period
        processor = self.system.subtask(sid).processor
        when = self.kernel.true_time_of_local(processor, local_when)
        if when > self.kernel.horizon:
            return
        # The release timer lives on the subtask's own processor: under
        # fault injection it may be lost (killing every later release of
        # this subtask too, since rescheduling happens in the fired
        # callback) and it dies with the processor's crash window.
        self.kernel.schedule_timer(
            when,
            lambda now, s=sid, m=instance: self._fire_release(s, m, now),
            processor=processor,
            sid=sid,
            instance=instance,
        )

    def _fire_release(self, sid: SubtaskId, instance: int, now: float) -> None:
        assert self.kernel is not None
        self.kernel.release(sid, instance)
        self._schedule_release(sid, instance + 1)
