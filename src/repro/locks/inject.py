"""Seeded post-pass that adds critical sections to a generated system.

The synthetic workload generator (:mod:`repro.workload.generator`) is
byte-stable: system ``k`` of a configuration is identical across runs,
machines and releases, and several oracles depend on that.  Critical
sections therefore enter as a *separate* seeded pass over an existing
system -- the generator's own draws are never touched, so a workload
with ``ratio=0`` is the exact system the generator produced, and the
same ``(system, seed, ratio)`` triple yields the same sections
everywhere.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.errors import ConfigurationError
from repro.model.system import System
from repro.model.task import CriticalSection

__all__ = ["inject_critical_sections"]

#: Sub-stream tag separating this pass's draws from every other seeded
#: consumer of the same base seed (generator, fuzz planner, ...).
_STREAM = 0x10C5


def inject_critical_sections(
    system: System,
    *,
    ratio: float,
    resources: int = 2,
    participation: float = 0.5,
    seed: int = 0,
) -> System:
    """Return ``system`` with critical sections drawn onto its subtasks.

    Each subtask independently participates with probability
    ``participation``; a participating subtask gets one critical section
    on a uniformly drawn resource (``R1`` .. ``R<resources>``) of
    duration ``ratio * execution_time``, placed uniformly within its
    execution.  ``ratio=0`` returns the input system unchanged (the
    identity contract the lock-free oracles rely on).
    """
    if not 0 <= ratio < 1:
        raise ConfigurationError(
            f"critical-section ratio must be in [0, 1), got {ratio!r}"
        )
    if resources < 1:
        raise ConfigurationError(
            f"resources must be >= 1, got {resources!r}"
        )
    if not 0 <= participation <= 1:
        raise ConfigurationError(
            f"participation must be in [0, 1], got {participation!r}"
        )
    if ratio == 0:
        return system
    rng = np.random.default_rng([seed, _STREAM])
    names = [f"R{index + 1}" for index in range(resources)]
    tasks = []
    for task in system.tasks:
        stages = []
        for stage in task.subtasks:
            # Fixed draw order per subtask (coin, resource, start) keeps
            # the pass deterministic even across participation changes.
            coin = rng.uniform()
            resource = names[int(rng.integers(resources))]
            offset = float(rng.uniform())
            if coin >= participation:
                stages.append(stage)
                continue
            duration = ratio * stage.execution_time
            start = offset * (stage.execution_time - duration)
            stages.append(
                replace(
                    stage,
                    critical_sections=(
                        CriticalSection(
                            resource=resource,
                            start=start,
                            duration=duration,
                        ),
                    ),
                )
            )
        tasks.append(replace(task, subtasks=tuple(stages)))
    return System(tuple(tasks), name=f"{system.name}+locks")
