"""Blocking-aware schedulability analysis under DPCP / DPCP-p.

Locking changes the analyses in exactly two ways, both additive:

**Remote blocking** ``B_i,j``.  A subtask that requests a resource may
wait for the synchronization processor to work through other agents.
While its request is outstanding (queued or executing), the host
processor continuously runs agent work -- agents outrank every normal
subtask there -- so the time from request to release of a section ``s``
with duration ``d_s`` on host ``P`` is bounded by the least fixed point

    W = d_s + sum_{u != i,j : c_{u,P} > 0}
            (floor((W + J_u) / p_u) + 1) c_{u,P}

where ``c_{u,P}`` is the total agent work subtask ``u`` places on ``P``
per instance, ``p_u`` its task's period and ``J_u`` its deferral jitter
(below).  The per-section blocking is ``X_s = W - d_s`` (the section's
own execution is already inside the WCET) and ``B_i,j = sum_s X_s``.
This bound is deliberately coarse -- it does not credit DPCP's
priority-ordered queue over DPCP-p's FIFO -- so one formula serves both
protocols; they differ through the *assignment* (which ``c_{u,P}``
terms land on which processor).

**Agent interference.**  Agent chunks preempt normal subtasks on their
host processor.  Each (subtask, section) pair contributes a pseudo task:
period of the owner, one subtask of execution time ``d_s`` on the host
at the owner's boosted agent priority.  The pseudo tasks are appended
*after* the real tasks (original indices and ids survive) and stripped
from the result, leaving bounds for the real system only.

**Suspension as jitter** ``J_i,j``.  A subtask that is away on a
synchronization processor *defers* its home-processor execution: its
releases stay strictly periodic, but its demand can land late and then
clump with the next instance's, which plain periodic interference
counting misses.  The standard sound repair charges each lock-using
subtask's deferral as release jitter ``J_i,j = R_i,j - e_i,j``
(response bound minus execution) in every demand equation it
*interferes* with -- never in its own, whose waiting is already covered
by ``B_i,j``.  Agent pseudo tasks inherit their owner's jitter (a
deferred owner requests late).  ``R`` depends on ``J`` and ``J`` on
``R``, so blocking terms, jitters and bounds are resolved as one joint
least fixed point, iterated from zero; failing to stabilize within
:data:`_MAX_DEFERRAL_PASSES` declares every resourceful bound infinite
(sound: the iteration is monotone from below).

Charging the full WCET on the home processor *and* the section time as
agent interference *and* the blocking term double-counts section time;
every count is an upper bound, so the composition stays sound.

Both entry points reduce *exactly* to the base analyses on a system
without critical sections: they return the base result object itself,
so resource-free bounds are bit-identical with or without this module.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, Mapping

from repro.core.analysis.results import FAILURE_FACTOR, AnalysisResult
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.locks.assignment import build_assignment
from repro.locks.config import LockingConfig
from repro.model.system import System
from repro.model.task import Subtask, SubtaskId, Task
from repro.timebase import FLOAT, REL_EPS, Timebase, get_timebase

__all__ = [
    "agent_augmented_system",
    "analyze_sa_pm_blocking",
    "analyze_sa_ds_blocking",
    "blocking_terms",
    "resolved_blocking_terms",
]

#: Fixed-point iteration cap; the utilization guard makes divergence
#: detectable beforehand, so hitting the cap means pathological creep --
#: reported as an infinite term, which is sound.
_MAX_FIXPOINT_PASSES = 10_000

#: Outer joint-fixpoint cap for blocking terms + suspension jitters.
#: The iteration is monotone from below, so failing to stabilize means
#: the augmented system is effectively unschedulable; every resourceful
#: bound is then declared infinite, which is sound.
_MAX_DEFERRAL_PASSES = 60


def blocking_terms(
    system: System,
    locking: LockingConfig | None = None,
    *,
    timebase: Timebase | str = FLOAT,
    deferral: Mapping[SubtaskId, float] | None = None,
) -> dict[SubtaskId, float]:
    """Remote-blocking bound ``B_i,j`` per resourceful subtask.

    Subtasks without critical sections are absent from the mapping
    (their term is zero).  A synchronization processor whose total
    agent utilization reaches 1 yields infinite terms for every subtask
    it serves -- requests there have no bounded wait.  ``deferral``
    widens the arrival window of each interfering requester by its
    suspension jitter ``J_u`` (see the module docstring); callers
    normally obtain terms through :func:`resolved_blocking_terms` or
    the blocking-aware analyses, which iterate deferrals to their
    fixed point.
    """
    tb = get_timebase(timebase)
    deferral = deferral or {}
    assignment = build_assignment(system, locking)
    periods = {
        sid: tb.convert(system.period_of(sid)) for sid in system.subtask_ids
    }
    # Agent work and utilization per synchronization processor.
    work_on = {
        processor: assignment.agent_work_on(system, processor)
        for processor in set(assignment.sync_processor.values())
    }
    agent_utilization = {
        processor: sum(
            tb.convert(c) / periods[u] for u, c in work.items()
        )
        for processor, work in work_on.items()
    }
    terms: dict[SubtaskId, float] = {}
    for sid in system.subtask_ids:
        sections = system.subtask(sid).critical_sections
        if not sections:
            continue
        total = tb.zero
        for section in sections:
            host = assignment.host_of(section.resource)
            if agent_utilization[host] >= 1:
                total = math.inf
                break
            duration = tb.convert(section.duration)
            others = [
                (periods[u], tb.convert(c), deferral.get(u, 0))
                for u, c in work_on[host].items()
                if u != sid
            ]
            if any(math.isinf(j) for (_p, _c, j) in others):
                total = math.inf
                break
            window = duration
            for _pass in range(_MAX_FIXPOINT_PASSES):
                demand = duration
                for period, c, j in others:
                    demand += (math.floor((window + j) / period) + 1) * c
                if demand == window:
                    break
                window = demand
            else:
                window = math.inf
            total += window - duration
        terms[sid] = total
    return terms


def agent_augmented_system(
    system: System, locking: LockingConfig | None = None
) -> System:
    """The system plus one pseudo task per (subtask, critical section).

    Each pseudo task models the agent load a section places on its
    synchronization processor: the owner's period, a single subtask of
    the section's duration, on the host, at the owner's agent priority
    (numerically below every normal priority, as in the runtime).  Real
    tasks come first, so every real :class:`SubtaskId` is unchanged.
    """
    assignment = build_assignment(system, locking)
    agents: list[Task] = []
    for sid in system.subtask_ids:
        owner = system.task_of(sid)
        for index, section in enumerate(
            system.subtask(sid).critical_sections
        ):
            agents.append(
                Task(
                    period=owner.period,
                    subtasks=(
                        Subtask(
                            execution_time=section.duration,
                            processor=assignment.host_of(section.resource),
                            priority=assignment.agent_priority[sid],
                            name=f"agent:{sid}:{index}:{section.resource}",
                        ),
                    ),
                    name=f"agent:{sid}:{index}",
                )
            )
    return System(
        system.tasks + tuple(agents), name=f"{system.name}+agents"
    )


def _strip_agents(
    result: AnalysisResult, system: System, label: str
) -> AnalysisResult:
    """Project an augmented-system result back onto the real system."""
    real = set(system.subtask_ids)
    notes = list(result.notes)
    dropped = [
        (sid, bound)
        for sid, bound in result.subtask_bounds.items()
        if sid not in real and math.isinf(bound)
    ]
    if dropped:
        notes.append(
            f"{len(dropped)} agent pseudo-task bound(s) diverged "
            f"(agent overload is reflected in the blocking terms)"
        )
    return replace(
        result,
        system=system,
        algorithm=label,
        subtask_bounds={
            sid: bound
            for sid, bound in result.subtask_bounds.items()
            if sid in real
        },
        task_bounds=tuple(result.task_bounds[: len(system.tasks)]),
        notes=tuple(notes),
    )


def _resourceful(system: System) -> list[SubtaskId]:
    return [
        sid
        for sid in system.subtask_ids
        if system.subtask(sid).critical_sections
    ]


def _agent_owner_map(system: System) -> dict[SubtaskId, SubtaskId]:
    """Agent pseudo-subtask id -> owning real subtask id.

    Mirrors :func:`agent_augmented_system`'s append order: one pseudo
    task per (subtask, section), real tasks first.
    """
    owners: dict[SubtaskId, SubtaskId] = {}
    task_index = len(system.tasks)
    for sid in system.subtask_ids:
        for _section in system.subtask(sid).critical_sections:
            owners[SubtaskId(task_index, 0)] = sid
            task_index += 1
    return owners


def _maps_close(
    new: Mapping[SubtaskId, float],
    old: Mapping[SubtaskId, float],
    tb: Timebase,
) -> bool:
    """Convergence test for one fixpoint pass (exact: equality)."""
    if set(new) != set(old):
        return False
    for key, value in new.items():
        other = old[key]
        if math.isinf(value) or math.isinf(other):
            if value != other:
                return False
        elif tb.exact:
            if value != other:
                return False
        elif abs(value - other) > REL_EPS * max(1.0, abs(other)):
            return False
    return True


def _apply_infinite_deferrals(
    result: AnalysisResult, inf_sids: set[SubtaskId]
) -> AnalysisResult:
    """Bounds reachable from an infinitely deferred subtask are infinite.

    A subtask whose deferral jitter diverged can backlog arbitrarily
    many instances, so everything it interferes with (same processor,
    lower or equal priority) has no finite bound either.
    """
    if not inf_sids:
        return result
    augmented = result.system
    subtask_bounds = dict(result.subtask_bounds)
    for sid in subtask_bounds:
        if sid in inf_sids or inf_sids.intersection(
            augmented.interference_set(sid)
        ):
            subtask_bounds[sid] = math.inf
    task_bounds = tuple(
        math.inf
        if any(
            math.isinf(subtask_bounds[SubtaskId(i, j)])
            for j in range(task.chain_length)
        )
        else bound
        for (i, task), bound in zip(
            enumerate(augmented.tasks), result.task_bounds
        )
    )
    return replace(
        result, subtask_bounds=subtask_bounds, task_bounds=task_bounds
    )


def _deferral_fixpoint(
    system: System,
    locking: LockingConfig,
    tb: Timebase,
    analyze: Callable[
        [Mapping[SubtaskId, float], Mapping[SubtaskId, float]],
        AnalysisResult,
    ],
) -> tuple[dict[SubtaskId, float], dict[SubtaskId, float], AnalysisResult]:
    """Joint least fixpoint of blocking terms, jitters and bounds.

    ``analyze(blocking, jitter)`` runs the augmented-system analysis;
    its result's ``system`` must be the augmented system (so infinite
    deferrals can be propagated along interference sets).  Returns
    ``(terms, jitter, result)`` at the fixpoint, or with everything
    resourceful declared infinite when :data:`_MAX_DEFERRAL_PASSES`
    passes did not stabilize.
    """
    owners = _agent_owner_map(system)
    resourceful = _resourceful(system)
    executions = {
        sid: tb.convert(system.subtask(sid).execution_time)
        for sid in resourceful
    }
    # Practical-infinity cutoff (the paper's SA/DS failure reading): a
    # deferral beyond FAILURE_FACTOR periods is declared infinite rather
    # than iterated further -- the creep toward divergence would
    # otherwise make every subsequent analysis pass slower.
    cutoffs = {
        sid: tb.convert(FAILURE_FACTOR) * tb.convert(system.period_of(sid))
        for sid in resourceful
    }
    jitter: dict[SubtaskId, float] = {sid: tb.zero for sid in resourceful}
    terms = blocking_terms(system, locking, timebase=tb, deferral=jitter)
    for _pass in range(_MAX_DEFERRAL_PASSES):
        full = dict(jitter)
        for agent_sid, owner in owners.items():
            full[agent_sid] = jitter[owner]
        finite = {u: v for u, v in full.items() if not math.isinf(v)}
        inf_sids = {u for u, v in full.items() if math.isinf(v)}
        result = analyze(terms, finite)
        result = _apply_infinite_deferrals(result, inf_sids)
        new_jitter: dict[SubtaskId, float] = {}
        for sid in resourceful:
            bound = result.subtask_bounds[sid]
            if (
                math.isinf(bound)
                or math.isinf(terms.get(sid, 0))
                or bound - executions[sid] > cutoffs[sid]
            ):
                new_jitter[sid] = math.inf
            else:
                new_jitter[sid] = max(tb.zero, bound - executions[sid])
        new_terms = blocking_terms(
            system, locking, timebase=tb, deferral=new_jitter
        )
        converged = _maps_close(new_jitter, jitter, tb) and _maps_close(
            new_terms, terms, tb
        )
        jitter, terms = new_jitter, new_terms
        if converged:
            return terms, jitter, result
    # Still creeping after the cap: declare every resourceful bound
    # (and everything it interferes with) infinite.
    jitter = {sid: math.inf for sid in resourceful}
    terms = {sid: math.inf for sid in resourceful}
    result = analyze({}, {})
    result = _apply_infinite_deferrals(
        result, set(jitter) | set(owners)
    )
    return terms, jitter, result


def resolved_blocking_terms(
    system: System,
    locking: LockingConfig | None = None,
    *,
    timebase: Timebase | str = FLOAT,
) -> dict[SubtaskId, float]:
    """Deferral-aware blocking bounds ``B_i,j``, resolved to fixpoint.

    These are the terms the blocking-aware SA/PM bounds embed -- and
    the reference the blocking-term-soundness fuzz oracle checks
    measured waits against.  Empty on a resource-free system.
    """
    if not system.has_critical_sections:
        return {}
    tb = get_timebase(timebase)
    locking = locking if locking is not None else LockingConfig()
    augmented = agent_augmented_system(system, locking)
    terms, _jitter, _result = _deferral_fixpoint(
        system,
        locking,
        tb,
        lambda blocking, jitter: analyze_sa_pm(
            augmented, blocking=blocking, jitter=jitter, timebase=tb
        ),
    )
    return terms


def analyze_sa_pm_blocking(
    system: System,
    *,
    locking: LockingConfig | None = None,
    timebase: Timebase | str = FLOAT,
) -> AnalysisResult:
    """SA/PM with DPCP / DPCP-p blocking, agent interference and
    suspension-as-jitter deferrals.

    On a system without critical sections this *is*
    :func:`~repro.core.analysis.sa_pm.analyze_sa_pm` -- same result
    object, bit-identical bounds.
    """
    if not system.has_critical_sections:
        return analyze_sa_pm(system, timebase=timebase)
    tb = get_timebase(timebase)
    locking = locking if locking is not None else LockingConfig()
    augmented = agent_augmented_system(system, locking)
    _terms, _jitter, result = _deferral_fixpoint(
        system,
        locking,
        tb,
        lambda blocking, jitter: analyze_sa_pm(
            augmented, blocking=blocking, jitter=jitter, timebase=tb
        ),
    )
    return _strip_agents(result, system, f"SA/PM+{locking.protocol}")


def analyze_sa_ds_blocking(
    system: System,
    *,
    locking: LockingConfig | None = None,
    failure_factor: float = FAILURE_FACTOR,
    max_iterations: int = 300,
    timebase: Timebase | str = FLOAT,
) -> AnalysisResult:
    """SA/DS with DPCP / DPCP-p blocking, agent interference and
    suspension-as-jitter deferrals.

    On a system without critical sections this *is*
    :func:`~repro.core.analysis.sa_ds.analyze_sa_ds`.
    """
    if not system.has_critical_sections:
        return analyze_sa_ds(
            system,
            failure_factor=failure_factor,
            max_iterations=max_iterations,
            timebase=timebase,
        )
    tb = get_timebase(timebase)
    locking = locking if locking is not None else LockingConfig()
    augmented = agent_augmented_system(system, locking)
    _terms, _jitter, result = _deferral_fixpoint(
        system,
        locking,
        tb,
        lambda blocking, jitter: analyze_sa_ds(
            augmented,
            blocking=blocking,
            extra_jitter=jitter,
            failure_factor=failure_factor,
            max_iterations=max_iterations,
            timebase=tb,
        ),
    )
    return _strip_agents(result, system, f"SA/DS+{locking.protocol}")
