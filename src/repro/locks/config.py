"""Serializable locking-protocol configuration.

A :class:`LockingConfig` describes *how* the shared resources declared
on a system's subtasks are arbitrated, exactly like
:class:`repro.faults.FaultConfig` describes a fault environment: it is
JSON-friendly, hashable and picklable, and the simulation kernel turns
it into a stateful :class:`repro.locks.manager.LockManager` per run.

Two protocols are modelled, following DPCP-p (Yang et al.) and
Brandenburg's taxonomy of distributed (non-migratory) locking:

``"DPCP"``
    The Distributed Priority Ceiling Protocol shape: **every** resource
    is hosted by one synchronization processor (the smallest processor
    id, deterministically), requests wait in priority order, and
    critical sections execute there as agents at boosted priority.
    Simple and analyzable, but the single synchronization processor is
    a funnel: all agent demand lands on one processor.

``"DPCP-p"``
    The parallel-request variant: each resource is hosted on the home
    processor of its highest-priority accessor, and requests are served
    FIFO.  Independent resources live on different processors, so their
    agents execute in parallel -- the locking-study separation is
    exactly this funnel-versus-spread difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "LOCKING_PROTOCOLS",
    "LockingConfig",
    "locking_config_to_dict",
    "locking_config_from_dict",
]

#: Supported distributed locking protocols.
LOCKING_PROTOCOLS: tuple[str, ...] = ("DPCP", "DPCP-p")

_FORMAT = "repro-locking-config-v1"

#: Case-insensitive spellings accepted for each protocol.
_CANONICAL = {
    "DPCP": "DPCP",
    "DPCP-P": "DPCP-p",
    "DPCPP": "DPCP-p",
}


@dataclass(frozen=True)
class LockingConfig:
    """One locking environment: which protocol arbitrates the resources.

    Attributes
    ----------
    protocol:
        ``"DPCP"`` or ``"DPCP-p"`` (case-insensitive on input).
    """

    protocol: str = "DPCP"

    def __post_init__(self) -> None:
        canonical = _CANONICAL.get(str(self.protocol).upper())
        if canonical is None:
            raise ConfigurationError(
                f"unknown locking protocol {self.protocol!r}; expected one "
                f"of {'/'.join(LOCKING_PROTOCOLS)}"
            )
        object.__setattr__(self, "protocol", canonical)

    @property
    def parallel(self) -> bool:
        """True for DPCP-p's spread-and-FIFO request handling."""
        return self.protocol == "DPCP-p"

    @property
    def label(self) -> str:
        """Short display label for reports and case labels."""
        return f"locks={self.protocol}"


def locking_config_to_dict(config: LockingConfig) -> dict[str, Any]:
    """A JSON-ready description of a locking config (lossless)."""
    return {"format": _FORMAT, "protocol": config.protocol}


def locking_config_from_dict(data: Mapping[str, Any]) -> LockingConfig:
    """Rebuild a config from :func:`locking_config_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise ConfigurationError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    return LockingConfig(protocol=str(data.get("protocol", "DPCP")))
