"""Observable lock history: request/acquire/release events.

The :class:`LockManager` appends a :class:`LockEvent` for every state
transition of every lock request.  The log is attached to the trace
(``trace.locks``) so downstream consumers can reason about blocking
without replaying the simulation:

* the lock-aware trace validator excuses priority inversions that a
  documented agent hold or requester suspension explains;
* the blocking-term-soundness fuzz oracle compares each instance's
  measured waiting time against the analyzed blocking bound;
* the deadlock-freedom oracle replays the events as a mutex state
  machine and checks mutual exclusion and grant discipline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.model.task import ProcessorId, SubtaskId

__all__ = ["LockEvent", "LockLog"]

#: Event kinds, in the lifecycle order of a single request.
_KINDS = ("request", "acquire", "release")


@dataclass(frozen=True)
class LockEvent:
    """One transition in the life of a lock request.

    ``kind`` is ``"request"`` (the instance reached a critical section
    and asked for the resource), ``"acquire"`` (the manager granted it
    and scheduled the agent chunk) or ``"release"`` (the agent chunk
    finished and the resource was freed).  ``processor`` is the
    synchronization processor hosting the resource.
    """

    kind: str
    time: float
    sid: SubtaskId
    instance: int
    resource: str
    processor: ProcessorId


@dataclass
class LockLog:
    """Append-only record of lock traffic for one simulation run."""

    events: list[LockEvent] = field(default_factory=list)

    def note(
        self,
        kind: str,
        time: float,
        sid: SubtaskId,
        instance: int,
        resource: str,
        processor: ProcessorId,
    ) -> None:
        """Record one event (kinds outside the lifecycle are rejected)."""
        if kind not in _KINDS:
            raise ValueError(f"unknown lock event kind {kind!r}")
        self.events.append(
            LockEvent(
                kind=kind,
                time=time,
                sid=sid,
                instance=instance,
                resource=resource,
                processor=processor,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[LockEvent]:
        return iter(self.events)

    # -- interval views ------------------------------------------------

    def _paired_intervals(
        self, start_kind: str, end_kind: str
    ) -> dict[tuple[SubtaskId, int], list[tuple[float, float]]]:
        """[start, end) interval per request, matched in event order.

        A request still open at the end of the run (its section was cut
        off by the horizon) yields an interval ending at ``inf`` -- the
        conservative reading for every consumer: the validator keeps
        excusing, the oracles treat the request as unresolved.
        """
        intervals: dict[
            tuple[SubtaskId, int], list[tuple[float, float]]
        ] = {}
        open_starts: dict[tuple[SubtaskId, int, str], float] = {}
        for event in self.events:
            slot = (event.sid, event.instance, event.resource)
            if event.kind == start_kind:
                open_starts.setdefault(slot, event.time)
            elif event.kind == end_kind and slot in open_starts:
                start = open_starts.pop(slot)
                intervals.setdefault((event.sid, event.instance), []).append(
                    (start, event.time)
                )
        for (sid, instance, _resource), start in open_starts.items():
            intervals.setdefault((sid, instance), []).append(
                (start, math.inf)
            )
        return intervals

    def hold_intervals(
        self,
    ) -> dict[tuple[SubtaskId, int], list[tuple[float, float]]]:
        """Per instance: [acquire, release) spans of its agent chunks."""
        return self._paired_intervals("acquire", "release")

    def suspension_intervals(
        self,
    ) -> dict[tuple[SubtaskId, int], list[tuple[float, float]]]:
        """Per instance: [request, release) spans -- the full window in
        which the instance is away from its home processor for a lock
        (waiting in the queue or executing the agent chunk)."""
        return self._paired_intervals("request", "release")

    def waits(self) -> dict[tuple[SubtaskId, int], float]:
        """Total acquire-minus-request waiting time per instance.

        Requests never acquired by the end of the run are *excluded*
        (their wait is horizon-truncated, not protocol-induced); the
        blocking-soundness oracle accounts for them separately.
        """
        waits: dict[tuple[SubtaskId, int], float] = {}
        pending: dict[tuple[SubtaskId, int, str], float] = {}
        for event in self.events:
            slot = (event.sid, event.instance, event.resource)
            if event.kind == "request":
                pending.setdefault(slot, event.time)
            elif event.kind == "acquire" and slot in pending:
                requested = pending.pop(slot)
                key = (event.sid, event.instance)
                waits[key] = waits.get(key, 0.0) + (event.time - requested)
        return waits

    def unacquired(self) -> set[tuple[SubtaskId, int]]:
        """Instances with a request that never reached acquire."""
        pending: set[tuple[SubtaskId, int, str]] = set()
        for event in self.events:
            slot = (event.sid, event.instance, event.resource)
            if event.kind == "request":
                pending.add(slot)
            elif event.kind == "acquire":
                pending.discard(slot)
        return {(sid, instance) for (sid, instance, _r) in pending}

    def counts(self) -> Mapping[str, int]:
        """Event tallies by kind (for summaries and quick sanity checks)."""
        tally = {kind: 0 for kind in _KINDS}
        for event in self.events:
            tally[event.kind] += 1
        return tally

    def describe(self) -> str:
        """One human line: ``requests=12 acquires=12 releases=11``."""
        tally = self.counts()
        return (
            f"requests={tally['request']} acquires={tally['acquire']} "
            f"releases={tally['release']}"
        )
