"""The locking runtime: phase-splitting, suspension, agent scheduling.

A subtask instance with critical sections does not execute as one block
on its home processor.  The manager splits its demand into a *chunk
plan* -- alternating non-critical execution chunks (home processor,
normal priority) and critical-section *agent* chunks (the resource's
synchronization processor, boosted agent priority) -- and walks the plan
chunk by chunk:

* an execution chunk is handed to the home scheduler like any release;
* a section chunk first *requests* the resource: if free it is granted
  immediately and the agent chunk is scheduled on the synchronization
  processor; otherwise the instance suspends in the resource's waiter
  queue (priority order under DPCP, FIFO under DPCP-p);
* when an agent chunk completes, the resource is released and the next
  waiter (if any) is granted.

All chunks are recorded against the real ``(sid, instance)`` key, so the
trace's conservation invariant (segments sum to demand) holds across the
home and synchronization processors.  Instances that are *away* from
their home processor -- suspended in a waiter queue or executing an agent
chunk remotely -- still count against Definition 1's idle-point test
there: the kernel consults :meth:`LockManager.has_away_on` before
declaring a processor idle.

Crash windows (fault plane): a crash on a processor abandons every plan
currently located there (the scheduler wiped the chunk) and every plan
homed there, freeing any lock the victim held and granting the next
waiter.  This is deliberately coarse -- the fault campaigns never combine
crash windows with locking, so the goal is merely to not wedge.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.locks.assignment import LockAssignment, build_assignment
from repro.locks.config import LockingConfig
from repro.locks.log import LockLog
from repro.model.task import ProcessorId, SubtaskId
from repro.timebase import fmt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Kernel

__all__ = ["LockManager"]

#: Instance key, as used by the trace.
_Key = tuple[SubtaskId, int]


@dataclass(frozen=True)
class _Chunk:
    """One contiguous piece of an instance's demand.

    ``kind`` is ``"exec"`` (home processor, normal priority) or
    ``"section"`` (agent chunk on ``resource``'s synchronization
    processor at boosted priority).
    """

    kind: str
    length: float
    resource: str | None = None


@dataclass
class _Plan:
    """Progress of one instance through its chunks."""

    sid: SubtaskId
    instance: int
    home: ProcessorId
    chunks: list[_Chunk]
    index: int = 0

    @property
    def key(self) -> _Key:
        return (self.sid, self.instance)

    @property
    def current(self) -> _Chunk:
        return self.chunks[self.index]

    @property
    def on_last_chunk(self) -> bool:
        return self.index == len(self.chunks) - 1


@dataclass
class _ResourceState:
    """Holder and waiter queue of one resource."""

    holder: _Key | None = None
    #: Heap of (discipline key, plan key); lazily pruned on pop.
    waiters: list[tuple[tuple, _Key]] = field(default_factory=list)


class LockManager:
    """Per-run lock state machine, owned by the simulation kernel.

    Built only when the system has critical sections; a kernel without
    one follows the exact historical code path, byte for byte.
    """

    def __init__(self, kernel: "Kernel", config: LockingConfig) -> None:
        self.kernel = kernel
        self.config = config
        self.assignment: LockAssignment = build_assignment(
            kernel.system, config
        )
        self.log = LockLog()
        self._plans: dict[_Key, _Plan] = {}
        self._resources: dict[str, _ResourceState] = {
            resource: _ResourceState()
            for resource in kernel.system.resources
        }
        #: Instances away from their home processor (suspended in a
        #: waiter queue or executing an agent chunk), keyed by home.
        self._away: dict[ProcessorId, set[_Key]] = {}
        #: Plans abandoned by a crash; their waiter entries are pruned
        #: lazily when popped.
        self._cancelled: set[_Key] = set()
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Queries used by the kernel
    # ------------------------------------------------------------------
    def manages(self, sid: SubtaskId, instance: int) -> bool:
        """True while ``(sid, instance)`` has an active chunk plan."""
        return (sid, instance) in self._plans

    def has_away_on(self, processor: ProcessorId) -> bool:
        """True when an instance homed on ``processor`` is released but
        away (waiting for or holding a lock) -- it blocks Definition 1's
        idle point there even though the home scheduler cannot see it."""
        return bool(self._away.get(processor))

    def completes_at(self, sid: SubtaskId, instance: int, now: float) -> bool:
        """Lock-aware version of the kernel's completes-at-this-instant
        grace check: True only when the instance is executing the *last*
        chunk of its plan and that chunk finishes by ``now``."""
        plan = self._plans.get((sid, instance))
        if plan is None or not plan.on_last_chunk:
            return False
        chunk = plan.current
        if chunk.kind == "section":
            resource = self._resources[chunk.resource]
            if resource.holder != plan.key:
                return False  # still waiting -- cannot be completing
            processor = self.assignment.host_of(chunk.resource)
        else:
            processor = plan.home
        scheduler = self.kernel.schedulers[processor]
        running = scheduler.running
        if (
            running is None
            or running.sid != sid
            or running.instance != instance
        ):
            return False
        finish = scheduler.pending_completion_time()
        assert finish is not None
        return self.kernel.timebase.leq(finish, now)

    # ------------------------------------------------------------------
    # Admission (called from Kernel.release)
    # ------------------------------------------------------------------
    def admit(
        self, sid: SubtaskId, instance: int, demand: float, now: float
    ) -> None:
        """Build the chunk plan for a released instance and start it."""
        plan = _Plan(
            sid=sid,
            instance=instance,
            home=self.kernel.system.subtask(sid).processor,
            chunks=self._build_chunks(sid, instance, demand),
        )
        self._plans[plan.key] = plan
        self._start_chunk(plan, now)

    def _build_chunks(
        self, sid: SubtaskId, instance: int, demand: float
    ) -> list[_Chunk]:
        """Split ``demand`` along the subtask's critical-section layout.

        When the demand equals the nominal WCET the nominal chunk
        lengths are used verbatim (no arithmetic, no float noise).  A
        varied demand scales every chunk proportionally, with the last
        chunk taking the exact remainder so the chunks sum to the
        demand bit-for-bit.
        """
        tb = self.kernel.timebase
        subtask = self.kernel.system.subtask(sid)
        chunks: list[_Chunk] = []
        cursor = tb.zero
        for section in subtask.critical_sections:
            start = tb.convert(section.start)
            gap = start - cursor
            if tb.is_positive(gap):
                chunks.append(_Chunk("exec", gap))
            duration = tb.convert(section.duration)
            chunks.append(_Chunk("section", duration, section.resource))
            cursor = start + duration
        wcet = tb.convert(subtask.execution_time)
        tail = wcet - cursor
        if tb.is_positive(tail):
            chunks.append(_Chunk("exec", tail))
        if demand == wcet:
            return chunks
        scaled: list[_Chunk] = []
        running_total = tb.zero
        for chunk in chunks[:-1]:
            length = chunk.length * demand / wcet
            running_total += length
            scaled.append(
                _Chunk(chunk.kind, length, chunk.resource)
            )
        last = chunks[-1]
        remainder = demand - running_total
        scaled.append(_Chunk(last.kind, remainder, last.resource))
        for chunk in scaled:
            if not tb.is_positive(chunk.length):
                raise SimulationError(
                    f"demand {fmt(demand)} for {sid}#{instance} leaves a "
                    f"non-positive {chunk.kind} chunk ({fmt(chunk.length)}); "
                    f"demand variation cannot erase a critical section"
                )
        return scaled

    # ------------------------------------------------------------------
    # Chunk lifecycle
    # ------------------------------------------------------------------
    def _start_chunk(self, plan: _Plan, now: float) -> None:
        chunk = plan.current
        if chunk.kind == "exec":
            self.kernel.schedulers[plan.home].add(
                plan.sid, plan.instance, chunk.length, now
            )
            return
        # Section chunk: the instance leaves its home processor (it is
        # "away" from request to release) and asks for the resource.
        host = self.assignment.host_of(chunk.resource)
        self._away.setdefault(plan.home, set()).add(plan.key)
        self.log.note(
            "request", now, plan.sid, plan.instance, chunk.resource, host
        )
        state = self._resources[chunk.resource]
        if state.holder is None:
            self._grant(chunk.resource, plan, now)
        else:
            heapq.heappush(
                state.waiters, (self._waiter_key(plan, now), plan.key)
            )

    def _waiter_key(self, plan: _Plan, now: float) -> tuple:
        """Queue discipline: DPCP serves waiters in requester-priority
        order; DPCP-p serves them FIFO.  The sequence number makes both
        total orders (and runs deterministic)."""
        if self.config.parallel:
            return (now, next(self._seq))
        priority = self.kernel.system.subtask(plan.sid).priority
        return (priority, now, next(self._seq))

    def _grant(self, resource: str, plan: _Plan, now: float) -> None:
        """Give ``resource`` to ``plan`` and schedule its agent chunk."""
        host = self.assignment.host_of(resource)
        self._resources[resource].holder = plan.key
        self.log.note(
            "acquire", now, plan.sid, plan.instance, resource, host
        )
        self.kernel.schedulers[host].add(
            plan.sid,
            plan.instance,
            plan.current.length,
            now,
            priority=self.assignment.agent_priority[plan.sid],
        )

    def on_chunk_complete(
        self, sid: SubtaskId, instance: int, now: float
    ) -> bool:
        """A chunk of a managed instance finished executing.

        Releases the lock (and grants the next waiter) if the chunk was
        a section, then advances the plan.  Returns True when that was
        the final chunk -- the kernel then runs its normal completion
        path -- and False otherwise, after starting the next chunk.
        """
        plan = self._plans[(sid, instance)]
        chunk = plan.current
        if chunk.kind == "section":
            self._release(chunk.resource, plan, now)
        plan.index += 1
        if plan.index == len(plan.chunks):
            del self._plans[plan.key]
            return True
        self._start_chunk(plan, now)
        return False

    def _release(self, resource: str, plan: _Plan, now: float) -> None:
        host = self.assignment.host_of(resource)
        state = self._resources[resource]
        if state.holder != plan.key:  # pragma: no cover - invariant
            raise SimulationError(
                f"{plan.sid}#{plan.instance} released {resource!r} "
                f"without holding it"
            )
        state.holder = None
        self._away.get(plan.home, set()).discard(plan.key)
        self.log.note(
            "release", now, plan.sid, plan.instance, resource, host
        )
        self._grant_next(resource, now)

    def _grant_next(self, resource: str, now: float) -> None:
        state = self._resources[resource]
        while state.waiters:
            _key, plan_key = heapq.heappop(state.waiters)
            if plan_key in self._cancelled:
                self._cancelled.discard(plan_key)
                continue
            self._grant(resource, self._plans[plan_key], now)
            return

    # ------------------------------------------------------------------
    # Crash composition
    # ------------------------------------------------------------------
    def on_crash(self, processor: ProcessorId, now: float) -> None:
        """Abandon plans stranded by a crash of ``processor``.

        Covers plans whose current chunk lives there (the scheduler
        just wiped it) and plans homed there (future chunks have no
        processor to return to).  Held locks are freed and the next
        waiter granted, so the rest of the system keeps making
        progress; the fault log already documents the lost instances.
        """
        for key in list(self._plans):
            plan = self._plans[key]
            chunk = plan.current
            location = (
                self.assignment.host_of(chunk.resource)
                if chunk.kind == "section"
                else plan.home
            )
            if processor in (location, plan.home):
                self._abandon(plan, now)

    def _abandon(self, plan: _Plan, now: float) -> None:
        chunk = plan.current
        if chunk.kind == "section":
            state = self._resources[chunk.resource]
            if state.holder == plan.key:
                state.holder = None
                self._grant_next(chunk.resource, now)
            else:
                self._cancelled.add(plan.key)
        self._away.get(plan.home, set()).discard(plan.key)
        del self._plans[plan.key]
