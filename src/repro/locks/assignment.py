"""Static lock placement: resources to processors, agents to priorities.

Everything here is a pure function of the system and the
:class:`~repro.locks.config.LockingConfig` -- the simulation runtime and
the blocking-aware analyses consume the *same* assignment, which is what
makes the blocking-term-soundness oracle a meaningful cross-check.

Placement
---------
Under **DPCP** every resource is hosted by the single synchronization
processor ``min(system.processors)``.  Under **DPCP-p** each resource is
hosted by the home processor of its highest-priority accessor (ties
broken by subtask id), so independent resources spread across the
machine and their agents execute in parallel.

Agent priorities
----------------
A critical section executes on its host processor as an *agent* whose
priority is the requester's priority shifted below every normal
priority in the system (numerically smaller = higher): with ``offset =
max_priority - min_priority + 1``, agent priority is ``requester -
offset``.  All agents therefore preempt all normal subtasks (the DPCP
boost rule) while preserving the requesters' relative order among
themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.locks.config import LockingConfig
from repro.model.system import System
from repro.model.task import ProcessorId, SubtaskId

__all__ = ["LockAssignment", "build_assignment"]


@dataclass(frozen=True)
class LockAssignment:
    """The static placement implied by (system, locking config).

    Attributes
    ----------
    config:
        The locking protocol this assignment realizes.
    sync_processor:
        Host processor per resource name.
    ceiling:
        Priority ceiling per resource: the highest (numerically
        smallest) normal priority among its accessors.
    agent_priority:
        Boosted priority per requesting subtask, used for every agent
        chunk that subtask executes on a synchronization processor.
    """

    config: LockingConfig
    sync_processor: Mapping[str, ProcessorId]
    ceiling: Mapping[str, int]
    agent_priority: Mapping[SubtaskId, int]

    def host_of(self, resource: str) -> ProcessorId:
        """The synchronization processor hosting ``resource``."""
        return self.sync_processor[resource]

    def agent_work_on(
        self, system: System, processor: ProcessorId
    ) -> dict[SubtaskId, float]:
        """Total agent execution each subtask places on ``processor``.

        The per-subtask sum of section durations whose resource is
        hosted there -- the ``c_{u,P}`` terms of the remote-blocking
        fixpoint in :mod:`repro.locks.analysis`.
        """
        work: dict[SubtaskId, float] = {}
        for sid in system.subtask_ids:
            total = 0.0
            for section in system.subtask(sid).critical_sections:
                if self.sync_processor[section.resource] == processor:
                    total += section.duration
            if total > 0:
                work[sid] = total
        return work


def build_assignment(
    system: System, config: LockingConfig | None = None
) -> LockAssignment:
    """Compute the lock placement of ``system`` under ``config``.

    Deterministic: equal inputs give equal assignments, on any machine.
    A system without critical sections gets an empty assignment (no
    resources, no agents).
    """
    config = config if config is not None else LockingConfig()
    priorities = [
        system.subtask(sid).priority for sid in system.subtask_ids
    ]
    offset = max(priorities) - min(priorities) + 1
    sync_processor: dict[str, ProcessorId] = {}
    ceiling: dict[str, int] = {}
    agent_priority: dict[SubtaskId, int] = {}
    for resource in system.resources:
        accessors = system.accessors_of(resource)
        ceiling[resource] = min(
            system.subtask(sid).priority for sid in accessors
        )
        if config.parallel:
            top = min(
                accessors,
                key=lambda sid: (system.subtask(sid).priority, sid),
            )
            sync_processor[resource] = system.subtask(top).processor
        else:
            sync_processor[resource] = min(system.processors)
    for sid in system.subtask_ids:
        if system.subtask(sid).critical_sections:
            agent_priority[sid] = system.subtask(sid).priority - offset
    return LockAssignment(
        config=config,
        sync_processor=sync_processor,
        ceiling=ceiling,
        agent_priority=agent_priority,
    )
