"""Shared-resource subsystem: critical sections under distributed locking.

The model (:mod:`repro.model.task`) lets a subtask declare disjoint
:class:`~repro.model.task.CriticalSection` intervals on named resources.
This package supplies everything above the model:

* :class:`LockingConfig` -- which distributed locking protocol arbitrates
  the resources: **DPCP** (the classic Distributed Priority Ceiling
  Protocol shape: every resource lives on one synchronization processor,
  requests queue in priority order, sections execute as remote *agents*
  at boosted priority) or **DPCP-p** (the parallel-request variant of
  Yang et al.: resources spread across the accessors' processors and
  queue FIFO, so independent resources are served in parallel);
* :func:`build_assignment` -- the static resource-to-processor mapping,
  priority ceilings and agent priorities implied by a config;
* :class:`LockManager` -- the simulation runtime: phase-splits each
  resourceful instance into home-processor execution chunks and
  synchronization-processor agent chunks, suspends requesters while a
  lock is held, and keeps the kernel's idle-point logic honest while
  lock holders are away from their home processor;
* :class:`LockLog` -- the observable request/acquire/release history,
  consumed by the lock-aware trace validator and the fuzz oracles;
* :mod:`repro.locks.analysis` -- blocking-aware SA/PM and SA/DS:
  remote-blocking terms plus agent interference, reducing exactly to
  the base analyses on resource-free systems;
* :func:`inject_critical_sections` -- the seeded post-pass that adds
  sections to generated workloads without perturbing the generator's
  own draws.
"""

from repro.locks.analysis import (
    agent_augmented_system,
    analyze_sa_ds_blocking,
    analyze_sa_pm_blocking,
    blocking_terms,
)
from repro.locks.assignment import LockAssignment, build_assignment
from repro.locks.config import (
    LOCKING_PROTOCOLS,
    LockingConfig,
    locking_config_from_dict,
    locking_config_to_dict,
)
from repro.locks.inject import inject_critical_sections
from repro.locks.log import LockEvent, LockLog
from repro.locks.manager import LockManager

__all__ = [
    "LOCKING_PROTOCOLS",
    "LockingConfig",
    "locking_config_from_dict",
    "locking_config_to_dict",
    "LockAssignment",
    "build_assignment",
    "LockEvent",
    "LockLog",
    "LockManager",
    "agent_augmented_system",
    "analyze_sa_pm_blocking",
    "analyze_sa_ds_blocking",
    "blocking_terms",
    "inject_critical_sections",
]
