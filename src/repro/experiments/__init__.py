"""Experiment harness regenerating the paper's evaluation (Figs. 12-16)."""

from repro.experiments.evaluation import (
    SystemEvaluation,
    evaluate_config,
    evaluate_system,
)
from repro.experiments.expectations import (
    PAPER_EXPECTATIONS,
    Expectation,
    check_suite,
    render_report,
)
from repro.experiments.figures import (
    bound_ratio_surface,
    eer_ratio_surface,
    failure_rate_surface,
)
from repro.experiments.figures import schedulability_surface
from repro.experiments.parallel import parallel_sweep_grid
from repro.experiments.report import suite_report
from repro.experiments.tightness import TightnessStudy, measure_tightness
from repro.experiments.runner import SuiteResult, run_suite, sweep_grid
from repro.experiments.stats import MeanWithCI, mean_with_ci
from repro.experiments.surface import Cell, Surface

__all__ = [
    "Cell",
    "Expectation",
    "MeanWithCI",
    "PAPER_EXPECTATIONS",
    "TightnessStudy",
    "check_suite",
    "measure_tightness",
    "parallel_sweep_grid",
    "render_report",
    "schedulability_surface",
    "suite_report",
    "SuiteResult",
    "Surface",
    "SystemEvaluation",
    "bound_ratio_surface",
    "eer_ratio_surface",
    "evaluate_config",
    "evaluate_system",
    "failure_rate_surface",
    "mean_with_ci",
    "run_suite",
    "sweep_grid",
]
