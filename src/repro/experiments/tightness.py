"""Bound-tightness study: estimated vs. searched worst-case EER times.

Section 3.2 of the paper rests on an empirical claim: "Because existing
schedulability analysis algorithms are not optimal, the actual
worst-case EER time is typically much smaller than the estimated
worst-case EER time" -- that gap is why RG's rule 2 can release early
without endangering the (pessimistic) bounds, and why its *average* EER
times land near DS's.

This module quantifies the gap on small systems, where the exhaustive
phase search of :mod:`repro.core.analysis.exhaustive` is affordable:
for each sampled system it reports, per task, the ratio

    estimated bound / searched worst-case EER    (>= 1; 1 = tight)

under a chosen protocol/analysis pair.  The searched worst case is a
certified lower bound on the true one, so a ratio of 1 *certifies* the
bound tight at the search granularity, while ratios above 1 measure the
gap the search could not close -- evidence (strengthening with finer
grids) of analysis pessimism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from repro.core.analysis.exhaustive import search_worst_case_eer
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.errors import ConfigurationError
from repro.experiments.stats import MeanWithCI, mean_with_ci
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

__all__ = ["TightnessStudy", "measure_tightness"]


@dataclass(frozen=True)
class TightnessStudy:
    """Pooled pessimism ratios of one protocol/analysis pair."""

    protocol: str
    algorithm: str
    ratios: tuple[float, ...]
    skipped_systems: int

    @property
    def summary(self) -> MeanWithCI:
        """Mean pessimism with a 90% confidence interval."""
        return mean_with_ci(list(self.ratios))

    @property
    def worst(self) -> float:
        """The largest observed pessimism ratio."""
        return max(self.ratios) if self.ratios else float("nan")

    def describe(self) -> str:
        return (
            f"{self.algorithm} under {self.protocol}: mean pessimism "
            f"{self.summary} over {len(self.ratios)} task(s), worst "
            f"{self.worst:.2f}"
            + (
                f" ({self.skipped_systems} diverged system(s) skipped)"
                if self.skipped_systems
                else ""
            )
        )


def measure_tightness(
    protocol: str,
    *,
    systems: int = 5,
    config: WorkloadConfig | None = None,
    base_seed: int = 0,
    steps: int = 3,
    horizon_periods: float = 8.0,
) -> TightnessStudy:
    """Measure bound pessimism for one protocol over sampled systems.

    ``DS`` pairs with Algorithm SA/DS; ``PM``/``MPM``/``RG`` with
    Algorithm SA/PM.  The default configuration uses few, short chains
    so the ``steps ** tasks`` search stays affordable; systems whose DS
    analysis diverges are skipped (counted in the result).
    """
    if systems < 1:
        raise ConfigurationError(f"systems must be >= 1, got {systems}")
    canonical = protocol.upper()
    if canonical not in ("DS", "PM", "MPM", "RG"):
        raise ConfigurationError(f"unknown protocol {protocol!r}")
    config = config or WorkloadConfig(
        subtasks_per_task=2,
        utilization=0.65,
        tasks=4,
        processors=3,
    )
    ratios: list[float] = []
    skipped = 0
    for seed in range(base_seed, base_seed + systems):
        system = generate_system(config, seed)
        if canonical == "DS":
            verdict = analyze_sa_ds(system, max_iterations=80)
            if verdict.failed:
                skipped += 1
                continue
        else:
            verdict = analyze_sa_pm(system)
            if verdict.failed:
                skipped += 1
                continue
        search = search_worst_case_eer(
            system,
            canonical,
            steps=steps,
            horizon_periods=horizon_periods,
            max_combinations=steps ** len(system.tasks) + 1,
        )
        for ratio in search.pessimism(verdict.task_bounds):
            if not math.isnan(ratio):
                ratios.append(ratio)
    return TightnessStudy(
        protocol=canonical,
        algorithm="SA/DS" if canonical == "DS" else "SA/PM",
        ratios=tuple(ratios),
        skipped_systems=skipped,
    )
