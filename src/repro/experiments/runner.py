"""The reproduction suite: sweep the grid once, emit every figure.

:func:`run_suite` is what ``repro-rts suite`` and the benchmark harness
call.  It evaluates ``systems`` seeds per configuration -- analyses and
simulations both -- and derives the five surfaces of Section 5.  The
paper used 1000 systems per configuration; the default here is sized for
a laptop sweep and is fully seed-deterministic, so results are stable
across runs and machines and sharpen as ``systems`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.experiments.evaluation import (
    DEFAULT_PROTOCOLS,
    SystemEvaluation,
    evaluate_config,
)
from repro.experiments.figures import (
    bound_ratio_surface,
    eer_ratio_surface,
    failure_rate_surface,
    schedulability_surface,
)
from repro.experiments.surface import Surface
from repro.workload.config import WorkloadConfig, paper_grid

__all__ = [
    "SuiteResult",
    "run_suite",
    "suite_from_evaluations",
    "sweep_grid",
]


@dataclass(frozen=True)
class SuiteResult:
    """All five figures plus the raw per-system evaluations."""

    evaluations: Mapping[WorkloadConfig, tuple[SystemEvaluation, ...]]
    failure_rate: Surface
    bound_ratio: Surface
    pm_ds_ratio: Surface
    rg_ds_ratio: Surface
    pm_rg_ratio: Surface

    @property
    def systems_per_config(self) -> int:
        return max(len(records) for records in self.evaluations.values())

    def schedulability(self, analysis: str) -> Surface:
        """Schedulable-task fraction per configuration under one
        analysis ("SA/PM" or "SA/DS") -- the bottom-line comparison the
        paper's conclusion draws (benchmark E17)."""
        return schedulability_surface(self.evaluations, analysis)

    def render(self, *, show_ci: bool = False) -> str:
        """All surfaces as text tables, in figure order."""
        return "\n\n".join(
            surface.render(show_ci=show_ci)
            for surface in (
                self.failure_rate,
                self.bound_ratio,
                self.pm_ds_ratio,
                self.rg_ds_ratio,
                self.pm_rg_ratio,
            )
        )


def sweep_grid(
    configs: Sequence[WorkloadConfig],
    systems: int,
    *,
    base_seed: int = 0,
    progress: Callable[[str], None] | None = None,
    **evaluate_kwargs,
) -> dict[WorkloadConfig, tuple[SystemEvaluation, ...]]:
    """Evaluate every configuration in ``configs``.

    ``progress`` (when given) receives one line per finished
    configuration -- the CLI wires this to stderr.
    """
    if not configs:
        raise ConfigurationError("sweep needs at least one configuration")
    evaluations: dict[WorkloadConfig, tuple[SystemEvaluation, ...]] = {}
    for index, config in enumerate(configs):
        records = evaluate_config(
            config, systems, base_seed=base_seed, **evaluate_kwargs
        )
        evaluations[config] = tuple(records)
        if progress is not None:
            failures = sum(1 for r in records if r.sa_ds_failed)
            progress(
                f"[{index + 1}/{len(configs)}] {config.label}: "
                f"{len(records)} systems, {failures} DS failures"
            )
    return evaluations


def suite_from_evaluations(
    evaluations: Mapping[WorkloadConfig, tuple[SystemEvaluation, ...]],
) -> SuiteResult:
    """Derive every figure from an existing sweep.

    Use with :func:`repro.io.load_evaluations` to rebuild a
    :class:`SuiteResult` from a checkpointed run, or with
    :func:`repro.experiments.parallel.parallel_sweep_grid`'s output.
    """
    return SuiteResult(
        evaluations=evaluations,
        failure_rate=failure_rate_surface(evaluations),
        bound_ratio=bound_ratio_surface(evaluations),
        pm_ds_ratio=eer_ratio_surface(evaluations, "PM", "DS"),
        rg_ds_ratio=eer_ratio_surface(evaluations, "RG", "DS"),
        pm_rg_ratio=eer_ratio_surface(evaluations, "PM", "RG"),
    )


def run_suite(
    *,
    systems: int = 10,
    subtask_counts: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8),
    utilizations: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9),
    base_seed: int = 0,
    horizon_periods: float = 10.0,
    sa_ds_max_iterations: int = 100,
    random_phases: bool = True,
    progress: Callable[[str], None] | None = None,
    grid_overrides: Mapping[str, object] | None = None,
    workers: int | None = None,
    engine: str = "reference",
) -> SuiteResult:
    """Reproduce Figures 12-16 over the (N, U) grid.

    Parameters mirror the paper's experiment: ``systems`` per
    configuration (1000 in the paper), random task phases for the
    simulations, Algorithm SA/PM and SA/DS for the bounds.  Pass
    ``grid_overrides`` (e.g. ``{"tasks": 6}``) to shrink the synthetic
    systems themselves.  ``workers`` (when not 1) routes the sweep
    through :func:`repro.experiments.parallel.parallel_sweep_grid`;
    every number is identical to the serial sweep regardless.
    ``engine="batch"`` runs the simulations on the flat-array kernel
    (trace- and metric-identical on these workloads, several times
    faster); the analyses are unaffected.
    """
    overrides = dict(grid_overrides or {})
    overrides.setdefault("random_phases", random_phases)
    configs = paper_grid(
        subtask_counts=tuple(subtask_counts),
        utilizations=tuple(utilizations),
        **overrides,
    )
    sweep_kwargs = dict(
        base_seed=base_seed,
        progress=progress,
        protocols=DEFAULT_PROTOCOLS,
        horizon_periods=horizon_periods,
        sa_ds_max_iterations=sa_ds_max_iterations,
        engine=engine,
    )
    if workers is None or workers == 1:
        evaluations = sweep_grid(configs, systems, **sweep_kwargs)
    else:
        from repro.experiments.parallel import parallel_sweep_grid

        evaluations = parallel_sweep_grid(
            configs, systems, workers=workers, **sweep_kwargs
        )
    return suite_from_evaluations(evaluations)
