"""Per-system evaluation shared by all the figure experiments.

One synthetic system contributes to several of the paper's figures: its
SA/DS verdict to Figure 12, its SA-DS/SA-PM bound ratios to Figure 13,
and its simulated average EER times under DS/PM/RG to Figures 14-16.
:func:`evaluate_system` computes everything once so a sweep over the
grid touches each system a single time, exactly as the paper's own
experiment did.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.api import run_protocol
from repro.core.analysis.sa_ds import analyze_sa_ds
from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.errors import ConfigurationError
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

__all__ = ["SystemEvaluation", "evaluate_system", "evaluate_config"]

#: Protocols simulated for the average-EER figures.  MPM is omitted by
#: default because it provably produces the same schedules as PM under the
#: paper's ideal conditions (a property the test suite checks directly).
DEFAULT_PROTOCOLS: tuple[str, ...] = ("DS", "PM", "RG")


@dataclass(frozen=True)
class SystemEvaluation:
    """Everything measured about one synthetic system.

    ``average_eer[protocol][i]`` is NaN when task ``i`` completed no
    instance within the horizon under that protocol (possible for DS
    backlogs at very high utilization).
    """

    config: WorkloadConfig
    seed: int
    task_count: int
    #: End-to-end relative deadlines, by task index (equal to periods in
    #: the paper's workloads).  Populated whenever analyses run.
    task_deadlines: tuple[float, ...] = ()
    sa_pm_task_bounds: tuple[float, ...] = ()
    sa_ds_task_bounds: tuple[float, ...] = ()
    sa_ds_failed: bool = False
    sa_ds_iterations: int = 0
    average_eer: Mapping[str, tuple[float, ...]] = field(default_factory=dict)
    output_jitter: Mapping[str, tuple[float, ...]] = field(default_factory=dict)
    precedence_violations: Mapping[str, int] = field(default_factory=dict)

    def bound_ratios(self) -> list[float]:
        """Per-task SA-DS/SA-PM bound ratios (Figure 13's ingredient).

        Only meaningful when the DS analysis did not fail; infinite or
        undefined ratios are skipped.
        """
        ratios: list[float] = []
        for ds_bound, pm_bound in zip(
            self.sa_ds_task_bounds, self.sa_pm_task_bounds
        ):
            if math.isfinite(ds_bound) and math.isfinite(pm_bound) and pm_bound > 0:
                ratios.append(ds_bound / pm_bound)
        return ratios

    def eer_ratios(self, numerator: str, denominator: str) -> list[float]:
        """Per-task average-EER ratios between two protocols.

        The paper's PM/DS, RG/DS and PM/RG ratios (Figures 14-16).  Tasks
        with no completed instance under either protocol are skipped.
        """
        top = self.average_eer.get(numerator)
        bottom = self.average_eer.get(denominator)
        if top is None or bottom is None:
            raise ConfigurationError(
                f"protocols {numerator!r}/{denominator!r} were not simulated "
                f"for this system (have: {sorted(self.average_eer)})"
            )
        ratios: list[float] = []
        for high, low in zip(top, bottom):
            if math.isfinite(high) and math.isfinite(low) and low > 0:
                ratios.append(high / low)
        return ratios


def evaluate_system(
    config: WorkloadConfig,
    seed: int,
    *,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    run_analyses: bool = True,
    run_simulations: bool = True,
    horizon_periods: float = 10.0,
    sa_ds_max_iterations: int = 100,
    engine: str = "reference",
) -> SystemEvaluation:
    """Generate one system and measure everything the figures need.

    ``engine`` selects the simulation backend; the fig12-16 workloads
    are clock/fault/lock-free, so ``engine="batch"`` runs them on the
    flat-array kernel with identical traces and metrics at a fraction of
    the cost (see ``docs/batch-engine.md``).
    """
    system = generate_system(config, seed)
    sa_pm_bounds: tuple[float, ...] = ()
    sa_ds_bounds: tuple[float, ...] = ()
    deadlines: tuple[float, ...] = ()
    sa_ds_failed = False
    sa_ds_iterations = 0
    if run_analyses:
        deadlines = tuple(t.relative_deadline for t in system.tasks)
        sa_pm = analyze_sa_pm(system)
        sa_ds = analyze_sa_ds(system, max_iterations=sa_ds_max_iterations)
        sa_pm_bounds = sa_pm.task_bounds
        sa_ds_bounds = sa_ds.task_bounds
        sa_ds_failed = sa_ds.failed
        sa_ds_iterations = sa_ds.iterations

    average_eer: dict[str, tuple[float, ...]] = {}
    jitter: dict[str, tuple[float, ...]] = {}
    violations: dict[str, int] = {}
    if run_simulations:
        for protocol in protocols:
            result = run_protocol(
                system,
                protocol,
                horizon_periods=horizon_periods,
                engine=engine,
            )
            average_eer[protocol] = tuple(result.metrics.average_eer_vector())
            jitter[protocol] = tuple(
                task.output_jitter for task in result.metrics.tasks
            )
            violations[protocol] = result.metrics.precedence_violations
    return SystemEvaluation(
        config=config,
        seed=seed,
        task_count=len(system.tasks),
        task_deadlines=deadlines,
        sa_pm_task_bounds=sa_pm_bounds,
        sa_ds_task_bounds=sa_ds_bounds,
        sa_ds_failed=sa_ds_failed,
        sa_ds_iterations=sa_ds_iterations,
        average_eer=average_eer,
        output_jitter=jitter,
        precedence_violations=violations,
    )


def evaluate_config(
    config: WorkloadConfig,
    systems: int,
    *,
    base_seed: int = 0,
    **kwargs,
) -> list[SystemEvaluation]:
    """Evaluate ``systems`` seeded systems of one configuration."""
    if systems < 1:
        raise ConfigurationError(f"systems must be >= 1, got {systems}")
    return [
        evaluate_system(config, base_seed + offset, **kwargs)
        for offset in range(systems)
    ]
