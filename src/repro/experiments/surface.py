"""The (N, U) surface container used by every figure of Section 5.

Figures 12-16 all plot one scalar per configuration over the same grid:
subtasks-per-task N on one axis, per-processor utilization U on the
other.  :class:`Surface` stores those cells, keeps the paper's axis
order, and renders the grid as the text table the benchmarks print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ConfigurationError
from repro.experiments.stats import MeanWithCI

__all__ = ["Cell", "Surface"]

#: Grid key: (subtasks per task, utilization percent).
GridKey = tuple[int, int]


@dataclass(frozen=True)
class Cell:
    """One configuration's value on a surface."""

    key: GridKey
    value: float
    ci_half_width: float = 0.0
    sample_count: int = 0

    @property
    def subtasks(self) -> int:
        return self.key[0]

    @property
    def utilization_percent(self) -> int:
        return self.key[1]


@dataclass
class Surface:
    """A named scalar field over the (N, U) grid."""

    name: str
    cells: dict[GridKey, Cell] = field(default_factory=dict)

    def put(
        self,
        subtasks: int,
        utilization_percent: int,
        value: float,
        *,
        ci_half_width: float = 0.0,
        sample_count: int = 0,
    ) -> None:
        """Store one cell (overwrites an existing one)."""
        key = (subtasks, utilization_percent)
        self.cells[key] = Cell(
            key=key,
            value=value,
            ci_half_width=ci_half_width,
            sample_count=sample_count,
        )

    def put_mean(
        self, subtasks: int, utilization_percent: int, mean: MeanWithCI
    ) -> None:
        """Store a :class:`MeanWithCI` as one cell."""
        self.put(
            subtasks,
            utilization_percent,
            mean.mean,
            ci_half_width=mean.half_width,
            sample_count=mean.count,
        )

    def value(self, subtasks: int, utilization_percent: int) -> float:
        """The stored value; raises if the cell is missing."""
        try:
            return self.cells[(subtasks, utilization_percent)].value
        except KeyError:
            raise ConfigurationError(
                f"surface {self.name!r} has no cell "
                f"({subtasks},{utilization_percent})"
            ) from None

    @property
    def subtask_axis(self) -> list[int]:
        """Distinct N values, ascending."""
        return sorted({key[0] for key in self.cells})

    @property
    def utilization_axis(self) -> list[int]:
        """Distinct U values (percent), ascending."""
        return sorted({key[1] for key in self.cells})

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells[key] for key in sorted(self.cells))

    def map_values(self, fn: Callable[[float], float], name: str) -> "Surface":
        """A new surface with ``fn`` applied to every value."""
        out = Surface(name)
        for cell in self:
            out.put(
                cell.subtasks,
                cell.utilization_percent,
                fn(cell.value),
                ci_half_width=cell.ci_half_width,
                sample_count=cell.sample_count,
            )
        return out

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, *, precision: int = 2, show_ci: bool = False) -> str:
        """Text table: rows = N (subtasks), columns = U (%).

        This is the harness's stand-in for the paper's 3-D surface plots;
        the rows are the series a reader would trace on the figure.
        """
        columns = self.utilization_axis
        rows = self.subtask_axis
        header = ["N\\U%"] + [f"{u}%" for u in columns]
        table = [header]
        for n in rows:
            line = [str(n)]
            for u in columns:
                cell = self.cells.get((n, u))
                if cell is None or math.isnan(cell.value):
                    line.append("-")
                    continue
                text = f"{cell.value:.{precision}f}"
                if show_ci and cell.ci_half_width > 0:
                    text += f"±{cell.ci_half_width:.{precision}f}"
                line.append(text)
            table.append(line)
        widths = [
            max(len(row[col]) for row in table) for col in range(len(header))
        ]
        lines = [f"== {self.name} =="]
        for row in table:
            lines.append(
                "  ".join(text.rjust(width) for text, width in zip(row, widths))
            )
        return "\n".join(lines)
