"""One-call markdown report of a reproduction run.

`suite_report` turns a :class:`~repro.experiments.runner.SuiteResult`
into a self-contained markdown document: the run's parameters, each
figure's surface as a table, and the paper-shape expectation verdicts.
The CLI exposes it as ``repro-rts suite --markdown out.md``.
"""

from __future__ import annotations

import math

from repro.experiments.expectations import (
    PAPER_EXPECTATIONS,
    check_suite,
)
from repro.experiments.runner import SuiteResult
from repro.experiments.surface import Surface

__all__ = ["suite_report"]


def _surface_markdown(surface: Surface, precision: int = 2) -> str:
    """Render a surface as a markdown table (rows = N, columns = U%)."""
    columns = surface.utilization_axis
    lines = [
        "| N \\ U | " + " | ".join(f"{u}%" for u in columns) + " |",
        "|---" * (len(columns) + 1) + "|",
    ]
    for n in surface.subtask_axis:
        cells = []
        for u in columns:
            cell = surface.cells.get((n, u))
            if cell is None or math.isnan(cell.value):
                cells.append("–")
            else:
                text = f"{cell.value:.{precision}f}"
                if cell.ci_half_width > 0:
                    text += f" ± {cell.ci_half_width:.{precision}f}"
                cells.append(text)
        lines.append(f"| {n} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def suite_report(result: SuiteResult, *, title: str | None = None) -> str:
    """A complete markdown report of one suite run."""
    sample = result.systems_per_config
    some_config = next(iter(result.evaluations))
    header = title or (
        "Reproduction report — Sun & Liu, *Synchronization Protocols in "
        "Distributed Real-Time Systems* (ICDCS 1996)"
    )
    parts = [
        f"# {header}",
        "",
        f"- systems per configuration: **{sample}** (paper: 1000)",
        f"- tasks per system: **{some_config.tasks}**, processors: "
        f"**{some_config.processors}**",
        f"- period range: [{some_config.period_min:g}, "
        f"{some_config.period_max:g}], priority policy: "
        f"{some_config.priority_policy}",
        "",
    ]
    descriptions = {
        "Figure 12": (
            result.failure_rate,
            "Fraction of systems whose SA/DS analysis found no finite "
            "bounds (cutoff: 300 periods).",
        ),
        "Figure 13": (
            result.bound_ratio,
            "Mean SA-DS/SA-PM EER-bound ratio over tasks of systems with "
            "finite DS bounds.",
        ),
        "Figure 14": (
            result.pm_ds_ratio,
            "Mean per-task ratio of simulated average EER times, PM over "
            "DS.",
        ),
        "Figure 15": (
            result.rg_ds_ratio,
            "Mean per-task ratio of simulated average EER times, RG over "
            "DS.",
        ),
        "Figure 16": (
            result.pm_rg_ratio,
            "Mean per-task ratio of simulated average EER times, PM over "
            "RG.",
        ),
    }
    for figure, (surface, description) in descriptions.items():
        parts += [
            f"## {figure}",
            "",
            description,
            "",
            _surface_markdown(surface),
            "",
        ]
    try:
        sa_pm_sched = result.schedulability("SA/PM")
        sa_ds_sched = result.schedulability("SA/DS")
    except Exception:  # evaluations without analyses
        pass
    else:
        parts += [
            "## Certifiable schedulability (derived)",
            "",
            "Fraction of tasks whose EER bound fits the deadline -- the "
            "paper's bottom-line protocol comparison.",
            "",
            "Under SA/PM (the PM/MPM/RG verdict):",
            "",
            _surface_markdown(sa_pm_sched),
            "",
            "Under SA/DS (the DS verdict):",
            "",
            _surface_markdown(sa_ds_sched),
            "",
        ]
    parts += ["## Paper-shape expectations", ""]
    outcomes = check_suite(result, PAPER_EXPECTATIONS)
    for expectation, held in outcomes:
        mark = "✅" if held else "❌"
        parts.append(f"- {mark} **{expectation.figure}** — {expectation.claim}")
    passed = sum(1 for _e, held in outcomes if held)
    parts += ["", f"**{passed}/{len(outcomes)} expectations hold.**", ""]
    return "\n".join(parts)
