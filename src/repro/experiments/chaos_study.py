"""The chaos study: protocol survival under injected faults.

Sections 3.1/3.2 of the paper argue for the protocols from their
*mechanisms*: DS trusts the network (one signal per instance, no state),
PM and MPM trust timers, RG holds releases behind an idempotent guard.
This study stresses exactly those trust assumptions with the fault plane
(:mod:`repro.faults`) and measures which protocol survives which fault:

* **channel faults** (drop / duplicate / reorder) hit DS, MPM and RG --
  every protocol that ships synchronization signals between processors.
  PM ships none (releases come from its phase table), so it is immune.
* **timer loss** hits PM hardest (its release timers reschedule
  themselves from the fired callback, so one lost timer silences the
  subtask for the rest of the run), MPM per-instance (one lost relay
  loses one successor release), and RG mildly (a lost guard wake-up is
  healed by the next signal or idle point).
* **crash-restart** hits everyone on the crashed processor.
* **WCET overruns** hit everyone equally; only policing contains them.

Each fault scenario runs twice per protocol -- with and without the
recovery layer (``FaultConfig.with_recovery``) -- over several sampled
SA/PM-schedulable systems.  The headline gate
(:attr:`ChaosStudyResult.separation_demonstrated`):

* RG *with* recovery ends every signal-fault case with **zero**
  unrecovered precedence violations (the guard makes retransmitted and
  duplicated deliveries idempotent);
* DS *without* recovery records lost guarantees under the same signal
  faults (dropped signals silence chains, duplicates double-release);
* PM and MPM *without* recovery record lost guarantees under timer
  loss.

The study also re-checks the ``fault-free-identity`` invariant on its
sample -- a zero-rate fault plane reproduces the fault-free trace
byte-for-byte under both arithmetic backends -- so a chaos run cannot
silently perturb the healthy path.

Run it from the CLI (``repro-rts chaos``) or call
:func:`run_chaos_study` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.analysis.sa_pm import analyze_sa_pm
from repro.core.protocols.factory import make_controller
from repro.errors import ConfigurationError
from repro.faults import FaultConfig
from repro.sim.simulator import simulate
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_system

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosCell",
    "ChaosStudyResult",
    "run_chaos_study",
]

#: Protocols the study compares, in the paper's order.
STUDY_PROTOCOLS = ("DS", "PM", "MPM", "RG")

#: The fault scenarios, in teaching order.  Rates are per decision;
#: durations are in workload time units (periods 100..1000 below).
CHAOS_SCENARIOS: tuple[tuple[str, FaultConfig], ...] = (
    ("drop-low", FaultConfig(drop_rate=0.1)),
    ("drop-high", FaultConfig(drop_rate=0.3)),
    ("duplicate", FaultConfig(duplicate_rate=0.2)),
    ("drop+dup", FaultConfig(drop_rate=0.15, duplicate_rate=0.15)),
    ("reorder", FaultConfig(reorder_rate=0.2, reorder_delay=5.0)),
    ("timer-loss", FaultConfig(timer_loss_rate=0.1)),
    ("crash", FaultConfig(crash_start=150.0, crash_duration=50.0)),
    ("overrun", FaultConfig(overrun_rate=0.2, overrun_factor=1.5)),
)

#: Default workload: the clock study's family -- moderate utilization so
#: Algorithm SA/PM accepts most seeds, subtasks spread over processors
#: so synchronization signals actually cross the faulty channel.
DEFAULT_CONFIG = WorkloadConfig(
    subtasks_per_task=3,
    utilization=0.6,
    tasks=4,
    processors=3,
    period_min=100.0,
    period_max=1000.0,
    period_scale=300.0,
)


@dataclass(frozen=True)
class ChaosCell:
    """One (protocol, scenario, recovery arm) aggregate."""

    protocol: str
    scenario: str
    recovery: bool
    cases: int
    injected_total: int
    recovered: int
    unrecovered_violations: int
    #: Precedence violations the kernel's online check recorded.
    precedence_violations: int
    #: Duplicate releases that stood (no suppression).
    unrecovered_duplicate_releases: int

    @property
    def unrecovered_precedence(self) -> int:
        """Lost precedence guarantees: releases that outran (or doubled)
        their predecessor.  Exhausted retransmits are *losses*, not
        precedence breaks, so they are deliberately not in here."""
        return self.precedence_violations + self.unrecovered_duplicate_releases


@dataclass(frozen=True)
class ChaosStudyResult:
    """The full campaign: cells over protocols x scenarios x recovery."""

    scenarios: tuple[str, ...]
    config: WorkloadConfig
    cells: dict[tuple[str, str, bool], ChaosCell]
    sampled_systems: int
    skipped_systems: int
    cases: int
    #: True when a zero-rate fault plane reproduced the fault-free trace
    #: exactly, per protocol, under both arithmetic backends.
    fault_free_identity: bool

    def cell(
        self, protocol: str, scenario: str, *, recovery: bool
    ) -> ChaosCell:
        return self.cells[(protocol, scenario, recovery)]

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    @property
    def signal_scenarios(self) -> tuple[str, ...]:
        """Scenario names exercising only the channel faults."""
        return tuple(
            name
            for name, faults in CHAOS_SCENARIOS
            if name in self.scenarios and faults.signal_faults_only
        )

    @property
    def separation_demonstrated(self) -> bool:
        """The study's headline, on this sample.

        RG with the recovery layer survives every signal-fault scenario
        with zero unrecovered precedence violations, while DS without
        recovery loses guarantees under the same faults and PM/MPM lose
        guarantees under timer loss.
        """
        signal = self.signal_scenarios
        rg_clean = all(
            self.cell("RG", name, recovery=True).unrecovered_precedence == 0
            for name in signal
        )
        ds_hurt = (
            sum(
                self.cell("DS", name, recovery=False).unrecovered_violations
                for name in signal
            )
            > 0
        )
        timer_hurt = all(
            self.cell(
                protocol, "timer-loss", recovery=False
            ).unrecovered_violations
            > 0
            for protocol in ("PM", "MPM")
            if "timer-loss" in self.scenarios
        )
        return rg_clean and ds_hurt and timer_hurt

    @property
    def gate_passed(self) -> bool:
        """Everything CI cares about in one flag."""
        return self.separation_demonstrated and self.fault_free_identity

    def render(self) -> str:
        """Text table: per scenario and protocol, unrecovered violation
        counts without and with the recovery layer."""
        header = "scenario     " + "".join(
            f"{p:>16}" for p in STUDY_PROTOCOLS
        )
        lines = [
            f"chaos study: {self.cases} case(s) over "
            f"{self.sampled_systems} system(s) "
            f"({self.skipped_systems} unschedulable skipped); "
            f"cells show unrecovered violations raw -> recovered",
            header,
        ]
        for scenario in self.scenarios:
            row = f"{scenario:<13}"
            for protocol in STUDY_PROTOCOLS:
                raw = self.cell(protocol, scenario, recovery=False)
                rec = self.cell(protocol, scenario, recovery=True)
                row += (
                    f"{raw.unrecovered_violations:>9}"
                    f" ->{rec.unrecovered_violations:>4}"
                )
            lines.append(row)
        lines.append(
            "fault-free identity (both timebases): "
            + ("ok" if self.fault_free_identity else "BROKEN")
        )
        lines.append(
            "separation demonstrated: "
            + ("yes" if self.separation_demonstrated else "no")
        )
        return "\n".join(lines)


def _controllers_bounds(system):
    analysis = analyze_sa_pm(system)
    return analysis


def run_chaos_study(
    *,
    config: WorkloadConfig | None = None,
    systems: int = 4,
    base_seed: int = 0,
    horizon_periods: float = 4.0,
    timebase: str = "float",
    scenarios: tuple[str, ...] | None = None,
) -> ChaosStudyResult:
    """Sweep fault scenarios x protocols x recovery arms.

    Samples ``systems`` SA/PM-schedulable systems (seeds advance until
    enough accepted ones are found), then simulates every protocol under
    every scenario twice: once raw and once with
    :meth:`FaultConfig.with_recovery`.  One simulation run is one case;
    the default parameters produce ``8 * 4 * 2 * systems`` cases (256 at
    ``systems=4``).
    """
    if systems < 1:
        raise ConfigurationError(f"systems must be >= 1, got {systems}")
    config = config or DEFAULT_CONFIG
    chosen = CHAOS_SCENARIOS
    if scenarios is not None:
        known = {name for name, _faults in CHAOS_SCENARIOS}
        unknown = set(scenarios) - known
        if unknown:
            raise ConfigurationError(
                f"unknown chaos scenario(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        chosen = tuple(
            (name, faults)
            for name, faults in CHAOS_SCENARIOS
            if name in scenarios
        )
    if not chosen:
        raise ConfigurationError("need at least one chaos scenario")

    sampled = []
    skipped = 0
    seed = base_seed
    scan_limit = base_seed + 50 * systems
    while len(sampled) < systems and seed < scan_limit:
        system = generate_system(config, seed)
        analysis = analyze_sa_pm(system)
        if analysis.schedulable:
            sampled.append((system, analysis))
        else:
            skipped += 1
        seed += 1
    if len(sampled) < systems:
        raise ConfigurationError(
            f"found only {len(sampled)} SA/PM-schedulable system(s) in "
            f"{scan_limit - base_seed} seed(s); lower the utilization"
        )

    cells: dict[tuple[str, str, bool], ChaosCell] = {}
    cases = 0
    case_seed = base_seed
    for scenario_name, base_faults in chosen:
        for protocol in STUDY_PROTOCOLS:
            for recovery in (False, True):
                tally = [0, 0, 0, 0, 0]  # injected, recovered,
                # unrecovered, precedence, duplicate releases
                for system, analysis in sampled:
                    case_seed += 1
                    faults = replace(
                        base_faults.with_recovery(recovery),
                        seed=case_seed,
                    )
                    controller = make_controller(
                        protocol, system, bounds=analysis.subtask_bounds
                    )
                    result = simulate(
                        system,
                        controller,
                        horizon_periods=horizon_periods,
                        faults=faults,
                        timebase=timebase,
                    )
                    cases += 1
                    log = result.trace.faults
                    tally[0] += len(log.events)
                    tally[1] += log.recovered_count()
                    tally[2] += log.unrecovered_violations()
                    tally[3] += len(result.trace.violations)
                    tally[4] += sum(
                        1
                        for event in log.events_of("duplicate-release")
                        if not event.recovered
                    )
                cells[(protocol, scenario_name, recovery)] = ChaosCell(
                    protocol=protocol,
                    scenario=scenario_name,
                    recovery=recovery,
                    cases=len(sampled),
                    injected_total=tally[0],
                    recovered=tally[1],
                    unrecovered_violations=tally[2],
                    precedence_violations=tally[3],
                    unrecovered_duplicate_releases=tally[4],
                )

    # Fault-free identity on the first sampled system, every protocol,
    # both backends: a zero-rate plane must not perturb anything.
    identity = True
    system, analysis = sampled[0]
    for backend in ("float", "exact"):
        for protocol in STUDY_PROTOCOLS:
            baseline = simulate(
                system,
                make_controller(
                    protocol, system, bounds=analysis.subtask_bounds
                ),
                horizon_periods=horizon_periods,
                timebase=backend,
            )
            nulled = simulate(
                system,
                make_controller(
                    protocol, system, bounds=analysis.subtask_bounds
                ),
                horizon_periods=horizon_periods,
                timebase=backend,
                faults=FaultConfig(seed=base_seed),
            )
            if (
                baseline.trace.releases != nulled.trace.releases
                or baseline.trace.completions != nulled.trace.completions
                or baseline.trace.env_releases != nulled.trace.env_releases
            ):
                identity = False

    return ChaosStudyResult(
        scenarios=tuple(name for name, _faults in chosen),
        config=config,
        cells=cells,
        sampled_systems=len(sampled),
        skipped_systems=skipped,
        cases=cases,
        fault_free_identity=identity,
    )
