"""Figure drivers: turn per-system evaluations into the paper's surfaces.

* Figure 12 -- DS failure rate: fraction of systems per configuration
  for which Algorithm SA/DS could not produce finite EER bounds
  (bound > 300 periods).
* Figure 13 -- average bound ratio: mean over tasks (in systems whose DS
  analysis is finite) of SA-DS bound / SA-PM bound.
* Figure 14 -- PM/DS average-EER ratio.
* Figure 15 -- RG/DS average-EER ratio.
* Figure 16 -- PM/RG average-EER ratio.

Every driver consumes a mapping ``config -> [SystemEvaluation]`` produced
by :mod:`repro.experiments.evaluation`, so one sweep serves all five
figures.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.experiments.evaluation import SystemEvaluation
from repro.experiments.stats import mean_with_ci
from repro.experiments.surface import Surface
from repro.timebase import REL_EPS
from repro.workload.config import WorkloadConfig

__all__ = [
    "failure_rate_surface",
    "bound_ratio_surface",
    "eer_ratio_surface",
    "schedulability_surface",
]

Evaluations = Mapping[WorkloadConfig, Sequence[SystemEvaluation]]


def _grid_key(config: WorkloadConfig) -> tuple[int, int]:
    return (config.subtasks_per_task, round(config.utilization * 100))


def failure_rate_surface(evaluations: Evaluations) -> Surface:
    """Figure 12: per-configuration SA/DS failure rate in [0, 1]."""
    surface = Surface("Figure 12 -- DS failure rate")
    for config, records in evaluations.items():
        if not records:
            raise ConfigurationError(
                f"no evaluations for configuration {config.label}"
            )
        failures = sum(1 for record in records if record.sa_ds_failed)
        n, u = _grid_key(config)
        surface.put(n, u, failures / len(records), sample_count=len(records))
    return surface


def bound_ratio_surface(evaluations: Evaluations) -> Surface:
    """Figure 13: average SA-DS/SA-PM bound ratio over tasks.

    Following the paper, only systems whose DS bounds are all finite
    contribute; their per-task ratios are pooled per configuration.
    """
    surface = Surface("Figure 13 -- bound ratio (SA-DS / SA-PM)")
    for config, records in evaluations.items():
        ratios: list[float] = []
        for record in records:
            if record.sa_ds_failed:
                continue
            ratios.extend(record.bound_ratios())
        n, u = _grid_key(config)
        surface.put_mean(n, u, mean_with_ci(ratios))
    return surface


def schedulability_surface(
    evaluations: Evaluations, analysis: str
) -> Surface:
    """Fraction of tasks certified schedulable, per configuration.

    ``analysis`` is ``"SA/PM"`` (the PM/MPM/RG verdict) or ``"SA/DS"``
    (the DS verdict).  Not one of the paper's plotted figures, but the
    number its conclusion turns on: with deadlines equal to periods, how
    much certifiable schedulability does each protocol family retain as
    chains lengthen and load grows?
    """
    if analysis not in ("SA/PM", "SA/DS"):
        raise ConfigurationError(
            f"analysis must be 'SA/PM' or 'SA/DS', got {analysis!r}"
        )
    surface = Surface(f"Schedulable-task fraction under {analysis}")
    for config, records in evaluations.items():
        schedulable = 0
        total = 0
        for record in records:
            bounds = (
                record.sa_pm_task_bounds
                if analysis == "SA/PM"
                else record.sa_ds_task_bounds
            )
            if not record.task_deadlines:
                raise ConfigurationError(
                    "schedulability surface needs evaluations with "
                    "run_analyses=True"
                )
            for bound, deadline in zip(bounds, record.task_deadlines):
                total += 1
                if bound <= deadline * (1 + REL_EPS):
                    schedulable += 1
        n, u = _grid_key(config)
        surface.put(
            n,
            u,
            schedulable / total if total else float("nan"),
            sample_count=len(records),
        )
    return surface


def eer_ratio_surface(
    evaluations: Evaluations, numerator: str, denominator: str
) -> Surface:
    """Figures 14-16: average per-task EER-time ratio between protocols.

    ``numerator``/``denominator`` name simulated protocols ("PM", "DS",
    "RG"); the per-task ratios of each system are pooled per
    configuration, exactly as the paper averages its PM/DS, RG/DS and
    PM/RG ratios.
    """
    figure_names = {
        ("PM", "DS"): "Figure 14 -- PM/DS average EER ratio",
        ("RG", "DS"): "Figure 15 -- RG/DS average EER ratio",
        ("PM", "RG"): "Figure 16 -- PM/RG average EER ratio",
    }
    title = figure_names.get(
        (numerator, denominator),
        f"{numerator}/{denominator} average EER ratio",
    )
    surface = Surface(title)
    for config, records in evaluations.items():
        ratios: list[float] = []
        for record in records:
            ratios.extend(record.eer_ratios(numerator, denominator))
        n, u = _grid_key(config)
        surface.put_mean(n, u, mean_with_ci(ratios))
    return surface
