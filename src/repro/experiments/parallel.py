"""Multiprocess evaluation sweeps for paper-scale replications.

The paper evaluates 1000 systems per configuration; a single core needs
hours for the full grid at that size.  Systems are evaluated
independently, so the sweep parallelizes embarrassingly: this module
fans the (configuration, seed) pairs over a process pool and reassembles
results in deterministic order -- output is identical to the serial
:func:`repro.experiments.runner.sweep_grid` for the same inputs, worker
count notwithstanding.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.experiments.evaluation import SystemEvaluation, evaluate_system
from repro.workload.config import WorkloadConfig

__all__ = ["parallel_sweep_grid"]


def _evaluate_one(
    job: tuple[WorkloadConfig, int, dict]
) -> tuple[WorkloadConfig, int, SystemEvaluation]:
    config, seed, kwargs = job
    return config, seed, evaluate_system(config, seed, **kwargs)


def parallel_sweep_grid(
    configs: Sequence[WorkloadConfig],
    systems: int,
    *,
    base_seed: int = 0,
    workers: int | None = None,
    progress: Callable[[str], None] | None = None,
    **evaluate_kwargs,
) -> dict[WorkloadConfig, tuple[SystemEvaluation, ...]]:
    """Evaluate every configuration over a process pool.

    ``workers`` defaults to the CPU count.  Results are keyed and
    ordered exactly like the serial sweep; all randomness remains bound
    to explicit seeds inside each job, so parallelism cannot change any
    number.  ``progress`` fires once per completed system evaluation.
    """
    if not configs:
        raise ConfigurationError("sweep needs at least one configuration")
    if systems < 1:
        raise ConfigurationError(f"systems must be >= 1, got {systems}")
    worker_count = workers if workers is not None else (os.cpu_count() or 1)
    if worker_count < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    jobs = [
        (config, base_seed + offset, dict(evaluate_kwargs))
        for config in configs
        for offset in range(systems)
    ]
    results: dict[WorkloadConfig, dict[int, SystemEvaluation]] = {
        config: {} for config in configs
    }
    completed = 0
    if worker_count == 1:
        iterator = map(_evaluate_one, jobs)
        for config, seed, record in iterator:
            results[config][seed] = record
            completed += 1
            if progress is not None:
                progress(f"{completed}/{len(jobs)} systems evaluated")
    else:
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            for config, seed, record in pool.map(
                _evaluate_one, jobs, chunksize=max(1, len(jobs) // (8 * worker_count))
            ):
                results[config][seed] = record
                completed += 1
                if progress is not None:
                    progress(f"{completed}/{len(jobs)} systems evaluated")
    return {
        config: tuple(
            by_seed[base_seed + offset] for offset in range(systems)
        )
        for config, by_seed in results.items()
    }
