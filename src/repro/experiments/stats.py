"""Small statistics helpers for the experiment harness.

The paper reports per-configuration averages with 90% confidence
intervals ("negligibly small for most configurations"); these helpers
compute exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


__all__ = ["MeanWithCI", "mean_with_ci", "finite"]

#: Two-sided z value for a 90% normal confidence interval.
_Z_90 = 1.6448536269514722


@dataclass(frozen=True)
class MeanWithCI:
    """A sample mean with its 90% confidence half-width."""

    mean: float
    half_width: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        if self.count == 0:
            return "n/a"
        return f"{self.mean:.3g}±{self.half_width:.2g}"


def finite(values: Iterable[float]) -> list[float]:
    """Drop NaNs and infinities."""
    return [v for v in values if math.isfinite(v)]


def mean_with_ci(values: Sequence[float]) -> MeanWithCI:
    """Sample mean and 90% normal-approximation confidence half-width.

    Empty samples produce a NaN mean with count 0 (rendered "n/a");
    singleton samples get a zero half-width.
    """
    clean = finite(values)
    n = len(clean)
    if n == 0:
        return MeanWithCI(mean=float("nan"), half_width=float("nan"), count=0)
    mean = sum(clean) / n
    if n == 1:
        return MeanWithCI(mean=mean, half_width=0.0, count=1)
    variance = sum((v - mean) ** 2 for v in clean) / (n - 1)
    half = _Z_90 * math.sqrt(variance / n)
    return MeanWithCI(mean=mean, half_width=half, count=n)
